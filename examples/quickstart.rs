//! Quickstart: prove the paper's headline example — the reference and
//! vectorized MPLS/UDP parsers of Figure 1 accept exactly the same packets.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use leapfrog::{certificate, Checker, Options, Outcome};
use leapfrog_suite::utility::mpls;

fn main() {
    let reference = mpls::reference();
    let vectorized = mpls::vectorized();
    println!(
        "Reference parser:\n{}",
        leapfrog_p4a::pretty::pretty(&reference, "Reference")
    );
    println!(
        "Vectorized parser:\n{}",
        leapfrog_p4a::pretty::pretty(&vectorized, "Vectorized")
    );

    let q1 = reference.state_by_name("q1").unwrap();
    let q3 = vectorized.state_by_name("q3").unwrap();
    let mut checker = Checker::new(&reference, q1, &vectorized, q3, Options::default());

    println!("Checking language equivalence (this computes a symbolic bisimulation with leaps)…");
    match checker.run() {
        Outcome::Equivalent(cert) => {
            println!("✔ equivalent — {}", checker.stats().summary());
            println!(
                "  relation has {} conjuncts over {} reachable template pairs",
                cert.relation.len(),
                checker.stats().scope_pairs
            );
            print!("  re-checking the certificate independently… ");
            match certificate::check(checker.sum_automaton(), &cert) {
                Ok(()) => println!("✔ certificate valid"),
                Err(e) => println!("✘ CERTIFICATE REJECTED: {e}"),
            }
        }
        Outcome::NotEquivalent(refutation) => {
            println!("✘ not equivalent:\n{refutation}");
        }
        Outcome::Aborted(why) => println!("aborted: {why}"),
    }
}
