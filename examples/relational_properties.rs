//! The two relational case studies on the sloppy/strict Ethernet parsers
//! (paper §7.1, Figure 10):
//!
//! * **External filtering**: the parsers disagree — the lenient one
//!   accepts unknown EtherTypes — but are equivalent *modulo a filter*
//!   that drops packets whose EtherType is neither IPv4 nor IPv6.
//! * **Relational verification**: whenever both parsers accept a packet,
//!   their stores correspond field-for-field.
//!
//! Both are posed by replacing the initial relation of the bisimulation
//! search, exactly as the paper describes.
//!
//! ```text
//! cargo run --release --example relational_properties
//! ```

use leapfrog::{Checker, Options, Outcome};
use leapfrog_logic::reach::reachable_pairs;
use leapfrog_suite::utility::sloppy_strict;

fn main() {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();

    // First: show they are NOT plainly equivalent.
    println!("1. Plain language equivalence (expected to fail):");
    let mut plain = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    match plain.run() {
        Outcome::NotEquivalent(_) => {
            println!("   ✘ not equivalent, as expected — the lenient parser accepts more")
        }
        other => println!("   unexpected outcome: {other:?}"),
    }

    // Second: equivalence modulo the external filter.
    println!("2. Equivalence modulo an EtherType filter:");
    let mut filtered = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let reach = reachable_pairs(filtered.sum_automaton(), &[filtered.root()], true);
    let init = sloppy_strict::external_filter_init(filtered.sum_info(), &reach);
    filtered.replace_init(init);
    match filtered.run() {
        Outcome::Equivalent(cert) => {
            println!(
                "   ✔ equivalent modulo the filter — {}",
                filtered.stats().summary()
            );
            assert!(!cert.standard_init);
            println!("   (certificate marked as a custom-I pre-bisimulation)");
        }
        other => println!("   unexpected outcome: {other:?}"),
    }

    // Third: store correspondence when both accept.
    println!("3. Store correspondence at acceptance:");
    let mut relational = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let init = sloppy_strict::store_correspondence_init(relational.sum_info());
    relational.replace_init(init);
    match relational.run() {
        Outcome::Equivalent(_) => {
            println!(
                "   ✔ whenever both parsers accept, ether/ipv4/ipv6 headers agree — {}",
                relational.stats().summary()
            );
        }
        other => println!("   unexpected outcome: {other:?}"),
    }
}
