//! Using the surface DSL: write two parsers in the paper's notation,
//! parse them, run packets through the interpreter, and check equivalence.
//!
//! ```text
//! cargo run --release --example surface_dsl
//! ```

use leapfrog::{Checker, Options, Outcome};
use leapfrog_bitvec::BitVec;
use leapfrog_p4a::semantics::Config;
use leapfrog_p4a::surface::parse_named;

const REFERENCE: &str = r#"
parser Reference {
  // A stylized IP: 16 bits, then UDP (8 bits) or TCP (16 bits)
  // depending on bits 4..7 of the IP header.
  state parse_ip {
    extract(ip, 16);
    select(ip[4:7]) {
      0b0001 => parse_udp;
      0b0000 => parse_tcp;
    }
  }
  state parse_udp { extract(udp, 8);  goto accept; }
  state parse_tcp { extract(tcp, 16); goto accept; }
}
"#;

const COMBINED: &str = r#"
parser Combined {
  // Extracts IP plus the 8-bit shared prefix before branching.
  state parse_combined {
    extract(ip, 16);
    extract(pref, 8);
    select(ip[4:7]) {
      0b0001 => accept;
      0b0000 => parse_suff;
    }
  }
  state parse_suff { extract(suff, 8); goto accept; }
}
"#;

fn main() {
    let (reference, ref_name) = parse_named(REFERENCE).expect("reference parses");
    let (combined, comb_name) = parse_named(COMBINED).expect("combined parses");
    println!(
        "Parsed `{ref_name}` ({} states) and `{comb_name}` ({} states)",
        reference.num_states(),
        combined.num_states()
    );

    // Run a UDP-tagged packet through both interpreters.
    let mut packet = BitVec::zeros(24);
    packet.set(7, true); // ip[4:7] = 0001
    let q_ref = reference.state_by_name("parse_ip").unwrap();
    let q_comb = combined.state_by_name("parse_combined").unwrap();
    println!(
        "UDP packet: reference={}, combined={}",
        Config::initial(&reference, q_ref).accepts(&reference, &packet),
        Config::initial(&combined, q_comb).accepts(&combined, &packet),
    );

    // Prove they agree on *all* packets.
    let mut checker = Checker::new(&reference, q_ref, &combined, q_comb, Options::default());
    match checker.run() {
        Outcome::Equivalent(_) => {
            println!(
                "✔ equivalent on all packets — {}",
                checker.stats().summary()
            )
        }
        other => println!("unexpected: {other:?}"),
    }

    // Round-trip through the pretty-printer.
    let text = leapfrog_p4a::pretty::pretty(&reference, "Reference");
    let reparsed = leapfrog_p4a::surface::parse(&text).expect("pretty output reparses");
    assert_eq!(reparsed.num_states(), reference.num_states());
    println!("Pretty-printer round trip: ok");
}
