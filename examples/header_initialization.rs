//! The header-initialization case study (paper §7.1, Figure 9): prove
//! that a parser's acceptance does not depend on uninitialized headers by
//! checking it equivalent to itself under arbitrary initial stores — and
//! watch the check *fail* on a buggy variant that forgets to default the
//! VLAN tag.
//!
//! ```text
//! cargo run --release --example header_initialization
//! ```

use leapfrog::{Checker, Options, Outcome};
use leapfrog_suite::utility::vlan_init;

fn self_check(name: &str, aut: &leapfrog_p4a::Automaton) {
    let q = aut.state_by_name("parse_eth").unwrap();
    let mut checker = Checker::new(aut, q, aut, q, Options::default());
    match checker.run() {
        Outcome::Equivalent(_) => {
            println!("✔ {name}: acceptance is independent of the initial store");
            println!("  {}", checker.stats().summary());
        }
        Outcome::NotEquivalent(refutation) => {
            println!("✘ {name}: acceptance DEPENDS on an uninitialized header!");
            match refutation.witness() {
                Some(w) => {
                    // The engine produced a concrete, minimized, replayable
                    // demonstration: two initial stores and one packet.
                    print!("  {w}");
                }
                None => {
                    let text = refutation.to_string();
                    let first = text.lines().take(4).collect::<Vec<_>>().join("\n  ");
                    println!("  {first}\n  …");
                }
            }
        }
        Outcome::Aborted(why) => println!("aborted: {why}"),
    }
}

fn main() {
    println!("Parser with defaulted VLAN tag (Figure 9):");
    self_check("fixed parser", &vlan_init::vlan_parser());
    println!();
    println!("Buggy variant without `vlan := 0`:");
    self_check("buggy parser", &vlan_init::vlan_parser_buggy());
}
