//! Translation validation (paper §7.2, Figure 8): compile the Edge router
//! parser to parser-gen-style hardware match tables, translate the tables
//! back into a P4 automaton, and prove the compiler preserved the parser's
//! language.
//!
//! ```text
//! cargo run --release --example translation_validation
//! ```

use leapfrog::{Checker, Options, Outcome};
use leapfrog_hwgen::{back_translate, compile, HwBudget};
use leapfrog_suite::applicability::edge;
use leapfrog_suite::Scale;

fn main() {
    let scale = Scale::from_env();
    let parser = edge(scale);
    let start = parser.state_by_name("parse_eth").unwrap();
    println!(
        "Edge parser: {} states, {} header bits (scale {scale:?})",
        parser.num_states(),
        parser.total_header_bits()
    );

    let budget = HwBudget::default();
    let hw = compile(&parser, start, &budget).expect("Edge compiles to hardware tables");
    println!(
        "Compiled to {} hardware table rows over {} states \
         (≤{} bits/cycle, ≤{} key bits):",
        hw.entries.len(),
        hw.num_states(),
        budget.max_advance,
        budget.max_branch_bits
    );
    for line in hw.render().lines().take(6) {
        println!("  {line}");
    }
    println!("  …");

    let (back, back_start) = back_translate(&hw);
    let back_q = back.state_by_name(&back_start).unwrap();
    println!(
        "Back-translated into a {}-state P4 automaton",
        back.num_states()
    );

    println!("Validating the round trip with Leapfrog…");
    let mut checker = Checker::new(&parser, start, &back, back_q, Options::default());
    match checker.run() {
        Outcome::Equivalent(cert) => {
            println!("✔ the compiler preserved the parser's language");
            println!("  {}", checker.stats().summary());
            match leapfrog::certificate::check(checker.sum_automaton(), &cert) {
                Ok(()) => println!("  certificate re-checked independently ✔"),
                Err(e) => println!("  certificate REJECTED: {e}"),
            }
        }
        Outcome::NotEquivalent(refutation) => {
            println!("✘ MISCOMPILATION DETECTED:\n{refutation}");
        }
        Outcome::Aborted(why) => println!("aborted: {why}"),
    }
}
