//! A self-contained stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no network access, so the
//! real `criterion` crate cannot be fetched. This shim implements the small
//! API subset the `leapfrog-bench` benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros — with
//! honest wall-clock timing but none of the statistical machinery
//! (no outlier rejection, no HTML reports). Numbers printed here are
//! indicative medians over a handful of iterations, good enough to track
//! the repository's performance trajectory in CI logs.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations timed per benchmark (after one untimed warm-up run). The cap
/// keeps `cargo bench` tractable for the heavyweight end-to-end rows.
const MAX_SAMPLES: usize = 5;

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Criterion {
        Criterion {
            sample_size: MAX_SAMPLES,
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations (clamped to a small cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, MAX_SAMPLES);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The per-benchmark timing handle passed to the closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: samples.clamp(1, MAX_SAMPLES),
        durations: Vec::new(),
    };
    f(&mut b);
    b.durations.sort();
    let median = b
        .durations
        .get(b.durations.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{name:<50} median {median:>12.2?}  ({} samples)",
        b.durations.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
