//! Umbrella crate for the Leapfrog reproduction: re-exports the public
//! API of every layer. See `src/README.md` for the architecture and the
//! `leapfrog` crate for the checker entry points.
//!
//! # Layers
//!
//! * [`bitvec`] — packed bitvectors with the paper's clamped slicing.
//! * [`sat`] / [`smt`] — the CDCL solver and the `FOL(BV)` CEGAR solver.
//! * [`p4a`] — P4 automata: syntax, explicit semantics, sums, surface
//!   syntax, and packet-walk synthesis ([`p4a::walk`]).
//! * [`logic`] — configuration relations, weakest preconditions, lowering.
//! * [`cex`] — the counterexample witness engine: lifts a refutation's
//!   countermodel into concrete initial stores and a packet, confirms the
//!   disagreement by explicit replay, and minimizes the packet by delta
//!   debugging.
//! * [`checker`] — the persistent `Engine`, the per-query `Checker`
//!   wrapper, certificates, run statistics.
//! * [`hwgen`] / [`suite`] — translation validation and the evaluation
//!   suite (case-study parsers, workloads, differential oracles).
//!
//! # The engine API
//!
//! The primary entry point is [`prelude::Engine`]: built once from a
//! typed [`prelude::EngineConfig`] (builder pattern;
//! `EngineConfig::from_env()` subsumes every `LEAPFROG_*` variable), it
//! owns the long-lived state — the shared CNF blast cache, warm per-guard
//! solver sessions, memoized sums and reachability sets, the
//! cross-session instantiation ledger, and an optional attached witness
//! sink — and answers single queries ([`prelude::Engine::check`]) or
//! whole batches ([`prelude::Engine::check_batch`]) over the
//! work-stealing worker pool. Results are byte-identical however a query
//! is posed: warm, cold, batched or through the legacy wrappers.
//!
//! ```
//! use leapfrog_repro::prelude::*;
//!
//! let a = parse("parser A { state s { extract(h, 2);
//!                  select(h[0:0]) { 0b1 => accept; _ => reject; } } }").unwrap();
//! let q = a.state_by_name("s").unwrap();
//!
//! let mut engine = EngineConfig::new().threads(1).build();
//! // One-shot…
//! assert!(engine.check(&a, q, &a, q).is_equivalent());
//! // …and batched: the repeated specs reuse the warm sessions, sums and
//! // recorded entailment verdicts.
//! let spec = QuerySpec::new("self", &a, q, &a, q);
//! let outcomes = engine.check_batch(&[spec.clone(), spec]);
//! assert!(outcomes.iter().all(|o| o.is_equivalent()));
//! assert!(engine.last_run_stats().sessions_reused > 0);
//! ```
//!
//! ## Migrating from `LEAPFROG_*` environment variables
//!
//! | Env var | `EngineConfig` field |
//! |---|---|
//! | `LEAPFROG_THREADS` | `threads(n)` (`0` = auto) |
//! | `LEAPFROG_SESSION_GC` | `session_gc_ratio(Some(r))` (`None` = off) |
//! | `LEAPFROG_SESSION_GC_FLOOR` | `session_gc_floor(n)` |
//! | `LEAPFROG_STRICT_WITNESS` | `strict_witness(true)` |
//! | `LEAPFROG_NO_BLAST_CACHE` | `blast_cache(false)` |
//! | `LEAPFROG_SAT_LBD` | `sat_lbd(false)` when `0` |
//! | `LEAPFROG_SAT_PORTFOLIO` | `sat_portfolio(lanes)` (`0`/`1` = single solver) |
//! | `LEAPFROG_WARM_CAP` | `warm_capacity(n)` (`0` = unbounded) |
//!
//! `LEAPFROG_SCALE`, `LEAPFROG_WITNESS_CORPUS` and
//! `LEAPFROG_SKIP_BASELINE` configure the evaluation *harness* (suite /
//! bench), not the engine; `LEAPFROG_DUMP_SMT` remains an smt-layer
//! debugging knob. The authoritative knob-by-knob table (defaults,
//! layer, config field) is in `docs/ARCHITECTURE.md`.
//!
//! # Verdict API
//!
//! [`prelude::Outcome`] has three cases: `Equivalent(Certificate)` (an
//! independently re-checkable proof), `NotEquivalent(Refutation)` (a
//! concrete [`cex::Witness`] — stores, minimized packet, trace,
//! disagreement — confirmed against the explicit semantics, or an
//! `Unconfirmed` diagnostic if lifting failed), and `Aborted`.
//!
//! ```
//! use leapfrog_repro::prelude::*;
//!
//! let a = parse("parser A { state s { extract(h, 2); goto accept } }").unwrap();
//! let q = a.state_by_name("s").unwrap();
//! assert!(check_language_equivalence(&a, q, &a, q).is_equivalent());
//! ```
//!
//! A refuted query yields a replayable witness:
//!
//! ```
//! use leapfrog_repro::prelude::*;
//!
//! let a = parse("parser A { state s { extract(h, 1);
//!                  select(h) { 0b1 => accept; _ => reject; } } }").unwrap();
//! let b = parse("parser B { state s { extract(h, 1); goto reject } }").unwrap();
//! let qa = a.state_by_name("s").unwrap();
//! let qb = b.state_by_name("s").unwrap();
//! let mut engine = EngineConfig::new().threads(1).build();
//! let outcome = engine.check(&a, qa, &b, qb);
//! let witness = outcome.witness().expect("confirmed counterexample");
//! assert!(witness.check());
//! assert_eq!(witness.packet.len(), 1);
//! ```

#![warn(missing_docs)]

pub use leapfrog as checker;
pub use leapfrog_bitvec as bitvec;
pub use leapfrog_cex as cex;
pub use leapfrog_hwgen as hwgen;
pub use leapfrog_logic as logic;
pub use leapfrog_p4a as p4a;
pub use leapfrog_sat as sat;
pub use leapfrog_smt as smt;
pub use leapfrog_suite as suite;

/// The most common imports for downstream users.
pub mod prelude {
    pub use leapfrog::checker::check_language_equivalence;
    pub use leapfrog::{
        certificate, Certificate, Checker, Engine, EngineConfig, EngineStats, Options, Outcome,
        QueryRequest, QuerySpec, WitnessSink,
    };
    pub use leapfrog_bitvec::BitVec;
    pub use leapfrog_cex::{Disagreement, Refutation, Witness};
    pub use leapfrog_p4a::builder::Builder;
    pub use leapfrog_p4a::semantics::Config;
    pub use leapfrog_p4a::surface::parse;
    pub use leapfrog_p4a::Automaton;
}
