//! Umbrella crate for the Leapfrog reproduction: re-exports the public
//! API of every layer. See the README for the architecture and the
//! `leapfrog` crate for the checker entry points.
//!
//! ```
//! use leapfrog_repro::prelude::*;
//!
//! let a = parse("parser A { state s { extract(h, 2); goto accept } }").unwrap();
//! let q = a.state_by_name("s").unwrap();
//! assert!(check_language_equivalence(&a, q, &a, q).is_equivalent());
//! ```

pub use leapfrog as checker;
pub use leapfrog_bitvec as bitvec;
pub use leapfrog_hwgen as hwgen;
pub use leapfrog_logic as logic;
pub use leapfrog_p4a as p4a;
pub use leapfrog_sat as sat;
pub use leapfrog_smt as smt;
pub use leapfrog_suite as suite;

/// The most common imports for downstream users.
pub mod prelude {
    pub use leapfrog::checker::check_language_equivalence;
    pub use leapfrog::{certificate, Certificate, Checker, Options, Outcome};
    pub use leapfrog_bitvec::BitVec;
    pub use leapfrog_p4a::builder::Builder;
    pub use leapfrog_p4a::semantics::Config;
    pub use leapfrog_p4a::surface::parse;
    pub use leapfrog_p4a::Automaton;
}
