//! A runnable wire-client snippet: start a daemon, pose one named and one
//! inline query, print the verdicts, and shut the daemon down.
//!
//! ```text
//! # terminal 1
//! cargo run --release -p leapfrog-serve --bin leapfrogd -- --addr 127.0.0.1:4617
//! # terminal 2
//! cargo run --release -p leapfrog-serve --example client -- 127.0.0.1:4617
//! ```
//!
//! Without an address argument the example spawns its own in-process
//! server on a free port, so it always runs.

use leapfrog_serve::{Client, Server, ServerOptions};

fn main() {
    let addr = match std::env::args().nth(1) {
        Some(addr) => addr,
        None => {
            // Self-contained mode: serve from this process.
            let server =
                Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind a free port");
            let addr = server.local_addr().unwrap().to_string();
            std::thread::spawn(move || server.run().unwrap());
            println!("(spawned an in-process server on {addr})");
            addr
        }
    };
    let mut client = Client::connect(&addr).expect("connect to leapfrogd");

    // A named Table 2 row.
    let reply = client.check_named("Speculative loop").expect("named check");
    println!(
        "Speculative loop: equivalent={} ({} entailment checks, {:?} wall)",
        reply.outcome.is_equivalent(),
        reply.stats.entailment_checks,
        reply.stats.wall_time,
    );

    // An inline pair: a 4-bit extractor against a split version of itself.
    let reply = client
        .check_inline(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
            "s",
            "parser B { state s { extract(pre, 2); goto t }
                        state t { extract(suf, 2);
               select(pre) { 0b11 => accept; _ => reject; } } }",
            "s",
        )
        .expect("inline check");
    println!(
        "inline pair: equivalent={} (outcome JSON: {} bytes)",
        reply.outcome.is_equivalent(),
        reply.outcome_json.len(),
    );

    let stats = client.engine_stats().expect("stats");
    println!("engine stats: {}", stats.render());
    client.shutdown().expect("shutdown");
    println!("daemon shut down cleanly");
}
