//! Round-trip property tests for the wire protocol encoder/decoder:
//! every `Outcome` / `Witness` / `RunStats` must survive
//! serialize → parse → serialize byte-for-byte, including the
//! multi-header >112-bit witnesses produced by the mutant suite. Fixed
//! seeds, like the existing workload loops — the offline environment has
//! no proptest.

use std::time::Duration;

use leapfrog::checker::check_language_equivalence;
use leapfrog::json;
use leapfrog::{Outcome, RunStats};
use leapfrog_obs::{PhaseBreakdown, PhaseStat, PHASES};
use leapfrog_serve::proto::{
    fleet_stats_from_value, fleet_stats_to_value, outcome_to_value, overloaded_from_value,
    overloaded_to_value, portfolio_stats_from_value, portfolio_stats_to_value, request_from_value,
    request_to_value, run_stats_from_value, run_stats_to_value, verify_reply_from_value,
    verify_reply_to_value, wire_outcome_from_value, wire_outcome_to_value, wire_witness_of,
    EngineStatsReply, FleetStats, OverloadScope, Overloaded, PairSpec, Request, VerifyReply,
    WireOptions, WireOutcome,
};
use leapfrog_smt::{PortfolioStats, QueryStats, SolverStats};
use leapfrog_suite::mutants::mutant_benchmarks;
use leapfrog_suite::utility::sloppy_strict;
use leapfrog_suite::{standard_benchmarks, Scale};

/// serialize → parse → serialize must reproduce the first rendering, and
/// the typed decode must re-encode to the same bytes.
fn assert_outcome_roundtrip(outcome: &Outcome, label: &str) {
    let text = outcome_to_value(outcome).render();
    let parsed = json::parse(&text).expect("wire JSON parses");
    assert_eq!(parsed.render(), text, "{label}: value tree round trip");
    let typed = wire_outcome_from_value(&parsed).expect("typed decode");
    assert_eq!(
        wire_outcome_to_value(&typed).render(),
        text,
        "{label}: typed round trip"
    );
    match (outcome, &typed) {
        (Outcome::Equivalent(_), WireOutcome::Equivalent(_)) => {}
        (Outcome::NotEquivalent(r), WireOutcome::NotEquivalent(w)) => {
            let original = r.witness().expect("confirmed refutation");
            let wire = wire_witness_of(original);
            assert_eq!(**w, wire, "{label}: witness fields survive");
        }
        (Outcome::NotEquivalent(_), WireOutcome::Unconfirmed(_, _)) => {}
        (Outcome::Aborted(_), WireOutcome::Aborted(_)) => {}
        other => panic!("{label}: outcome kind changed in flight: {other:?}"),
    }
}

#[test]
fn certificate_outcomes_roundtrip() {
    // One equivalent utility row and one applicability self-comparison.
    for bench in standard_benchmarks(Scale::Small).iter().take(5) {
        if !bench.expect_equivalent {
            continue;
        }
        let outcome = check_language_equivalence(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
        );
        assert!(outcome.is_equivalent(), "{} must verify", bench.name);
        assert_outcome_roundtrip(&outcome, bench.name);
    }
}

#[test]
fn sanity_witness_roundtrips() {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let outcome = check_language_equivalence(&sloppy, ql, &strict, qr);
    assert!(outcome.witness().is_some(), "sanity pair must refute");
    assert_outcome_roundtrip(&outcome, "sanity pair");
}

#[test]
fn long_mutant_witnesses_roundtrip() {
    // The applicability mutants refute with multi-header packets; at
    // least one witness must exceed 112 bits end-to-end and every one
    // must survive the wire unchanged.
    let mut longest = 0usize;
    for bench in mutant_benchmarks() {
        let outcome = check_language_equivalence(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
        );
        let w = outcome
            .witness()
            .unwrap_or_else(|| panic!("{} must carry a confirmed witness", bench.name));
        longest = longest.max(w.original_bits.max(w.packet.len()));
        assert_outcome_roundtrip(&outcome, bench.name);
    }
    assert!(
        longest > 112,
        "the mutant suite must exercise >112-bit witnesses (saw {longest})"
    );
}

#[test]
fn aborted_outcome_roundtrips() {
    let outcome = Outcome::Aborted("iteration budget 7 exhausted with |R| = 3".into());
    assert_outcome_roundtrip(&outcome, "aborted");
}

/// A random phase breakdown in canonical order — a random subset of the
/// phases, each with nonzero count (matching the tracer's invariant).
fn random_phases(next: &mut impl FnMut() -> u64) -> PhaseBreakdown {
    let mut entries = Vec::new();
    for &phase in PHASES.iter() {
        if next().is_multiple_of(3) {
            entries.push(PhaseStat {
                phase,
                count: 1 + next() % 1_000,
                nanos: next() % 1_000_000_000,
            });
        }
    }
    PhaseBreakdown { entries }
}

#[test]
fn run_stats_roundtrip_randomized() {
    // Fixed-seed random RunStats (durations in whole nanoseconds, like
    // the real counters): serialize → parse → typed decode → serialize
    // must be the identity on bytes.
    let mut state = 0x1eaf_5eedu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for round in 0..50 {
        let mut s = RunStats {
            iterations: next() % 100_000,
            extended: next() % 10_000,
            skipped: next() % 10_000,
            wp_generated: next() % 100_000,
            scope_pairs: (next() % 500) as usize,
            max_formula_size: (next() % 100_000) as usize,
            witnesses_confirmed: next() % 2,
            witnesses_unconfirmed: next() % 2,
            witness_bits_minimized: next() % 4_096,
            threads: 1 + (next() % 16) as usize,
            parallel_batches: next() % 100,
            parallel_checks: next() % 10_000,
            merge_rechecks: next() % 100,
            entailment_checks: next() % 10_000,
            premises_matched: next() % 1_000_000,
            premises_total: next() % 10_000_000,
            sessions_reused: next() % 100,
            entailment_memo_hits: next() % 10_000,
            sum_cache_hits: next() % 10,
            reach_cache_hits: next() % 10,
            wall_time: Duration::from_nanos(next() % 10_000_000_000),
            queries: QueryStats {
                queries: next() % 10_000,
                cegar_rounds: next() % 1_000,
                blocks_considered: next() % 100_000,
                blocks_validated: next() % 100_000,
                session_rebuilds: next() % 50,
                live_clauses_peak: next() % 1_000_000,
                blast_cache_hits: next() % 100_000,
                blast_cache_misses: next() % 100_000,
                inst_ledger_hits: next() % 10_000,
                sat: SolverStats {
                    decisions: next() % 1_000_000,
                    propagations: next() % 100_000_000,
                    conflicts: next() % 1_000_000,
                    restarts: next() % 10_000,
                    deleted_clauses: next() % 1_000_000,
                    learnt_clauses: next() % 1_000_000,
                    lbd_histogram: std::array::from_fn(|_| next() % 100_000),
                },
                portfolio: PortfolioStats {
                    lanes: next() % 8,
                    races: next() % 10_000,
                    solo: next() % 10_000,
                    wins: std::array::from_fn(|_| next() % 10_000),
                    lane_stats: (0..(next() % 4))
                        .map(|_| SolverStats {
                            decisions: next() % 1_000_000,
                            propagations: next() % 100_000_000,
                            conflicts: next() % 1_000_000,
                            restarts: next() % 10_000,
                            deleted_clauses: next() % 1_000_000,
                            learnt_clauses: next() % 1_000_000,
                            lbd_histogram: std::array::from_fn(|_| next() % 100_000),
                        })
                        .collect(),
                },
                durations: (0..(next() % 8))
                    .map(|_| Duration::from_nanos(next() % 5_000_000_000))
                    .collect(),
            },
            phases: random_phases(&mut next),
        };
        if round == 0 {
            s = RunStats::default(); // the all-zeros corner
        }
        let text = run_stats_to_value(&s).render();
        let parsed = json::parse(&text).expect("stats JSON parses");
        assert_eq!(parsed.render(), text, "round {round}: value round trip");
        let decoded = run_stats_from_value(&parsed).expect("typed decode");
        assert_eq!(
            run_stats_to_value(&decoded).render(),
            text,
            "round {round}: typed round trip"
        );
        assert_eq!(decoded.wall_time, s.wall_time, "round {round}");
        assert_eq!(decoded.queries.durations, s.queries.durations);
    }
}

/// A fixed-seed random engine-stats reply (the per-shard `stats` unit).
fn random_stats_reply(next: &mut impl FnMut() -> u64) -> EngineStatsReply {
    EngineStatsReply {
        stats: leapfrog::EngineStats {
            checks: next() % 100_000,
            batches: next() % 10_000,
            pairs_interned: next() % 1_000,
            sum_cache_hits: next() % 10_000,
            reach_cache_hits: next() % 10_000,
            sessions_reused: next() % 10_000,
            entailment_memo_hits: next() % 100_000,
            warm_evictions: next() % 1_000,
            pair_evictions: next() % 1_000,
            session_evictions: next() % 1_000,
            ledger_evictions: next() % 1_000,
        },
        ledger_len: (next() % 100_000) as usize,
        cache_entries: (next() % 10_000) as usize,
        state_report: if next().is_multiple_of(2) {
            Some(format!("loaded {} memoized verdicts", next() % 500))
        } else {
            None
        },
    }
}

#[test]
fn fleet_stats_roundtrip_randomized() {
    // Fixed-seed random fleets at 1..=8 shards: encode → parse → typed
    // decode → encode must be the identity on bytes, and the aggregate
    // must stay the field-wise sum of the shards.
    let mut state = 0x5eed_1eafu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for round in 0..40 {
        let workers = 1 + (next() % 8) as usize;
        let shards: Vec<EngineStatsReply> = (0..workers)
            .map(|_| random_stats_reply(&mut next))
            .collect();
        let fleet = FleetStats::of_shards(shards.clone());
        assert_eq!(fleet.workers, workers);
        let summed: u64 = shards.iter().map(|s| s.stats.checks).sum();
        assert_eq!(fleet.aggregate.stats.checks, summed, "round {round}");
        let text = fleet_stats_to_value(&fleet).render();
        let parsed = json::parse(&text).expect("fleet stats JSON parses");
        assert_eq!(parsed.render(), text, "round {round}: value round trip");
        let decoded = fleet_stats_from_value(&parsed).expect("typed decode");
        assert_eq!(decoded, fleet, "round {round}: typed fields survive");
        assert_eq!(
            fleet_stats_to_value(&decoded).render(),
            text,
            "round {round}: typed round trip"
        );
    }
}

#[test]
fn fleet_stats_rejects_mislabelled_shards() {
    let mut state = 0xabcdu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let fleet = FleetStats::of_shards(vec![
        random_stats_reply(&mut next),
        random_stats_reply(&mut next),
    ]);
    let text = fleet_stats_to_value(&fleet).render();
    // Swap the shard labels: the decoder must refuse the permutation,
    // because labels are routing indices.
    let broken = text.replacen("\"shard\": 0", "\"shard\": 9", 1);
    let parsed = json::parse(&broken).expect("still valid JSON");
    assert!(fleet_stats_from_value(&parsed).is_err());
}

#[test]
fn portfolio_frames_with_out_of_range_lane_counts_are_rejected() {
    let stats = PortfolioStats {
        lanes: 2,
        ..PortfolioStats::default()
    };
    let mut v = portfolio_stats_to_value(&stats);
    portfolio_stats_from_value(&v).expect("in-range lane count decodes");
    // Tamper the lane count past the histogram width: consumers slice the
    // wins array by it, so the decoder must reject rather than let a
    // malformed frame panic whoever formats the stats.
    if let json::Value::Obj(fields) = &mut v {
        for (k, val) in fields.iter_mut() {
            if k == "lanes" {
                *val = json::Value::Num(9.0);
            }
        }
    }
    let err = portfolio_stats_from_value(&v).expect_err("lanes above the cap must be rejected");
    assert!(err.contains("lane count"), "unexpected error: {err}");
}

#[test]
fn overloaded_roundtrip_randomized() {
    let mut state = 0x6f76_6572u64; // "over"
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for round in 0..40 {
        let scope = if next().is_multiple_of(2) {
            OverloadScope::Shard
        } else {
            OverloadScope::Client
        };
        let o = Overloaded {
            scope,
            // Client-quota rejections precede routing and carry no shard.
            shard: (scope == OverloadScope::Shard).then(|| (next() % 16) as usize),
            depth: next() % 10_000,
            limit: 1 + next() % 10_000,
            retry_after_ms: 50 + next() % 5_000,
        };
        let text = overloaded_to_value(&o).render();
        let parsed = json::parse(&text).expect("overloaded JSON parses");
        assert_eq!(parsed.render(), text, "round {round}: value round trip");
        let decoded = overloaded_from_value(&parsed)
            .expect("typed decode")
            .expect("an overloaded document decodes to Some");
        assert_eq!(decoded, o, "round {round}: typed fields survive");
        assert_eq!(
            overloaded_to_value(&decoded).render(),
            text,
            "round {round}: typed round trip"
        );
    }
}

#[test]
fn non_overloaded_replies_decode_to_none() {
    for text in ["{\"bye\": true}", "{\"error\": \"nope\"}"] {
        let parsed = json::parse(text).unwrap();
        assert_eq!(overloaded_from_value(&parsed), Ok(None), "{text}");
    }
}

#[test]
fn requests_roundtrip() {
    let requests = [
        Request::Check {
            pair: PairSpec::Named("MPLS Vectorized".into()),
            options: WireOptions::default(),
        },
        Request::Check {
            pair: PairSpec::Inline {
                left: "parser A { state s { extract(h, 2); goto accept; } }".into(),
                left_start: "s".into(),
                right: "parser B { state s { extract(g, 2); goto accept; } }".into(),
                right_start: "s".into(),
            },
            options: WireOptions {
                leaps: Some(false),
                max_iterations: Some(1234),
                ..WireOptions::default()
            },
        },
        Request::Stats,
        Request::Metrics,
        Request::SlowLog,
        Request::Shutdown,
    ];
    for req in &requests {
        let text = request_to_value(req).render();
        let back = request_from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, req, "request round trip: {text}");
        assert_eq!(request_to_value(&back).render(), text);
    }
}

#[test]
fn verify_requests_roundtrip_with_a_real_certificate() {
    // A verify request embeds the certificate document verbatim; the
    // round trip must preserve it byte-for-byte so the daemon's trust
    // root sees exactly what the client archived.
    let bench = &standard_benchmarks(Scale::Small)[0];
    let outcome = check_language_equivalence(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
    );
    let Outcome::Equivalent(cert) = outcome else {
        panic!("{} must verify", bench.name);
    };
    let requests = [
        Request::Verify {
            pair: PairSpec::Named(bench.name.to_string()),
            certificate: json::parse(&cert.to_json()).unwrap(),
        },
        Request::Verify {
            pair: PairSpec::Inline {
                left: "parser A { state s { extract(h, 2); goto accept; } }".into(),
                left_start: "s".into(),
                right: "parser B { state s { extract(g, 2); goto accept; } }".into(),
                right_start: "s".into(),
            },
            certificate: json::parse("{\"leaps\": true}").unwrap(),
        },
    ];
    for req in &requests {
        let text = request_to_value(req).render();
        let back = request_from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, req, "verify request round trip: {text}");
        assert_eq!(request_to_value(&back).render(), text);
        // The embedded certificate must survive rendering unchanged.
        if let Request::Verify { certificate, .. } = &back {
            let body = json::get(&json::parse(&text).unwrap(), "verify")
                .and_then(|b| json::get(b, "certificate").cloned())
                .unwrap();
            assert_eq!(&body, certificate);
        }
    }
}

#[test]
fn verify_replies_roundtrip() {
    let replies = [
        VerifyReply::accepted(),
        VerifyReply::rejected(
            "not_closed",
            "relation is not closed under WP: ⟨l.s, 0⟩ / ⟨r.t, 1⟩ ⇒ …",
        ),
        VerifyReply::rejected("malformed", "relation[3]: unknown expression tag"),
    ];
    for reply in &replies {
        let text = verify_reply_to_value(reply).render();
        let parsed = json::parse(&text).expect("verify reply JSON parses");
        assert_eq!(parsed.render(), text, "value round trip: {text}");
        let decoded = verify_reply_from_value(&parsed).expect("typed decode");
        assert_eq!(&decoded, reply, "typed fields survive: {text}");
        assert_eq!(verify_reply_to_value(&decoded).render(), text);
    }
    // An accepting reply carrying an error payload (or a rejection
    // missing one) is a protocol error, not a lenient decode.
    for bad in [
        "{\"verified\": {\"ok\": true, \"class\": \"not_closed\", \"detail\": \"x\"}}",
        "{\"verified\": {\"ok\": false}}",
    ] {
        let parsed = json::parse(bad).unwrap();
        assert!(verify_reply_from_value(&parsed).is_err(), "{bad}");
    }
}
