//! Fleet-mode integration tests: verdict bytes must be identical at any
//! worker count, and state saved by an N-shard fleet must warm an
//! M-shard fleet through the fingerprint-routed merge path.

use std::collections::BTreeMap;

use leapfrog_serve::{Client, Server, ServerOptions};
use leapfrog_suite::{standard_benchmarks, Scale};

/// Spawns an in-process fleet and returns its address plus the join
/// handle of the serving thread (joined after `shutdown`).
fn start(
    workers: usize,
    state_dir: Option<&std::path::Path>,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let opts = ServerOptions {
        workers,
        state_dir: state_dir.map(Into::into),
        scale: Scale::Small,
        ..ServerOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", opts).expect("bind a free port");
    let addr = server.local_addr().unwrap().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// The rows the fleet tests drive: enough distinct pairs that 4-way
/// fingerprint routing actually spreads them over more than one shard.
fn row_names() -> Vec<String> {
    standard_benchmarks(Scale::Small)
        .iter()
        .take(4)
        .map(|b| b.name.to_string())
        .collect()
}

/// Poses every row from `clients` concurrent connections and returns
/// the outcome bytes per row, plus the fleet's aggregate memo replays.
fn drive(addr: &str, names: &[String], clients: usize) -> (BTreeMap<String, String>, u64) {
    let mut verdicts = BTreeMap::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mine: Vec<&String> = names.iter().skip(c).step_by(clients).collect();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    mine.into_iter()
                        .map(|name| {
                            let reply = client.check_named(name).expect("check");
                            (name.clone(), reply.outcome_json)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            verdicts.extend(h.join().expect("client thread"));
        }
    });
    let mut client = Client::connect(addr).expect("connect for stats");
    let fleet = client.fleet_stats().expect("fleet stats");
    (verdicts, fleet.aggregate.stats.entailment_memo_hits)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn verdict_bytes_identical_across_worker_counts() {
    let names = row_names();

    let (addr, handle) = start(1, None);
    let (single, _) = drive(&addr, &names, 2);
    shutdown(&addr, handle);

    let (addr, handle) = start(4, None);
    let mut client = Client::connect(&addr).expect("connect");
    let fleet = client.fleet_stats().expect("fleet stats");
    assert_eq!(fleet.workers, 4);
    assert_eq!(fleet.shards.len(), 4);
    drop(client);
    let (sharded, _) = drive(&addr, &names, 3);
    shutdown(&addr, handle);

    assert_eq!(single.len(), names.len());
    assert_eq!(single, sharded, "sharding must never change a verdict byte");
}

#[test]
fn state_saved_at_four_workers_warms_a_two_worker_fleet() {
    let dir = std::env::temp_dir().join(format!(
        "leapfrog-fleet-merge-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let names = row_names();

    // Pass 1: a 4-shard fleet checks everything and saves on shutdown.
    let (addr, handle) = start(4, Some(&dir));
    let (cold, _) = drive(&addr, &names, 3);
    shutdown(&addr, handle);
    let saved_shards = (0..4)
        .filter(|i| dir.join(format!("shard-{i}")).is_dir())
        .count();
    assert!(saved_shards > 0, "shutdown must leave per-shard state dirs");

    // Pass 2: a 2-shard fleet reloads the same directory (merge path:
    // 4 saved shards re-route onto 2) and must replay memoized verdicts
    // without changing a byte.
    let (addr, handle) = start(2, Some(&dir));
    let (warm, memo_hits) = drive(&addr, &names, 3);
    shutdown(&addr, handle);

    assert_eq!(cold, warm, "the merged restart must not change a byte");
    assert!(
        memo_hits > 0,
        "the 2-shard fleet must replay entailment memos merged from the 4-shard save"
    );

    // The merge-path shutdown re-saved at 2 workers and removed the
    // stale higher-numbered shard dirs, so the next start is native.
    assert!(!dir.join("shard-2").exists());
    assert!(!dir.join("shard-3").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
