//! `serve_gauntlet` — the end-to-end wire smoke driver CI runs against a
//! live `leapfrogd`.
//!
//! ```text
//! serve_gauntlet (--addr HOST:PORT | --port-file PATH) [--mutants] [--no-shutdown]
//! ```
//!
//! Drives every standard Table 2 row (and, with `--mutants`, the mutant
//! suite with its long refutation witnesses) through the wire client and
//! diffs each verdict — the full certificate or witness JSON — **byte for
//! byte** against a one-shot in-process `check_language_equivalence` of
//! the same pair. Any mismatch, unexpected verdict or protocol error is a
//! failure; on success the daemon is asked to shut down (unless
//! `--no-shutdown`) and the process exits 0.

use std::time::{Duration, Instant};

use leapfrog::checker::check_language_equivalence;
use leapfrog::json;
use leapfrog_serve::proto::outcome_to_value;
use leapfrog_serve::Client;
use leapfrog_suite::{mutants, standard_benchmarks, Scale};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut include_mutants = false;
    let mut shutdown = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--port-file" => port_file = args.next(),
            "--mutants" => include_mutants = true,
            "--no-shutdown" => shutdown = false,
            other => {
                eprintln!("serve_gauntlet: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let addr = addr.unwrap_or_else(|| {
        let path = port_file.unwrap_or_else(|| {
            eprintln!("serve_gauntlet: need --addr or --port-file");
            std::process::exit(2);
        });
        // The daemon writes the file after binding; wait for it briefly.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match std::fs::read_to_string(&path) {
                Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                _ if Instant::now() > deadline => {
                    eprintln!("serve_gauntlet: port file {path} never appeared");
                    std::process::exit(1);
                }
                _ => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    });

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_gauntlet: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let scale = Scale::from_env();
    let mut rows = standard_benchmarks(scale);
    if include_mutants {
        rows.extend(mutants::mutant_benchmarks());
    }
    let mut failures = 0usize;
    for bench in &rows {
        let local = outcome_to_value(&check_language_equivalence(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
        ))
        .render();
        match client.check_named(bench.name) {
            Ok(reply) => {
                let verdict_ok = reply.outcome.is_equivalent() == bench.expect_equivalent;
                let bytes_ok = reply.outcome_json == local;
                if verdict_ok && bytes_ok {
                    println!(
                        "ok   {:<28} ({} bytes over the wire, {} entailment checks)",
                        bench.name,
                        reply.outcome_json.len(),
                        reply.stats.entailment_checks,
                    );
                } else {
                    failures += 1;
                    if !verdict_ok {
                        eprintln!(
                            "FAIL {:<28} verdict: expected equivalent={}, wire said {}",
                            bench.name,
                            bench.expect_equivalent,
                            reply.outcome.is_equivalent()
                        );
                    }
                    if !bytes_ok {
                        eprintln!(
                            "FAIL {:<28} wire bytes differ from one-shot ({} vs {} bytes)",
                            bench.name,
                            reply.outcome_json.len(),
                            local.len()
                        );
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {:<28} protocol error: {e}", bench.name);
            }
        }
    }

    match client.engine_stats() {
        Ok(stats) => {
            let field = |k: &str| {
                json::get(&stats, k)
                    .ok()
                    .and_then(|v| json::as_usize(v).ok())
                    .unwrap_or(0)
            };
            println!(
                "engine: {} checks, {} pairs interned, {} memo hits, {} sessions reused",
                field("checks"),
                field("pairs_interned"),
                field("entailment_memo_hits"),
                field("sessions_reused"),
            );
        }
        Err(e) => {
            failures += 1;
            eprintln!("FAIL stats request: {e}");
        }
    }
    if shutdown {
        if let Err(e) = client.shutdown() {
            failures += 1;
            eprintln!("FAIL shutdown request: {e}");
        }
    }
    if failures > 0 {
        eprintln!(
            "serve_gauntlet: {failures} failure(s) across {} rows",
            rows.len()
        );
        std::process::exit(1);
    }
    println!(
        "serve_gauntlet: all {} rows byte-identical over the wire",
        rows.len()
    );
}
