//! `serve_gauntlet` — the end-to-end wire smoke driver CI runs against a
//! live `leapfrogd`.
//!
//! ```text
//! serve_gauntlet (--addr HOST:PORT | --port-file PATH) [--mutants]
//!                [--no-shutdown] [--expect-workers N]
//! ```
//!
//! Drives every standard Table 2 row (and, with `--mutants`, the mutant
//! suite with its long refutation witnesses) through the wire client and
//! diffs each verdict — the full certificate or witness JSON — **byte for
//! byte** against a one-shot in-process `check_language_equivalence` of
//! the same pair. Any mismatch, unexpected verdict or protocol error is a
//! failure; on success the daemon is asked to shut down (unless
//! `--no-shutdown`) and the process exits 0.
//!
//! Every `Equivalent` verdict is additionally round-tripped through the
//! daemon's `verify` request: the wire certificate must re-discharge in
//! the independent `leapfrog-certcheck` trust root, and a deliberately
//! tampered copy (corrupted leap flag) must be rejected with a named
//! obligation.
//!
//! After the rows, the gauntlet re-checks the first row (guaranteeing at
//! least one warm memo hit) and scrapes the daemon's `metrics` request:
//! the Prometheus exposition must parse, the core counters (checks,
//! entailment checks, memo hits, connections) must be nonzero, and the
//! scraped check count must agree with the engine's own `stats` reply.
//!
//! `--expect-workers N` is the fleet leg: the shard-labelled `stats`
//! reply must list exactly N shards whose per-shard check counters sum
//! to the aggregate, and the Prometheus exposition must carry the
//! shard-suffixed metrics (`leapfrog_shard_<i>_…`) for every shard.

use std::time::{Duration, Instant};

use leapfrog::checker::check_language_equivalence;
use leapfrog::json;
use leapfrog_serve::proto::outcome_to_value;
use leapfrog_serve::Client;
use leapfrog_suite::{mutants, standard_benchmarks, Scale};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut include_mutants = false;
    let mut shutdown = true;
    let mut expect_workers: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--port-file" => port_file = args.next(),
            "--mutants" => include_mutants = true,
            "--no-shutdown" => shutdown = false,
            "--expect-workers" => {
                expect_workers = args.next().and_then(|s| s.trim().parse().ok());
                if expect_workers.is_none() {
                    eprintln!("serve_gauntlet: --expect-workers needs a number");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("serve_gauntlet: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let addr = addr.unwrap_or_else(|| {
        let path = port_file.unwrap_or_else(|| {
            eprintln!("serve_gauntlet: need --addr or --port-file");
            std::process::exit(2);
        });
        // The daemon writes the file after binding; wait for it briefly.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match std::fs::read_to_string(&path) {
                Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                _ if Instant::now() > deadline => {
                    eprintln!("serve_gauntlet: port file {path} never appeared");
                    std::process::exit(1);
                }
                _ => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    });

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_gauntlet: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let scale = Scale::from_env();
    let mut rows = standard_benchmarks(scale);
    if include_mutants {
        rows.extend(mutants::mutant_benchmarks());
    }
    let mut failures = 0usize;
    let mut certified = 0usize;
    let mut tamper_target: Option<(String, leapfrog::Certificate)> = None;
    for bench in &rows {
        let local = outcome_to_value(&check_language_equivalence(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
        ))
        .render();
        match client.check_named(bench.name) {
            Ok(reply) => {
                let verdict_ok = reply.outcome.is_equivalent() == bench.expect_equivalent;
                let bytes_ok = reply.outcome_json == local;
                if verdict_ok && bytes_ok {
                    println!(
                        "ok   {:<28} ({} bytes over the wire, {} entailment checks)",
                        bench.name,
                        reply.outcome_json.len(),
                        reply.stats.entailment_checks,
                    );
                } else {
                    failures += 1;
                    if !verdict_ok {
                        eprintln!(
                            "FAIL {:<28} verdict: expected equivalent={}, wire said {}",
                            bench.name,
                            bench.expect_equivalent,
                            reply.outcome.is_equivalent()
                        );
                    }
                    if !bytes_ok {
                        eprintln!(
                            "FAIL {:<28} wire bytes differ from one-shot ({} vs {} bytes)",
                            bench.name,
                            reply.outcome_json.len(),
                            local.len()
                        );
                    }
                }
                // Every wire certificate goes back through the daemon's
                // `verify` request: the independent trust root must
                // re-discharge every obligation.
                if let leapfrog_serve::WireOutcome::Equivalent(cert) = &reply.outcome {
                    match client.verify_named(bench.name, &cert.to_json()) {
                        Ok(v) if v.ok => certified += 1,
                        Ok(v) => {
                            failures += 1;
                            eprintln!(
                                "FAIL {:<28} trust root rejected the wire certificate [{}]: {}",
                                bench.name,
                                v.error_class.as_deref().unwrap_or("?"),
                                v.detail.as_deref().unwrap_or("?"),
                            );
                        }
                        Err(e) => {
                            failures += 1;
                            eprintln!("FAIL {:<28} verify request: {e}", bench.name);
                        }
                    }
                    if tamper_target.is_none() {
                        tamper_target = Some((bench.name.to_string(), cert.clone()));
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {:<28} protocol error: {e}", bench.name);
            }
        }
    }

    // The negative verify leg: a tampered certificate (corrupted leap
    // flag) must be rejected with a named failing obligation.
    match &tamper_target {
        Some((name, cert)) => {
            let mut bad = cert.clone();
            bad.leaps = !bad.leaps;
            match client.verify_named(name, &bad.to_json()) {
                Ok(v) if !v.ok => println!(
                    "verify: {certified} wire certificates re-discharged; tampered one rejected [{}]",
                    v.error_class.as_deref().unwrap_or("?"),
                ),
                Ok(_) => {
                    failures += 1;
                    eprintln!("FAIL {name:<28} trust root accepted a tampered certificate");
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL {name:<28} tampered verify request: {e}");
                }
            }
        }
        None => {
            failures += 1;
            eprintln!("FAIL no equivalent row produced a certificate to verify");
        }
    }

    // Re-check the first row: it is warm now, so the reply is served
    // with at least one entailment-memo hit — making the memo-hit
    // counter below deterministic rather than scale-dependent.
    if let Some(first) = rows.first() {
        if let Err(e) = client.check_named(first.name) {
            failures += 1;
            eprintln!("FAIL {:<28} warm re-check: {e}", first.name);
        }
    }

    let mut engine_checks = 0usize;
    match client.engine_stats() {
        Ok(stats) => {
            let field = |k: &str| {
                json::get(&stats, k)
                    .ok()
                    .and_then(|v| json::as_usize(v).ok())
                    .unwrap_or(0)
            };
            engine_checks = field("checks");
            println!(
                "engine: {} checks, {} pairs interned, {} memo hits, {} sessions reused",
                field("checks"),
                field("pairs_interned"),
                field("entailment_memo_hits"),
                field("sessions_reused"),
            );
        }
        Err(e) => {
            failures += 1;
            eprintln!("FAIL stats request: {e}");
        }
    }
    if let Some(expected) = expect_workers {
        failures += check_fleet(&mut client, expected);
    }
    failures += scrape_metrics(&mut client, engine_checks, expect_workers);
    if shutdown {
        if let Err(e) = client.shutdown() {
            failures += 1;
            eprintln!("FAIL shutdown request: {e}");
        }
    }
    if failures > 0 {
        eprintln!(
            "serve_gauntlet: {failures} failure(s) across {} rows",
            rows.len()
        );
        std::process::exit(1);
    }
    println!(
        "serve_gauntlet: all {} rows byte-identical over the wire",
        rows.len()
    );
}

/// The fleet leg: the shard-labelled `stats` reply must list exactly
/// `expected` shards, their check counters must sum to the aggregate,
/// and at least one shard must have served something. Returns the
/// failure count.
fn check_fleet(client: &mut leapfrog_serve::Client, expected: usize) -> usize {
    let fleet = match client.fleet_stats() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("FAIL fleet stats request: {e}");
            return 1;
        }
    };
    let mut failures = 0usize;
    if fleet.workers != expected || fleet.shards.len() != expected {
        failures += 1;
        eprintln!(
            "FAIL fleet: expected {expected} workers, stats reply says workers={} with {} shard entries",
            fleet.workers,
            fleet.shards.len()
        );
    }
    let shard_checks: u64 = fleet.shards.iter().map(|s| s.stats.checks).sum();
    if shard_checks != fleet.aggregate.stats.checks {
        failures += 1;
        eprintln!(
            "FAIL fleet: per-shard checks sum to {shard_checks} but the aggregate says {}",
            fleet.aggregate.stats.checks
        );
    }
    if shard_checks == 0 {
        failures += 1;
        eprintln!("FAIL fleet: no shard served a single check");
    }
    if failures == 0 {
        let per_shard: Vec<u64> = fleet.shards.iter().map(|s| s.stats.checks).collect();
        println!(
            "fleet: {} workers, per-shard checks {:?} (sum {})",
            fleet.workers, per_shard, shard_checks
        );
    }
    failures
}

/// Scrapes the daemon's `metrics` request and validates it: the
/// Prometheus text must parse back into a snapshot, the core counters
/// must be live, the scraped check count must match what the engine's
/// own `stats` reply said, and — on a fleet leg — every shard's
/// suffixed metrics must appear. Returns the failure count.
fn scrape_metrics(
    client: &mut leapfrog_serve::Client,
    engine_checks: usize,
    expect_workers: Option<usize>,
) -> usize {
    let (text, _json) = match client.metrics() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("FAIL metrics request: {e}");
            return 1;
        }
    };
    let snap = match leapfrog_obs::parse_prometheus(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL metrics exposition does not parse: {e}");
            return 1;
        }
    };
    let mut failures = 0usize;
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    for name in [
        "leapfrog_checks_total",
        "leapfrog_entailment_checks_total",
        "leapfrog_entailment_memo_hits_total",
        "leapfrog_connections_total",
        "leapfrog_requests_total",
    ] {
        if counter(name) == 0 {
            failures += 1;
            eprintln!("FAIL metrics counter {name} is zero after the gauntlet");
        }
    }
    if counter("leapfrog_checks_total") != engine_checks as u64 {
        failures += 1;
        eprintln!(
            "FAIL metrics disagree with stats: leapfrog_checks_total={} but engine said {}",
            counter("leapfrog_checks_total"),
            engine_checks
        );
    }
    if let Some(workers) = expect_workers {
        let mut shard_checks = 0u64;
        for shard in 0..workers {
            let name = format!("leapfrog_shard_{shard}_checks_total");
            if !snap.counters.contains_key(name.as_str()) {
                failures += 1;
                eprintln!("FAIL metrics exposition is missing {name}");
            }
            shard_checks += counter(&name);
        }
        if shard_checks != counter("leapfrog_checks_total") {
            failures += 1;
            eprintln!(
                "FAIL metrics: per-shard check counters sum to {shard_checks} but leapfrog_checks_total={}",
                counter("leapfrog_checks_total")
            );
        }
    }
    if failures == 0 {
        println!(
            "metrics: exposition parses; checks={} entailment={} memo_hits={} connections={}",
            counter("leapfrog_checks_total"),
            counter("leapfrog_entailment_checks_total"),
            counter("leapfrog_entailment_memo_hits_total"),
            counter("leapfrog_connections_total"),
        );
    }
    failures
}
