//! `fleet_bench` — the fleet's concurrent-throughput and merge driver.
//!
//! ```text
//! fleet_bench [--clients K] [--state-dir DIR] [--gate]
//! ```
//!
//! Three legs, all against in-process servers on free ports:
//!
//! 1. **1-worker pass** — the full named suite (standard rows plus the
//!    mutant refutations) posed by `K` concurrent wire clients against a
//!    `--workers 1` fleet, wall-clock recorded.
//! 2. **4-worker pass** — the same load against a `--workers 4` fleet.
//!    Every verdict is byte-diffed against the 1-worker pass: sharding
//!    must never change an answer.
//! 3. **restart/merge pass** — the 4-worker fleet saves its state on
//!    shutdown (`shard-0..3/` under `--state-dir`); a 2-worker fleet
//!    then reloads the same directory through the merge path (memos
//!    re-route by fingerprint) and replays the suite. Bytes must match
//!    the earlier passes and the fleet's aggregate stats must show
//!    entailment-memo replays, proving the merged state actually warmed
//!    the new shards.
//!
//! Each run appends one snapshot line (commit-less; `kind: "fleet"`) to
//! `LEAPFROG_BENCH_HISTORY` (default `BENCH_history.jsonl`) with the
//! per-worker-count wall-clocks and the speedup, so the inter-query
//! parallel axis trends alongside `table2`'s intra-query one. The line
//! deliberately omits `batch_mode`, so `table2`'s rolling-baseline gate
//! never mistakes a fleet snapshot for one of its own.
//!
//! `--gate` (CI) fails the run on any byte mismatch, on a merge pass
//! that replays nothing, and — on hosts with ≥ 4 cores — on a 4-worker
//! wall-clock that does not beat the 1-worker one.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use leapfrog::json::{self, Value};
use leapfrog_serve::{Client, Server, ServerOptions};
use leapfrog_suite::{mutants, standard_benchmarks, Scale};

/// One pass's outcome bytes, keyed by row name.
type VerdictMap = BTreeMap<String, String>;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut clients = 8usize;
    let mut state_dir: Option<std::path::PathBuf> = None;
    let mut gate = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|s| s.trim().parse().ok())
                    .filter(|&k| k > 0)
                    .unwrap_or_else(|| {
                        eprintln!("fleet_bench: --clients needs a positive number");
                        std::process::exit(2);
                    })
            }
            "--state-dir" => state_dir = Some(args.next().unwrap_or_default().into()),
            "--gate" => gate = true,
            other => {
                eprintln!("fleet_bench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let state_dir = state_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("leapfrog-fleet-bench-{}", std::process::id()))
    });
    if state_dir.exists() {
        if let Err(e) = std::fs::remove_dir_all(&state_dir) {
            eprintln!("fleet_bench: cannot clear {}: {e}", state_dir.display());
            std::process::exit(1);
        }
    }
    let scale = Scale::from_env();
    let names: Vec<String> = standard_benchmarks(scale)
        .iter()
        .map(|b| b.name.to_string())
        .chain(
            mutants::mutant_benchmarks()
                .iter()
                .map(|b| b.name.to_string()),
        )
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "fleet_bench: {} rows, {clients} concurrent clients, {cores} core(s), scale {scale:?}",
        names.len()
    );

    let mut failures = 0usize;

    // Leg 1+2: cold fleets at 1 and 4 workers, same concurrent load.
    let (single, wall_1, _) = run_pass(1, None, &names, clients, &mut failures);
    let (sharded, wall_4, _) = run_pass(4, None, &names, clients, &mut failures);
    failures += diff(&single, &sharded, "workers=1", "workers=4");
    let speedup = wall_1.as_secs_f64() / wall_4.as_secs_f64().max(1e-9);
    println!(
        "fleet wall-clock: {wall_1:.2?} at 1 worker, {wall_4:.2?} at 4 workers ({speedup:.2}x)"
    );

    // Leg 3: save at 4 workers, reload at 2 (the merge path).
    let (save_pass, _, _) = run_pass(4, Some(&state_dir), &names, clients, &mut failures);
    failures += diff(&single, &save_pass, "workers=1", "workers=4+save");
    let (merged, _, memo_hits) = run_pass(2, Some(&state_dir), &names, clients, &mut failures);
    failures += diff(&single, &merged, "workers=1", "workers=2+merge");
    if memo_hits == 0 {
        failures += 1;
        eprintln!(
            "FAIL merge: the 2-worker fleet replayed no memoized verdicts from the 4-worker save"
        );
    } else {
        println!("merge leg: 2-worker fleet replayed {memo_hits} memoized verdicts from the 4-worker save");
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    append_history(scale, cores, clients, wall_1, wall_4, speedup, memo_hits);

    if gate && cores >= 4 && speedup <= 1.0 {
        failures += 1;
        eprintln!(
            "FAIL gate: 4-worker wall-clock did not beat 1 worker ({speedup:.2}x on {cores} cores)"
        );
    }
    if failures > 0 {
        eprintln!("fleet_bench: {failures} failure(s)");
        if gate {
            std::process::exit(1);
        }
        return;
    }
    println!("fleet_bench: all verdicts byte-identical across worker counts and the merge restart");
}

/// Starts an in-process fleet at `workers`, drives the whole suite from
/// `clients` concurrent wire clients, shuts the fleet down (saving state
/// when `state_dir` is set), and returns the verdict bytes, the
/// wall-clock of the concurrent check phase, and the fleet's aggregate
/// entailment-memo replays.
fn run_pass(
    workers: usize,
    state_dir: Option<&std::path::Path>,
    names: &[String],
    clients: usize,
    failures: &mut usize,
) -> (VerdictMap, Duration, u64) {
    let opts = ServerOptions {
        workers,
        state_dir: state_dir.map(Into::into),
        ..ServerOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", opts).expect("bind a free port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());

    let start = Instant::now();
    let mut verdicts = VerdictMap::new();
    std::thread::scope(|s| {
        let mut slices = Vec::with_capacity(clients);
        for c in 0..clients {
            let addr = &addr;
            let mine: Vec<&String> = names.iter().skip(c).step_by(clients).collect();
            slices.push(s.spawn(move || -> Result<Vec<(String, String)>, String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let mut out = Vec::with_capacity(mine.len());
                for name in mine {
                    let reply = client
                        .check_named(name)
                        .map_err(|e| format!("{name}: {e}"))?;
                    out.push((name.clone(), reply.outcome_json));
                }
                Ok(out)
            }));
        }
        for slice in slices {
            match slice.join().expect("client thread") {
                Ok(pairs) => verdicts.extend(pairs),
                Err(e) => {
                    *failures += 1;
                    eprintln!("FAIL workers={workers}: {e}");
                }
            }
        }
    });
    let wall = start.elapsed();

    let mut client = Client::connect(&addr).expect("connect for stats");
    let memo_hits = match client.fleet_stats() {
        Ok(fleet) => fleet.aggregate.stats.entailment_memo_hits,
        Err(e) => {
            *failures += 1;
            eprintln!("FAIL workers={workers}: fleet stats: {e}");
            0
        }
    };
    if let Err(e) = client.shutdown() {
        *failures += 1;
        eprintln!("FAIL workers={workers}: shutdown: {e}");
    }
    let _ = handle.join();
    (verdicts, wall, memo_hits)
}

/// Byte-diffs two verdict maps; returns the mismatch count.
fn diff(a: &VerdictMap, b: &VerdictMap, a_name: &str, b_name: &str) -> usize {
    let mut mismatches = 0;
    for (name, bytes) in a {
        match b.get(name) {
            Some(other) if other == bytes => {}
            Some(other) => {
                mismatches += 1;
                eprintln!(
                    "FAIL {name}: {a_name} and {b_name} verdicts differ ({} vs {} bytes)",
                    bytes.len(),
                    other.len()
                );
            }
            None => {
                mismatches += 1;
                eprintln!("FAIL {name}: missing from the {b_name} pass");
            }
        }
    }
    mismatches
}

/// Appends the fleet snapshot to the shared perf trajectory. No
/// `batch_mode` key: `table2`'s baseline loader filters on it, so fleet
/// lines never enter its gate window.
fn append_history(
    scale: Scale,
    cores: usize,
    clients: usize,
    wall_1: Duration,
    wall_4: Duration,
    speedup: f64,
    merge_memo_hits: u64,
) {
    use std::io::Write;
    let path = std::env::var("LEAPFROG_BENCH_HISTORY")
        .unwrap_or_else(|_| "BENCH_history.jsonl".to_string());
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let v = json::obj(vec![
        ("kind", Value::Str("fleet".to_string())),
        ("unix_time", json::num(unix_time as usize)),
        ("scale", Value::Str(format!("{scale:?}"))),
        ("cores", json::num(cores)),
        ("clients", json::num(clients)),
        ("workers1_secs", Value::Num(wall_1.as_secs_f64())),
        ("workers4_secs", Value::Num(wall_4.as_secs_f64())),
        ("fleet_speedup", Value::Num(speedup)),
        ("merge_memo_hits", json::num(merge_memo_hits as usize)),
    ]);
    let line = v
        .render()
        .lines()
        .map(str::trim_start)
        .collect::<Vec<_>>()
        .join(" ");
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    match result {
        Ok(()) => println!("Appended fleet snapshot to {path}"),
        Err(e) => println!("Could not append {path}: {e}"),
    }
}
