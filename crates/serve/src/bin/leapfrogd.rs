//! `leapfrogd` — the equivalence-checking daemon.
//!
//! ```text
//! leapfrogd [--addr HOST:PORT] [--workers N] [--state-dir DIR] [--port-file PATH]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:0`, a free port).
//! * `--workers` — engine shards to run (0 = auto from cores; default
//!   `LEAPFROG_WORKERS` or 1). Requests route to shards by pair
//!   fingerprint, so verdict bytes are identical at any worker count.
//! * `--state-dir` — reload persisted warm state from this directory at
//!   start and save it back on a `shutdown` request; each shard uses
//!   `shard-<i>/` under it, and a layout saved at a different worker
//!   count merges by fingerprint.
//! * `--port-file` — write the bound `HOST:PORT` here once listening (the
//!   CI smoke job discovers the port this way).
//!
//! Engine tuning comes from the `LEAPFROG_*` environment
//! (`EngineConfig::from_env()`: threads, session GC, blast cache,
//! `LEAPFROG_WARM_CAP`); named rows are built at `LEAPFROG_SCALE`;
//! admission control reads `LEAPFROG_QUEUE_DEPTH` and
//! `LEAPFROG_CLIENT_QUOTA`.

use leapfrog_serve::{Server, ServerOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:0".to_string();
    let mut opts = ServerOptions::default();
    let mut port_file: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("leapfrogd: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => {
                let raw = value("--workers");
                opts.workers = raw.trim().parse().unwrap_or_else(|_| {
                    eprintln!("leapfrogd: --workers needs a number, got {raw:?}");
                    std::process::exit(2);
                });
            }
            "--state-dir" => opts.state_dir = Some(value("--state-dir").into()),
            "--port-file" => port_file = Some(value("--port-file")),
            "--help" | "-h" => {
                println!(
                    "usage: leapfrogd [--addr HOST:PORT] [--workers N] [--state-dir DIR] [--port-file PATH]"
                );
                return;
            }
            other => {
                eprintln!("leapfrogd: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let server = match Server::bind(&addr, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("leapfrogd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let bound = server.local_addr().expect("bound listener has an address");
    println!(
        "leapfrogd listening on {bound} with {} worker shard(s)",
        server.effective_workers()
    );
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            eprintln!("leapfrogd: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = server.run() {
        eprintln!("leapfrogd: {e}");
        std::process::exit(1);
    }
}
