//! `persistence_roundtrip` — the cross-process warm-state CI driver.
//!
//! ```text
//! persistence_roundtrip [--state-dir DIR] [--fresh]
//! ```
//!
//! Runs the full standard suite (plus the mutant refutations) twice:
//!
//! 1. a **cold pass** on a fresh engine configured with a state
//!    directory, recording every outcome's canonical JSON, then
//!    `save_state`;
//! 2. a **restart pass** on a brand-new engine built from the saved
//!    state — simulating a daemon restart.
//!
//! The run fails unless (a) every second-pass outcome is byte-identical
//! to the first, (b) the second pass observes warm-state replays
//! (`entailment_memo_hits + inst_ledger_hits > 0`) — skipped when
//! `LEAPFROG_WARM_CAP` bounds the maps so tightly that the state was
//! legitimately evicted — and (c) every verdict matches the suite's
//! expectation in both passes. CI runs it twice: once unbounded, once
//! with `LEAPFROG_WARM_CAP=1` to prove eviction never changes a byte.

use leapfrog::{Engine, EngineConfig};
use leapfrog_serve::proto::outcome_to_value;
use leapfrog_suite::corpus::WitnessCorpus;
use leapfrog_suite::{mutants, standard_benchmarks, Benchmark, Scale};

fn rows() -> Vec<Benchmark> {
    let mut rows = standard_benchmarks(Scale::from_env());
    rows.extend(mutants::mutant_benchmarks());
    rows
}

/// Runs every row through one engine, returning (name, outcome JSON,
/// memo hits, ledger hits, verdict-ok) per row.
fn run_pass(engine: &mut Engine, rows: &[Benchmark]) -> Vec<(String, String, u64, u64, bool)> {
    rows.iter()
        .map(|b| {
            let outcome =
                engine.check_named(b.name, &b.left, b.left_start, &b.right, b.right_start);
            let stats = engine.last_run_stats();
            (
                b.name.to_string(),
                outcome_to_value(&outcome).render(),
                stats.entailment_memo_hits,
                stats.queries.inst_ledger_hits,
                outcome.is_equivalent() == b.expect_equivalent,
            )
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut state_dir = std::path::PathBuf::from("leapfrog-state");
    let mut fresh = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-dir" => {
                state_dir = args
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("persistence_roundtrip: --state-dir needs a value");
                        std::process::exit(2);
                    })
                    .into()
            }
            "--fresh" => fresh = true,
            other => {
                eprintln!("persistence_roundtrip: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if state_dir.exists() {
        if fresh {
            if let Err(e) = std::fs::remove_dir_all(&state_dir) {
                eprintln!(
                    "persistence_roundtrip: cannot clear {}: {e}",
                    state_dir.display()
                );
                std::process::exit(1);
            }
        } else {
            eprintln!(
                "persistence_roundtrip: {} already exists (pass --fresh to clear it)",
                state_dir.display()
            );
            std::process::exit(2);
        }
    }
    let warm_cap = EngineConfig::from_env().warm_capacity;
    let rows = rows();
    println!(
        "persistence roundtrip: {} rows, state dir {}, warm cap {}",
        rows.len(),
        state_dir.display(),
        if warm_cap == 0 {
            "unbounded".to_string()
        } else {
            warm_cap.to_string()
        }
    );

    // Pass 1: cold engine, then save.
    let mut cold = Engine::new(EngineConfig::from_env().with_state_dir(&state_dir));
    cold.attach_witness_sink(Box::new(WitnessCorpus::new()));
    let first = run_pass(&mut cold, &rows);
    if let Err(e) = cold.save_state(&state_dir) {
        eprintln!("persistence_roundtrip: save_state failed: {e}");
        std::process::exit(1);
    }
    println!(
        "pass 1 (cold): {} rows checked, state saved ({} ledger verdicts)",
        first.len(),
        cold.ledger_len(),
    );

    // Pass 2: a brand-new engine restarted from the saved state.
    let mut restarted = Engine::new(EngineConfig::from_env().with_state_dir(&state_dir));
    restarted.attach_witness_sink(Box::new(WitnessCorpus::new()));
    match restarted.state_report() {
        Some(report) => println!("pass 2 (restart): {report}"),
        None => {
            eprintln!("persistence_roundtrip: restart loaded no state at all");
            std::process::exit(1);
        }
    }
    let second = run_pass(&mut restarted, &rows);

    let mut failures = 0usize;
    let mut memo_hits = 0u64;
    let mut ledger_hits = 0u64;
    for ((name, cold_json, _, _, cold_ok), (_, warm_json, memo, ledger, warm_ok)) in
        first.iter().zip(&second)
    {
        memo_hits += memo;
        ledger_hits += ledger;
        if !cold_ok || !warm_ok {
            failures += 1;
            eprintln!("FAIL {name}: verdict does not match the suite expectation");
        }
        if cold_json != warm_json {
            failures += 1;
            eprintln!(
                "FAIL {name}: restart output differs ({} vs {} bytes)",
                cold_json.len(),
                warm_json.len()
            );
        }
    }
    println!("pass 2 replays: {memo_hits} entailment-memo hits, {ledger_hits} inst-ledger hits");
    if warm_cap == 0 && memo_hits + ledger_hits == 0 {
        failures += 1;
        eprintln!("FAIL: the restarted engine replayed nothing from the saved state");
    }
    if failures > 0 {
        eprintln!("persistence_roundtrip: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "persistence_roundtrip: all {} outputs byte-identical across the restart",
        rows.len()
    );
}
