//! A small blocking client for the `leapfrogd` wire protocol.

use std::net::{TcpStream, ToSocketAddrs};

use leapfrog::json::{self, Value};
use leapfrog::RunStats;

use crate::proto::{
    self, run_stats_from_value, wire_outcome_from_value, PairSpec, Request, WireOptions,
    WireOutcome,
};

/// One answered check: the canonical outcome JSON (byte-comparable
/// against a locally encoded outcome), its typed decode, and the run
/// statistics.
#[derive(Debug)]
pub struct CheckReply {
    /// Canonical rendering of the outcome — identical bytes to
    /// [`proto::outcome_to_value`] applied to the same in-process outcome.
    pub outcome_json: String,
    /// The decoded outcome.
    pub outcome: WireOutcome,
    /// Statistics of the run that produced it (batch-merged when the
    /// server grouped concurrent requests into one batch).
    pub stats: RunStats,
}

/// A connected protocol client. One request is in flight at a time; the
/// server interleaves clients freely.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request value and reads the reply value.
    pub fn round_trip(&mut self, request: &Value) -> Result<Value, String> {
        proto::write_frame(&mut self.stream, &request.render()).map_err(|e| e.to_string())?;
        let reply = proto::read_frame(&mut self.stream)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "server closed the connection".to_string())?;
        json::parse(&reply).map_err(|e| e.to_string())
    }

    fn check(&mut self, pair: PairSpec, options: WireOptions) -> Result<CheckReply, String> {
        let reply = self.round_trip(&proto::request_to_value(&Request::Check { pair, options }))?;
        if let Ok(e) = json::get(&reply, "error") {
            return Err(json::as_str(e).map_err(|e| e.to_string())?.to_string());
        }
        let outcome_value = json::get(&reply, "outcome").map_err(|e| e.to_string())?;
        Ok(CheckReply {
            outcome_json: outcome_value.render(),
            outcome: wire_outcome_from_value(outcome_value)?,
            stats: run_stats_from_value(json::get(&reply, "stats").map_err(|e| e.to_string())?)?,
        })
    }

    /// Checks a named suite row (standard Table 2 rows plus mutants).
    pub fn check_named(&mut self, name: &str) -> Result<CheckReply, String> {
        self.check(PairSpec::Named(name.to_string()), WireOptions::default())
    }

    /// Checks two inline surface-syntax parsers.
    pub fn check_inline(
        &mut self,
        left: &str,
        left_start: &str,
        right: &str,
        right_start: &str,
    ) -> Result<CheckReply, String> {
        self.check(
            PairSpec::Inline {
                left: left.to_string(),
                left_start: left_start.to_string(),
                right: right.to_string(),
                right_start: right_start.to_string(),
            },
            WireOptions::default(),
        )
    }

    /// [`Client::check_named`] with per-query option overrides.
    pub fn check_named_with(
        &mut self,
        name: &str,
        options: WireOptions,
    ) -> Result<CheckReply, String> {
        self.check(PairSpec::Named(name.to_string()), options)
    }

    /// The engine's cumulative statistics (including eviction counters
    /// and the state-dir report).
    pub fn engine_stats(&mut self) -> Result<Value, String> {
        let reply = self.round_trip(&proto::request_to_value(&Request::Stats))?;
        json::get(&reply, "engine")
            .cloned()
            .map_err(|e| e.to_string())
    }

    /// The daemon's metrics snapshot: `(prometheus_text, json_value)`.
    /// Answered by the connection thread — usable even while the engine
    /// is busy with a long check.
    pub fn metrics(&mut self) -> Result<(String, Value), String> {
        let reply = self.round_trip(&proto::request_to_value(&Request::Metrics))?;
        if let Ok(e) = json::get(&reply, "error") {
            return Err(json::as_str(e).map_err(|e| e.to_string())?.to_string());
        }
        let m = json::get(&reply, "metrics").map_err(|e| e.to_string())?;
        let text = json::as_str(json::get(m, "text").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?
            .to_string();
        let value = json::get(m, "json").cloned().map_err(|e| e.to_string())?;
        Ok((text, value))
    }

    /// The daemon's retained slow-query records (span trees included),
    /// oldest first. Empty unless `LEAPFROG_SLOW_QUERY_MS` is armed.
    pub fn slow_log(&mut self) -> Result<Value, String> {
        let reply = self.round_trip(&proto::request_to_value(&Request::SlowLog))?;
        if let Ok(e) = json::get(&reply, "error") {
            return Err(json::as_str(e).map_err(|e| e.to_string())?.to_string());
        }
        json::get(&reply, "slow_queries")
            .cloned()
            .map_err(|e| e.to_string())
    }

    /// Asks the daemon to persist its state (when configured) and exit.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let reply = self.round_trip(&proto::request_to_value(&Request::Shutdown))?;
        if let Ok(e) = json::get(&reply, "error") {
            return Err(json::as_str(e).map_err(|e| e.to_string())?.to_string());
        }
        json::get(&reply, "bye").map_err(|e| e.to_string())?;
        Ok(())
    }
}
