//! A small blocking client for the `leapfrogd` wire protocol.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use leapfrog::json::{self, Value};
use leapfrog::RunStats;

use crate::proto::{
    self, fleet_stats_from_value, overloaded_from_value, run_stats_from_value,
    verify_reply_from_value, wire_outcome_from_value, FleetStats, Overloaded, PairSpec, Request,
    VerifyReply, WireOptions, WireOutcome,
};

/// Why a client call failed. Soak and load tools branch on this: an
/// [`ClientError::Overloaded`] is healthy backpressure (back off for the
/// carried `retry_after_ms` and retry), everything else is a failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure — includes read/connect deadline expiry
    /// (check [`ClientError::is_timeout`]).
    Io(std::io::Error),
    /// The server's admission control declined the request.
    Overloaded(Overloaded),
    /// The server answered with an `{"error": …}` reply.
    Server(String),
    /// The reply did not decode as the protocol requires.
    Protocol(String),
}

impl ClientError {
    /// Whether this is a connect/read deadline expiry (as opposed to a
    /// refused connection, a reset, or a protocol error).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ClientError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Overloaded(o) => write!(
                f,
                "overloaded ({:?} depth {} >= limit {}, retry after {} ms)",
                o.scope, o.depth, o.limit, o.retry_after_ms
            ),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One answered check: the canonical outcome JSON (byte-comparable
/// against a locally encoded outcome), its typed decode, and the run
/// statistics.
#[derive(Debug)]
pub struct CheckReply {
    /// Canonical rendering of the outcome — identical bytes to
    /// [`proto::outcome_to_value`] applied to the same in-process outcome.
    pub outcome_json: String,
    /// The decoded outcome.
    pub outcome: WireOutcome,
    /// Statistics of the run that produced it (batch-merged when the
    /// server grouped concurrent requests into one batch).
    pub stats: RunStats,
}

/// A connected protocol client. One request is in flight at a time; the
/// server interleaves clients freely.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon. `LEAPFROG_CLIENT_TIMEOUT_MS`, when
    /// set, arms a read deadline on the new connection (0 disarms).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let client = Client { stream };
        if let Some(ms) = env_timeout_ms() {
            client.set_read_timeout(ms)?;
        }
        Ok(client)
    }

    /// Connects with an explicit connect deadline and (optionally) a
    /// read deadline; `read` of `None` falls back to
    /// `LEAPFROG_CLIENT_TIMEOUT_MS`. A deadline expiry surfaces as
    /// [`ClientError::Io`] with [`ClientError::is_timeout`] true.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        connect: Duration,
        read: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, connect) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let read = read.or_else(|| env_timeout_ms().flatten());
                    stream.set_read_timeout(read)?;
                    return Ok(Client { stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
        })))
    }

    /// (Re)arms the read deadline; `None` blocks indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request value and reads the reply value.
    pub fn round_trip(&mut self, request: &Value) -> Result<Value, ClientError> {
        proto::write_frame(&mut self.stream, &request.render())?;
        let reply = proto::read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        json::parse(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends a request and classifies the reply: `overloaded` and
    /// `error` documents become their typed errors.
    fn round_trip_checked(&mut self, request: &Value) -> Result<Value, ClientError> {
        let reply = self.round_trip(request)?;
        if let Some(o) = overloaded_from_value(&reply).map_err(ClientError::Protocol)? {
            return Err(ClientError::Overloaded(o));
        }
        if let Ok(e) = json::get(&reply, "error") {
            return Err(ClientError::Server(
                json::as_str(e)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?
                    .to_string(),
            ));
        }
        Ok(reply)
    }

    fn check(&mut self, pair: PairSpec, options: WireOptions) -> Result<CheckReply, ClientError> {
        let reply =
            self.round_trip_checked(&proto::request_to_value(&Request::Check { pair, options }))?;
        let proto_err = |e: String| ClientError::Protocol(e);
        let json_err = |e: json::JsonError| ClientError::Protocol(e.to_string());
        let outcome_value = json::get(&reply, "outcome").map_err(json_err)?;
        Ok(CheckReply {
            outcome_json: outcome_value.render(),
            outcome: wire_outcome_from_value(outcome_value).map_err(proto_err)?,
            stats: run_stats_from_value(json::get(&reply, "stats").map_err(json_err)?)
                .map_err(proto_err)?,
        })
    }

    /// Checks a named suite row (standard Table 2 rows plus mutants).
    pub fn check_named(&mut self, name: &str) -> Result<CheckReply, ClientError> {
        self.check(PairSpec::Named(name.to_string()), WireOptions::default())
    }

    /// Checks two inline surface-syntax parsers.
    pub fn check_inline(
        &mut self,
        left: &str,
        left_start: &str,
        right: &str,
        right_start: &str,
    ) -> Result<CheckReply, ClientError> {
        self.check(
            PairSpec::Inline {
                left: left.to_string(),
                left_start: left_start.to_string(),
                right: right.to_string(),
                right_start: right_start.to_string(),
            },
            WireOptions::default(),
        )
    }

    /// [`Client::check_named`] with per-query option overrides.
    pub fn check_named_with(
        &mut self,
        name: &str,
        options: WireOptions,
    ) -> Result<CheckReply, ClientError> {
        self.check(PairSpec::Named(name.to_string()), options)
    }

    /// Asks the daemon to re-validate a certificate for a pair through
    /// the independent `leapfrog-certcheck` trust root. `certificate_json`
    /// is the `"Equivalent"` payload of a check reply (or a loaded
    /// archive); the reply names the failing obligation on rejection.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use leapfrog_serve::{Client, PairSpec, WireOutcome};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut client = Client::connect("127.0.0.1:4747")?;
    /// let reply = client.check_named("ethernet")?;
    /// if let WireOutcome::Equivalent(cert) = &reply.outcome {
    ///     let verdict = client.verify(PairSpec::Named("ethernet".into()), &cert.to_json())?;
    ///     assert!(verdict.ok, "trust root must re-discharge every obligation");
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn verify(
        &mut self,
        pair: PairSpec,
        certificate_json: &str,
    ) -> Result<VerifyReply, ClientError> {
        let certificate = json::parse(certificate_json)
            .map_err(|e| ClientError::Protocol(format!("certificate is not JSON: {e}")))?;
        let reply = self.round_trip_checked(&proto::request_to_value(&Request::Verify {
            pair,
            certificate,
        }))?;
        verify_reply_from_value(&reply).map_err(ClientError::Protocol)
    }

    /// [`Client::verify`] against a named suite row.
    pub fn verify_named(
        &mut self,
        name: &str,
        certificate_json: &str,
    ) -> Result<VerifyReply, ClientError> {
        self.verify(PairSpec::Named(name.to_string()), certificate_json)
    }

    /// The fleet's aggregate cumulative statistics (the `"engine"`
    /// payload of the `stats` reply — field-wise sum over all shards).
    pub fn engine_stats(&mut self) -> Result<Value, ClientError> {
        let reply = self.round_trip_checked(&proto::request_to_value(&Request::Stats))?;
        json::get(&reply, "engine")
            .cloned()
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// The typed shard-labelled `stats` reply: aggregate, worker count,
    /// and each shard's own counters.
    pub fn fleet_stats(&mut self) -> Result<FleetStats, ClientError> {
        let reply = self.round_trip_checked(&proto::request_to_value(&Request::Stats))?;
        fleet_stats_from_value(&reply).map_err(ClientError::Protocol)
    }

    /// The daemon's metrics snapshot: `(prometheus_text, json_value)`.
    /// Answered by the connection thread — usable even while the engine
    /// is busy with a long check.
    pub fn metrics(&mut self) -> Result<(String, Value), ClientError> {
        let reply = self.round_trip_checked(&proto::request_to_value(&Request::Metrics))?;
        let json_err = |e: json::JsonError| ClientError::Protocol(e.to_string());
        let m = json::get(&reply, "metrics").map_err(json_err)?;
        let text = json::as_str(json::get(m, "text").map_err(json_err)?)
            .map_err(json_err)?
            .to_string();
        let value = json::get(m, "json").cloned().map_err(json_err)?;
        Ok((text, value))
    }

    /// The daemon's retained slow-query records (span trees included),
    /// oldest first. Empty unless `LEAPFROG_SLOW_QUERY_MS` is armed.
    pub fn slow_log(&mut self) -> Result<Value, ClientError> {
        let reply = self.round_trip_checked(&proto::request_to_value(&Request::SlowLog))?;
        json::get(&reply, "slow_queries")
            .cloned()
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Asks the daemon to persist its state (when configured) and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let reply = self.round_trip_checked(&proto::request_to_value(&Request::Shutdown))?;
        json::get(&reply, "bye").map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(())
    }
}

/// `LEAPFROG_CLIENT_TIMEOUT_MS`: `None` = unset, `Some(None)` = 0
/// (explicitly disarmed), `Some(Some(d))` = armed.
fn env_timeout_ms() -> Option<Option<Duration>> {
    let raw = std::env::var("LEAPFROG_CLIENT_TIMEOUT_MS").ok()?;
    let ms: u64 = raw.trim().parse().ok()?;
    Some((ms > 0).then(|| Duration::from_millis(ms)))
}
