//! Serving the equivalence engine over the wire.
//!
//! The ROADMAP's north star is a service, and since PR 4 the engine has
//! been a persistent in-process object; this crate adds the layers on
//! top of it:
//!
//! * a **wire front-end** ([`server`], shipped as the `leapfrogd` binary):
//!   a length-prefixed JSON protocol over `std::net::TcpListener` — no
//!   external dependencies, hand-rolled JSON on the certificate
//!   infrastructure — where a request names a suite row or carries two
//!   inline surface-syntax parsers, and the response carries the
//!   [`Outcome`](leapfrog::Outcome), the run statistics, and the full
//!   certificate or confirmed witness as JSON.
//! * a **fingerprint-routed fleet**: the daemon spawns `--workers N`
//!   engine shards, each owning its own [`Engine`](leapfrog::Engine)
//!   and warm-state universe. Connection threads route every check by
//!   the pair's stable 128-bit fingerprint (`fingerprint % N`), so a
//!   pair always lands on its warm shard; concurrent requests to one
//!   shard drain into `check_batch`-style scheduling over the
//!   work-stealing pool. Bounded per-shard queues and per-client
//!   quotas reply with a typed `overloaded` backpressure signal
//!   instead of queuing without bound.
//! * **cross-process persistence**, per shard under `shard-<i>/` in the
//!   state dir: on `shutdown` each shard serializes its blast-cache
//!   templates, instantiation-ledger verdicts, entailment-verdict memos
//!   and witness corpus, and a restarted daemon reloads them — even at
//!   a *different* worker count, in which case saved memos re-route by
//!   fingerprint to their new home shard. Answers stay byte-identical,
//!   only the wall-clock changes (asserted in `tests/serve.rs`).
//!
//! [`proto`] defines the frame format and the JSON encodings (with typed
//! decoded mirrors for clients); [`client`] is a small blocking client
//! with connect/read deadlines and a typed [`client::ClientError`] that
//! distinguishes backpressure from failure. `serve_gauntlet`,
//! `fleet_bench` and `persistence_roundtrip` are the CI drivers: the
//! first diffs every wire verdict byte-for-byte against one-shot
//! `check_language_equivalence` (including across worker counts), the
//! second measures fleet wall-clock at 1 vs 4 workers plus the
//! save-at-4/load-at-2 merge leg, the third proves a cold restart from
//! a saved state dir replays memoized verdicts without changing a byte.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{CheckReply, Client, ClientError};
pub use proto::{
    outcome_to_value, read_frame, write_frame, EngineStatsReply, FleetStats, OverloadScope,
    Overloaded, PairSpec, Request, VerifyReply, WireOutcome,
};
pub use server::{Server, ServerOptions};
