//! Serving the equivalence engine over the wire.
//!
//! The ROADMAP's north star is a service, and since PR 4 the engine has
//! been a persistent in-process object; this crate adds the two missing
//! layers on top of it:
//!
//! * a **wire front-end** ([`server`], shipped as the `leapfrogd` binary):
//!   a length-prefixed JSON protocol over `std::net::TcpListener` — no
//!   external dependencies, hand-rolled JSON on the certificate
//!   infrastructure — where a request names a suite row or carries two
//!   inline surface-syntax parsers, and the response carries the
//!   [`Outcome`](leapfrog::Outcome), the run statistics, and the full
//!   certificate or confirmed witness as JSON. The daemon owns ONE
//!   long-lived [`Engine`](leapfrog::Engine); concurrent requests funnel
//!   through an engine thread that drains its queue into
//!   `check_batch`-style scheduling over the work-stealing pool.
//! * **cross-process persistence**, via the engine's own
//!   `save_state` / `EngineConfig::with_state_dir`: on `shutdown` the
//!   daemon serializes the blast-cache templates, instantiation-ledger
//!   verdicts, entailment-verdict memos and the witness corpus, and a
//!   restarted daemon reloads them — answers stay byte-identical, only
//!   the wall-clock changes (asserted in `tests/serve.rs`).
//!
//! [`proto`] defines the frame format and the JSON encodings (with typed
//! decoded mirrors for clients); [`client`] is a small blocking client.
//! `serve_gauntlet` and `persistence_roundtrip` are the CI drivers: the
//! first diffs every wire verdict byte-for-byte against one-shot
//! `check_language_equivalence`, the second proves a cold restart from a
//! saved state dir replays memoized verdicts without changing a byte.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{CheckReply, Client};
pub use proto::{outcome_to_value, read_frame, write_frame, PairSpec, Request, WireOutcome};
pub use server::{Server, ServerOptions};
