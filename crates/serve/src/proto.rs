//! The wire protocol: length-prefixed JSON frames and the encodings of
//! requests, outcomes, witnesses and statistics.
//!
//! # Framing
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! Frames larger than [`MAX_FRAME_BYTES`] are rejected (a malformed
//! length prefix must not make the peer allocate unbounded memory).
//!
//! # Requests
//!
//! ```json
//! {"check": {"pair": {"named": "Speculative loop"}}}
//! {"check": {"pair": {"inline": {"left": "parser A { … }", "left_start": "s",
//!                                "right": "parser B { … }", "right_start": "s"}},
//!            "options": {"leaps": true, "max_iterations": 10000}}}
//! {"verify": {"pair": {"named": "Speculative loop"}, "certificate": {…certificate…}}}
//! {"stats": {}}
//! {"metrics": {}}
//! {"slow_log": {}}
//! {"shutdown": {}}
//! ```
//!
//! A named pair resolves against the standard Table 2 rows plus the
//! mutant suite; an inline pair carries two surface-syntax parser sources
//! and start-state names. `options` is optional; omitted fields keep the
//! server engine's configuration (and a request with any option set runs
//! individually instead of joining a batch, since it poses a different
//! query shape).
//!
//! `verify` re-validates a previously obtained certificate against the
//! pair's sum automaton through the independent `leapfrog-certcheck`
//! trust root — own JSON decoding, WP transformer, and solver; no engine
//! state is touched, so the connection thread answers it directly.
//!
//! # Responses
//!
//! ```json
//! {"outcome": {"Equivalent": {…certificate…}}, "stats": {…run stats…}}
//! {"outcome": {"NotEquivalent": {"Witness": {…}}}, "stats": {…}}
//! {"engine": {…aggregate engine stats…}, "workers": 4,
//!  "shards": [{"shard": 0, "engine": {…}}, …], "metrics": {…registry counters…}}
//! {"metrics": {"text": "<Prometheus exposition>", "json": {…}}}
//! {"slow_queries": [{"label": "…", "wall_ms": 12, "threshold_ms": 5, "spans": […]}]}
//! {"verified": {"ok": true}}
//! {"verified": {"ok": false, "class": "not_closed",
//!               "detail": "relation is not closed under WP: …"}}
//! {"overloaded": {"scope": "shard", "shard": 2, "depth": 256, "limit": 256,
//!                 "retry_after_ms": 120}}
//! {"bye": true}
//! {"error": "unknown pair \"…\""}
//! ```
//!
//! `metrics` and `slow_log` are answered by the connection thread
//! directly from the process-global registry/trace collector — they
//! never queue behind the engine, so a scrape succeeds even while a
//! long check is running.
//!
//! The outcome encoding is *canonical*: encoding the same [`Outcome`]
//! always renders the same bytes, so clients can diff a wire answer
//! against a local one byte-for-byte — that is exactly what the
//! `serve_gauntlet` CI driver and `tests/serve.rs` do. Every encoding
//! also has a typed decode ([`WireOutcome`], [`WireWitness`]) that
//! re-encodes to identical bytes (round-trip property-tested in
//! `tests/proto_roundtrip.rs`).

use std::io::{Read, Write};
use std::time::Duration;

use leapfrog::json::{self, Value};
use leapfrog::{Certificate, EngineStats, Outcome, RunStats};
use leapfrog_bitvec::BitVec;
use leapfrog_cex::{Disagreement, Refutation, Witness};
use leapfrog_logic::confrel::ConfRel;
use leapfrog_logic::templates::TemplatePair;
use leapfrog_obs::{MetricsSnapshot, Phase, PhaseBreakdown, PhaseStat, SlowQuery};
use leapfrog_smt::{PortfolioStats, QueryStats, SolverStats, LBD_BUCKETS, MAX_PORTFOLIO_LANES};

/// Upper bound on a single frame's payload. Certificates on the full
/// Table 2 scale stay far under this; anything larger is a protocol
/// error, not a workload.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

// ---------------------------------------------------------------------------
// Framing

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    assert!(bytes.len() <= MAX_FRAME_BYTES, "oversized outgoing frame");
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); a mid-frame close or an oversized length is an error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 frame"))
}

// ---------------------------------------------------------------------------
// Requests

/// Which parser pair a check poses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairSpec {
    /// A standard suite row (or mutant) by its Table 2 name.
    Named(String),
    /// Two inline surface-syntax parsers with start-state names.
    Inline {
        /// Left parser source (surface DSL).
        left: String,
        /// Left start-state name.
        left_start: String,
        /// Right parser source.
        right: String,
        /// Right start-state name.
        right_start: String,
    },
}

/// Per-query option overrides carried by a check request. `None` keeps
/// the server engine's configuration. Only the *semantic* knobs travel —
/// scheduling (threads, GC, caching) is the daemon's business.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireOptions {
    /// Override for bisimulation leaps.
    pub leaps: Option<bool>,
    /// Override for reachability pruning.
    pub reach_pruning: Option<bool>,
    /// Override for early stopping.
    pub early_stop: Option<bool>,
    /// Override for the iteration budget.
    pub max_iterations: Option<u64>,
}

impl WireOptions {
    /// Whether every override is unset (the request may join a batch).
    pub fn is_default(&self) -> bool {
        *self == WireOptions::default()
    }
}

/// One wire request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Pose a language-equivalence query.
    Check {
        /// The parser pair.
        pair: PairSpec,
        /// Per-query option overrides.
        options: WireOptions,
    },
    /// Re-validate a certificate for a pair through the independent
    /// `leapfrog-certcheck` trust root.
    Verify {
        /// The parser pair the certificate is about.
        pair: PairSpec,
        /// The certificate document (the `"Equivalent"` payload of a
        /// check reply, or a loaded archive).
        certificate: Value,
    },
    /// Ask for the engine's cumulative statistics.
    Stats,
    /// Ask for the metrics registry: Prometheus-style text exposition
    /// plus the same snapshot as JSON.
    Metrics,
    /// Ask for the retained slow-query records (span trees of queries
    /// that ran over `LEAPFROG_SLOW_QUERY_MS`).
    SlowLog,
    /// Save state (when the daemon has a state dir) and exit.
    Shutdown,
}

/// Encodes a pair spec (the `"pair"` payload of check/verify requests).
fn pair_spec_to_value(pair: &PairSpec) -> Value {
    match pair {
        PairSpec::Named(name) => json::obj(vec![("named", Value::Str(name.clone()))]),
        PairSpec::Inline {
            left,
            left_start,
            right,
            right_start,
        } => json::obj(vec![(
            "inline",
            json::obj(vec![
                ("left", Value::Str(left.clone())),
                ("left_start", Value::Str(left_start.clone())),
                ("right", Value::Str(right.clone())),
                ("right_start", Value::Str(right_start.clone())),
            ]),
        )]),
    }
}

/// Decodes a pair spec.
fn pair_spec_from_value(pair_v: &Value) -> Result<PairSpec, String> {
    let err = |e: json::JsonError| e.to_string();
    if let Ok(name) = json::get(pair_v, "named") {
        return Ok(PairSpec::Named(
            json::as_str(name).map_err(err)?.to_string(),
        ));
    }
    let inline = json::get(pair_v, "inline")
        .map_err(|_| "pair must be {\"named\": …} or {\"inline\": …}".to_string())?;
    let field = |k: &str| -> Result<String, String> {
        Ok(json::as_str(json::get(inline, k).map_err(err)?)
            .map_err(err)?
            .to_string())
    };
    Ok(PairSpec::Inline {
        left: field("left")?,
        left_start: field("left_start")?,
        right: field("right")?,
        right_start: field("right_start")?,
    })
}

/// Encodes a request.
pub fn request_to_value(req: &Request) -> Value {
    match req {
        Request::Check { pair, options } => {
            let mut fields = vec![("pair", pair_spec_to_value(pair))];
            if !options.is_default() {
                let mut opt_fields = Vec::new();
                if let Some(b) = options.leaps {
                    opt_fields.push(("leaps", Value::Bool(b)));
                }
                if let Some(b) = options.reach_pruning {
                    opt_fields.push(("reach_pruning", Value::Bool(b)));
                }
                if let Some(b) = options.early_stop {
                    opt_fields.push(("early_stop", Value::Bool(b)));
                }
                if let Some(n) = options.max_iterations {
                    opt_fields.push(("max_iterations", json::num(n as usize)));
                }
                fields.push(("options", json::obj(opt_fields)));
            }
            json::obj(vec![("check", json::obj(fields))])
        }
        Request::Verify { pair, certificate } => json::obj(vec![(
            "verify",
            json::obj(vec![
                ("pair", pair_spec_to_value(pair)),
                ("certificate", certificate.clone()),
            ]),
        )]),
        Request::Stats => json::obj(vec![("stats", json::obj(vec![]))]),
        Request::Metrics => json::obj(vec![("metrics", json::obj(vec![]))]),
        Request::SlowLog => json::obj(vec![("slow_log", json::obj(vec![]))]),
        Request::Shutdown => json::obj(vec![("shutdown", json::obj(vec![]))]),
    }
}

/// Decodes a request.
pub fn request_from_value(v: &Value) -> Result<Request, String> {
    let err = |e: json::JsonError| e.to_string();
    if let Ok(body) = json::get(v, "check") {
        let pair = pair_spec_from_value(json::get(body, "pair").map_err(err)?)?;
        let mut options = WireOptions::default();
        if let Ok(opts) = json::get(body, "options") {
            if let Ok(b) = json::get(opts, "leaps") {
                options.leaps = Some(json::as_bool(b).map_err(err)?);
            }
            if let Ok(b) = json::get(opts, "reach_pruning") {
                options.reach_pruning = Some(json::as_bool(b).map_err(err)?);
            }
            if let Ok(b) = json::get(opts, "early_stop") {
                options.early_stop = Some(json::as_bool(b).map_err(err)?);
            }
            if let Ok(n) = json::get(opts, "max_iterations") {
                options.max_iterations = Some(json::as_usize(n).map_err(err)? as u64);
            }
        }
        return Ok(Request::Check { pair, options });
    }
    if let Ok(body) = json::get(v, "verify") {
        return Ok(Request::Verify {
            pair: pair_spec_from_value(json::get(body, "pair").map_err(err)?)?,
            certificate: json::get(body, "certificate").map_err(err)?.clone(),
        });
    }
    if json::get(v, "stats").is_ok() {
        return Ok(Request::Stats);
    }
    if json::get(v, "metrics").is_ok() {
        return Ok(Request::Metrics);
    }
    if json::get(v, "slow_log").is_ok() {
        return Ok(Request::SlowLog);
    }
    if json::get(v, "shutdown").is_ok() {
        return Ok(Request::Shutdown);
    }
    Err(
        "unknown request (expected check / verify / stats / metrics / slow_log / shutdown)"
            .to_string(),
    )
}

// ---------------------------------------------------------------------------
// Verification

/// The typed `verified` reply: the trust root's verdict on a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReply {
    /// Whether every obligation re-discharged.
    pub ok: bool,
    /// The failing obligation class (stable machine-readable name, e.g.
    /// `"not_closed"`); `None` iff `ok`.
    pub error_class: Option<String>,
    /// Human-readable description of the failing obligation; `None` iff
    /// `ok`.
    pub detail: Option<String>,
}

impl VerifyReply {
    /// The accepting reply.
    pub fn accepted() -> VerifyReply {
        VerifyReply {
            ok: true,
            error_class: None,
            detail: None,
        }
    }

    /// A rejecting reply carrying the named failing obligation.
    pub fn rejected(class: &str, detail: &str) -> VerifyReply {
        VerifyReply {
            ok: false,
            error_class: Some(class.to_string()),
            detail: Some(detail.to_string()),
        }
    }
}

/// Encodes a verify reply as a full reply document: `{"verified": {…}}`.
pub fn verify_reply_to_value(r: &VerifyReply) -> Value {
    let mut fields = vec![("ok", Value::Bool(r.ok))];
    if let Some(class) = &r.error_class {
        fields.push(("class", Value::Str(class.clone())));
    }
    if let Some(detail) = &r.detail {
        fields.push(("detail", Value::Str(detail.clone())));
    }
    json::obj(vec![("verified", json::obj(fields))])
}

/// Decodes a `{"verified": {…}}` reply. An accepting reply must carry no
/// error payload and a rejecting one must carry both fields.
pub fn verify_reply_from_value(v: &Value) -> Result<VerifyReply, String> {
    let err = |e: json::JsonError| e.to_string();
    let body = json::get(v, "verified").map_err(err)?;
    let ok = json::as_bool(json::get(body, "ok").map_err(err)?).map_err(err)?;
    let field = |k: &str| -> Result<Option<String>, String> {
        match json::get(body, k) {
            Ok(v) => Ok(Some(json::as_str(v).map_err(err)?.to_string())),
            Err(_) => Ok(None),
        }
    };
    let reply = VerifyReply {
        ok,
        error_class: field("class")?,
        detail: field("detail")?,
    };
    if ok != (reply.error_class.is_none() && reply.detail.is_none()) {
        return Err("verified reply mixes ok with an error payload".to_string());
    }
    Ok(reply)
}

// ---------------------------------------------------------------------------
// Witnesses

/// A witness as it travels the wire: everything the original carries
/// except the embedded sum automaton (header values are keyed by name, so
/// a client holding the pair can rebuild the stores). Decoded mirrors
/// re-encode to identical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireWitness {
    /// Left start state in the sum automaton: id and name.
    pub left_start: (u32, String),
    /// Right start state in the sum automaton.
    pub right_start: (u32, String),
    /// Every header of the left run's initial store, in header-id order.
    pub left_store: Vec<(String, BitVec)>,
    /// Every header of the right run's initial store.
    pub right_store: Vec<(String, BitVec)>,
    /// The minimized distinguishing packet.
    pub packet: BitVec,
    /// The packet length before minimization.
    pub original_bits: usize,
    /// The template-pair trace of the refuted relation.
    pub trace: Vec<TemplatePair>,
    /// The observed disagreement.
    pub disagreement: WireDisagreement,
}

/// The wire form of [`Disagreement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDisagreement {
    /// One side accepts, the other rejects.
    Acceptance {
        /// Whether the left parser accepts.
        left_accepts: bool,
        /// Whether the right parser accepts.
        right_accepts: bool,
    },
    /// A relational initial conjunct is violated.
    InitRelation {
        /// The violated conjunct.
        relation: ConfRel,
        /// Countermodel values for the conjunct's packet variables.
        vals: Vec<BitVec>,
    },
}

/// Projects a checker witness onto its wire form.
pub fn wire_witness_of(w: &Witness) -> WireWitness {
    let aut = w.automaton();
    let store = |s: &leapfrog_p4a::semantics::Store| -> Vec<(String, BitVec)> {
        aut.header_ids()
            .map(|h| (aut.header_name(h).to_string(), s.get(h).clone()))
            .collect()
    };
    WireWitness {
        left_start: (w.left_start.0, aut.state_name(w.left_start).to_string()),
        right_start: (w.right_start.0, aut.state_name(w.right_start).to_string()),
        left_store: store(&w.left_store),
        right_store: store(&w.right_store),
        packet: w.packet.clone(),
        original_bits: w.original_bits,
        trace: w.trace.clone(),
        disagreement: match &w.disagreement {
            Disagreement::Acceptance {
                left_accepts,
                right_accepts,
            } => WireDisagreement::Acceptance {
                left_accepts: *left_accepts,
                right_accepts: *right_accepts,
            },
            Disagreement::InitRelation { relation, vals } => WireDisagreement::InitRelation {
                relation: relation.clone(),
                vals: vals.clone(),
            },
        },
    }
}

fn pair_to_value(p: &TemplatePair) -> Value {
    json::obj(vec![
        ("left", json::template_to_value(&p.left)),
        ("right", json::template_to_value(&p.right)),
    ])
}

fn pair_from_value(v: &Value) -> Result<TemplatePair, String> {
    let err = |e: json::JsonError| e.to_string();
    Ok(TemplatePair::new(
        json::template_from_value(json::get(v, "left").map_err(err)?).map_err(err)?,
        json::template_from_value(json::get(v, "right").map_err(err)?).map_err(err)?,
    ))
}

fn store_to_value(store: &[(String, BitVec)]) -> Value {
    Value::Arr(
        store
            .iter()
            .map(|(name, bits)| {
                json::obj(vec![
                    ("header", Value::Str(name.clone())),
                    ("bits", json::bitvec_to_value(bits)),
                ])
            })
            .collect(),
    )
}

fn store_from_value(v: &Value) -> Result<Vec<(String, BitVec)>, String> {
    let err = |e: json::JsonError| e.to_string();
    json::as_arr(v)
        .map_err(err)?
        .iter()
        .map(|e| {
            Ok((
                json::as_str(json::get(e, "header").map_err(err)?)
                    .map_err(err)?
                    .to_string(),
                json::bitvec_from_value(json::get(e, "bits").map_err(err)?).map_err(err)?,
            ))
        })
        .collect()
}

/// Encodes a wire witness.
pub fn wire_witness_to_value(w: &WireWitness) -> Value {
    let start = |(id, name): &(u32, String)| {
        json::obj(vec![
            ("id", json::num(*id as usize)),
            ("name", Value::Str(name.clone())),
        ])
    };
    let disagreement = match &w.disagreement {
        WireDisagreement::Acceptance {
            left_accepts,
            right_accepts,
        } => json::obj(vec![(
            "Acceptance",
            json::obj(vec![
                ("left_accepts", Value::Bool(*left_accepts)),
                ("right_accepts", Value::Bool(*right_accepts)),
            ]),
        )]),
        WireDisagreement::InitRelation { relation, vals } => json::obj(vec![(
            "InitRelation",
            json::obj(vec![
                ("relation", json::confrel_to_value(relation)),
                (
                    "vals",
                    Value::Arr(vals.iter().map(json::bitvec_to_value).collect()),
                ),
            ]),
        )]),
    };
    json::obj(vec![
        ("left_start", start(&w.left_start)),
        ("right_start", start(&w.right_start)),
        ("left_store", store_to_value(&w.left_store)),
        ("right_store", store_to_value(&w.right_store)),
        ("packet", json::bitvec_to_value(&w.packet)),
        ("original_bits", json::num(w.original_bits)),
        (
            "trace",
            Value::Arr(w.trace.iter().map(pair_to_value).collect()),
        ),
        ("disagreement", disagreement),
    ])
}

/// Decodes a wire witness.
pub fn wire_witness_from_value(v: &Value) -> Result<WireWitness, String> {
    let err = |e: json::JsonError| e.to_string();
    let start = |v: &Value| -> Result<(u32, String), String> {
        Ok((
            json::as_usize(json::get(v, "id").map_err(err)?).map_err(err)? as u32,
            json::as_str(json::get(v, "name").map_err(err)?)
                .map_err(err)?
                .to_string(),
        ))
    };
    let d = json::get(v, "disagreement").map_err(err)?;
    let disagreement = if let Ok(a) = json::get(d, "Acceptance") {
        WireDisagreement::Acceptance {
            left_accepts: json::as_bool(json::get(a, "left_accepts").map_err(err)?).map_err(err)?,
            right_accepts: json::as_bool(json::get(a, "right_accepts").map_err(err)?)
                .map_err(err)?,
        }
    } else {
        let r = json::get(d, "InitRelation").map_err(|_| "unknown disagreement tag".to_string())?;
        WireDisagreement::InitRelation {
            relation: json::confrel_from_value(json::get(r, "relation").map_err(err)?)
                .map_err(err)?,
            vals: json::as_arr(json::get(r, "vals").map_err(err)?)
                .map_err(err)?
                .iter()
                .map(|b| json::bitvec_from_value(b).map_err(err))
                .collect::<Result<_, _>>()?,
        }
    };
    Ok(WireWitness {
        left_start: start(json::get(v, "left_start").map_err(err)?)?,
        right_start: start(json::get(v, "right_start").map_err(err)?)?,
        left_store: store_from_value(json::get(v, "left_store").map_err(err)?)?,
        right_store: store_from_value(json::get(v, "right_store").map_err(err)?)?,
        packet: json::bitvec_from_value(json::get(v, "packet").map_err(err)?).map_err(err)?,
        original_bits: json::as_usize(json::get(v, "original_bits").map_err(err)?).map_err(err)?,
        trace: json::as_arr(json::get(v, "trace").map_err(err)?)
            .map_err(err)?
            .iter()
            .map(pair_from_value)
            .collect::<Result<_, _>>()?,
        disagreement,
    })
}

// ---------------------------------------------------------------------------
// Outcomes

/// An outcome as it travels the wire. [`WireOutcome::Equivalent`] carries
/// the full decoded certificate; refutations carry the wire witness or
/// the unconfirmed diagnostic.
#[derive(Debug, Clone)]
pub enum WireOutcome {
    /// The property holds.
    Equivalent(Certificate),
    /// Refuted with a confirmed wire witness.
    NotEquivalent(Box<WireWitness>),
    /// Refuted, but the countermodel did not lift into a confirmed
    /// witness: `(reason, report)`.
    Unconfirmed(String, String),
    /// The iteration budget was exhausted.
    Aborted(String),
}

impl WireOutcome {
    /// Whether the wire outcome reports equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, WireOutcome::Equivalent(_))
    }
}

/// Projects a checker outcome onto its wire form.
pub fn wire_outcome_of(outcome: &Outcome) -> WireOutcome {
    match outcome {
        Outcome::Equivalent(cert) => WireOutcome::Equivalent(cert.clone()),
        Outcome::NotEquivalent(Refutation::Witness(w)) => {
            WireOutcome::NotEquivalent(Box::new(wire_witness_of(w)))
        }
        Outcome::NotEquivalent(Refutation::Unconfirmed { reason, report }) => {
            WireOutcome::Unconfirmed(reason.clone(), report.clone())
        }
        Outcome::Aborted(msg) => WireOutcome::Aborted(msg.clone()),
    }
}

/// Encodes a wire outcome. The encoding is canonical: equal outcomes
/// render equal bytes.
pub fn wire_outcome_to_value(o: &WireOutcome) -> Value {
    match o {
        WireOutcome::Equivalent(cert) => {
            json::obj(vec![("Equivalent", json::certificate_to_value(cert))])
        }
        WireOutcome::NotEquivalent(w) => json::obj(vec![(
            "NotEquivalent",
            json::obj(vec![("Witness", wire_witness_to_value(w))]),
        )]),
        WireOutcome::Unconfirmed(reason, report) => json::obj(vec![(
            "NotEquivalent",
            json::obj(vec![(
                "Unconfirmed",
                json::obj(vec![
                    ("reason", Value::Str(reason.clone())),
                    ("report", Value::Str(report.clone())),
                ]),
            )]),
        )]),
        WireOutcome::Aborted(msg) => json::obj(vec![("Aborted", Value::Str(msg.clone()))]),
    }
}

/// [`wire_outcome_of`] composed with [`wire_outcome_to_value`]: the
/// canonical JSON of a checker outcome — what the server sends and what
/// byte-for-byte comparisons encode locally.
pub fn outcome_to_value(outcome: &Outcome) -> Value {
    wire_outcome_to_value(&wire_outcome_of(outcome))
}

/// Decodes a wire outcome.
pub fn wire_outcome_from_value(v: &Value) -> Result<WireOutcome, String> {
    let err = |e: json::JsonError| e.to_string();
    if let Ok(cert) = json::get(v, "Equivalent") {
        return Ok(WireOutcome::Equivalent(
            json::certificate_from_value(cert).map_err(err)?,
        ));
    }
    if let Ok(ne) = json::get(v, "NotEquivalent") {
        if let Ok(w) = json::get(ne, "Witness") {
            return Ok(WireOutcome::NotEquivalent(Box::new(
                wire_witness_from_value(w)?,
            )));
        }
        let u = json::get(ne, "Unconfirmed").map_err(|_| "unknown refutation tag".to_string())?;
        return Ok(WireOutcome::Unconfirmed(
            json::as_str(json::get(u, "reason").map_err(err)?)
                .map_err(err)?
                .to_string(),
            json::as_str(json::get(u, "report").map_err(err)?)
                .map_err(err)?
                .to_string(),
        ));
    }
    if let Ok(msg) = json::get(v, "Aborted") {
        return Ok(WireOutcome::Aborted(
            json::as_str(msg).map_err(err)?.to_string(),
        ));
    }
    Err("unknown outcome tag".to_string())
}

// ---------------------------------------------------------------------------
// Statistics

fn duration_to_value(d: Duration) -> Value {
    json::num(d.as_nanos() as usize)
}

fn duration_from_value(v: &Value) -> Result<Duration, String> {
    Ok(Duration::from_nanos(
        json::as_usize(v).map_err(|e| e.to_string())? as u64,
    ))
}

/// Encodes solver-level query statistics.
pub fn query_stats_to_value(q: &QueryStats) -> Value {
    json::obj(vec![
        ("queries", json::num(q.queries as usize)),
        ("cegar_rounds", json::num(q.cegar_rounds as usize)),
        ("blocks_considered", json::num(q.blocks_considered as usize)),
        ("blocks_validated", json::num(q.blocks_validated as usize)),
        ("session_rebuilds", json::num(q.session_rebuilds as usize)),
        ("live_clauses_peak", json::num(q.live_clauses_peak as usize)),
        ("blast_cache_hits", json::num(q.blast_cache_hits as usize)),
        (
            "blast_cache_misses",
            json::num(q.blast_cache_misses as usize),
        ),
        ("inst_ledger_hits", json::num(q.inst_ledger_hits as usize)),
        ("sat", solver_stats_to_value(&q.sat)),
        ("portfolio", portfolio_stats_to_value(&q.portfolio)),
        (
            "durations_nanos",
            Value::Arr(q.durations.iter().map(|d| duration_to_value(*d)).collect()),
        ),
    ])
}

/// Decodes solver-level query statistics.
pub fn query_stats_from_value(v: &Value) -> Result<QueryStats, String> {
    let err = |e: json::JsonError| e.to_string();
    let n = |k: &str| -> Result<u64, String> {
        Ok(json::as_usize(json::get(v, k).map_err(err)?).map_err(err)? as u64)
    };
    Ok(QueryStats {
        queries: n("queries")?,
        cegar_rounds: n("cegar_rounds")?,
        blocks_considered: n("blocks_considered")?,
        blocks_validated: n("blocks_validated")?,
        session_rebuilds: n("session_rebuilds")?,
        live_clauses_peak: n("live_clauses_peak")?,
        blast_cache_hits: n("blast_cache_hits")?,
        blast_cache_misses: n("blast_cache_misses")?,
        inst_ledger_hits: n("inst_ledger_hits")?,
        sat: solver_stats_from_value(json::get(v, "sat").map_err(err)?)?,
        // Absent in frames from pre-portfolio peers: default to all-zero.
        portfolio: match json::get(v, "portfolio") {
            Ok(p) => portfolio_stats_from_value(p)?,
            Err(_) => PortfolioStats::default(),
        },
        durations: json::as_arr(json::get(v, "durations_nanos").map_err(err)?)
            .map_err(err)?
            .iter()
            .map(duration_from_value)
            .collect::<Result<_, _>>()?,
    })
}

/// Encodes the CDCL solver counters nested inside query statistics.
pub fn solver_stats_to_value(s: &SolverStats) -> Value {
    json::obj(vec![
        ("decisions", json::num(s.decisions as usize)),
        ("propagations", json::num(s.propagations as usize)),
        ("conflicts", json::num(s.conflicts as usize)),
        ("restarts", json::num(s.restarts as usize)),
        ("deleted_clauses", json::num(s.deleted_clauses as usize)),
        ("learnt_clauses", json::num(s.learnt_clauses as usize)),
        (
            "lbd_histogram",
            Value::Arr(
                s.lbd_histogram
                    .iter()
                    .map(|&n| json::num(n as usize))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes the CDCL solver counters.
pub fn solver_stats_from_value(v: &Value) -> Result<SolverStats, String> {
    let err = |e: json::JsonError| e.to_string();
    let n = |k: &str| -> Result<u64, String> {
        Ok(json::as_usize(json::get(v, k).map_err(err)?).map_err(err)? as u64)
    };
    let hist_values = json::as_arr(json::get(v, "lbd_histogram").map_err(err)?).map_err(err)?;
    if hist_values.len() != LBD_BUCKETS {
        return Err(format!(
            "lbd_histogram has {} buckets, expected {LBD_BUCKETS}",
            hist_values.len()
        ));
    }
    let mut lbd_histogram = [0u64; LBD_BUCKETS];
    for (slot, v) in lbd_histogram.iter_mut().zip(hist_values) {
        *slot = json::as_usize(v).map_err(err)? as u64;
    }
    Ok(SolverStats {
        decisions: n("decisions")?,
        propagations: n("propagations")?,
        conflicts: n("conflicts")?,
        restarts: n("restarts")?,
        deleted_clauses: n("deleted_clauses")?,
        learnt_clauses: n("learnt_clauses")?,
        lbd_histogram,
    })
}

/// Encodes the SAT portfolio racing counters nested inside query
/// statistics.
pub fn portfolio_stats_to_value(p: &PortfolioStats) -> Value {
    json::obj(vec![
        ("lanes", json::num(p.lanes as usize)),
        ("races", json::num(p.races as usize)),
        ("solo", json::num(p.solo as usize)),
        (
            "wins",
            Value::Arr(p.wins.iter().map(|&n| json::num(n as usize)).collect()),
        ),
        (
            "lane_stats",
            Value::Arr(p.lane_stats.iter().map(solver_stats_to_value).collect()),
        ),
    ])
}

/// Decodes the SAT portfolio racing counters.
pub fn portfolio_stats_from_value(v: &Value) -> Result<PortfolioStats, String> {
    let err = |e: json::JsonError| e.to_string();
    let n = |k: &str| -> Result<u64, String> {
        Ok(json::as_usize(json::get(v, k).map_err(err)?).map_err(err)? as u64)
    };
    let win_values = json::as_arr(json::get(v, "wins").map_err(err)?).map_err(err)?;
    if win_values.len() != MAX_PORTFOLIO_LANES {
        return Err(format!(
            "portfolio wins has {} lanes, expected {MAX_PORTFOLIO_LANES}",
            win_values.len()
        ));
    }
    let mut wins = [0u64; MAX_PORTFOLIO_LANES];
    for (slot, v) in wins.iter_mut().zip(win_values) {
        *slot = json::as_usize(v).map_err(err)? as u64;
    }
    let lanes = n("lanes")?;
    // Consumers index win histograms by the lane count; an out-of-range
    // frame must be rejected here, not panic whoever formats it.
    if lanes > MAX_PORTFOLIO_LANES as u64 {
        return Err(format!(
            "portfolio lane count {lanes} exceeds the maximum of {MAX_PORTFOLIO_LANES}"
        ));
    }
    Ok(PortfolioStats {
        lanes,
        races: n("races")?,
        solo: n("solo")?,
        wins,
        lane_stats: json::as_arr(json::get(v, "lane_stats").map_err(err)?)
            .map_err(err)?
            .iter()
            .map(solver_stats_from_value)
            .collect::<Result<_, _>>()?,
    })
}

/// Encodes a phase breakdown as an array of `{phase, count, nanos}`
/// entries in canonical phase order (empty when tracing was off).
pub fn phases_to_value(p: &PhaseBreakdown) -> Value {
    Value::Arr(
        p.entries
            .iter()
            .map(|e| {
                json::obj(vec![
                    ("phase", Value::Str(e.phase.as_str().to_string())),
                    ("count", json::num(e.count as usize)),
                    ("nanos", json::num(e.nanos as usize)),
                ])
            })
            .collect(),
    )
}

/// Decodes a phase breakdown.
pub fn phases_from_value(v: &Value) -> Result<PhaseBreakdown, String> {
    let err = |e: json::JsonError| e.to_string();
    let mut entries = Vec::new();
    for e in json::as_arr(v).map_err(err)? {
        let name = json::as_str(json::get(e, "phase").map_err(err)?).map_err(err)?;
        let phase = Phase::parse(name).ok_or_else(|| format!("unknown phase {name:?}"))?;
        entries.push(PhaseStat {
            phase,
            count: json::as_usize(json::get(e, "count").map_err(err)?).map_err(err)? as u64,
            nanos: json::as_usize(json::get(e, "nanos").map_err(err)?).map_err(err)? as u64,
        });
    }
    Ok(PhaseBreakdown { entries })
}

/// Encodes a metrics snapshot as JSON: counters and gauges as numbers
/// keyed by name, histograms as cumulative bucket arrays plus count and
/// sum (nanoseconds). Mirrors the text exposition exactly.
pub fn metrics_snapshot_to_value(snap: &MetricsSnapshot) -> Value {
    json::obj(vec![
        (
            "counters",
            Value::Obj(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), json::num(*v as usize)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Value::Obj(
                snap.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Value::Obj(
                snap.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            json::obj(vec![
                                (
                                    "buckets",
                                    Value::Arr(
                                        h.cumulative
                                            .iter()
                                            .map(|c| json::num(*c as usize))
                                            .collect(),
                                    ),
                                ),
                                ("count", json::num(h.count as usize)),
                                ("sum_ns", json::num(h.sum_ns as usize)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encodes the retained slow-query records. Each record's span tree is
/// already canonical JSON text; it is embedded as a parsed value so the
/// reply is one JSON document.
pub fn slow_queries_to_value(records: &[SlowQuery]) -> Result<Value, String> {
    let mut out = Vec::new();
    for r in records {
        let tree = json::parse(&r.tree_json).map_err(|e| e.to_string())?;
        out.push(json::obj(vec![
            ("label", Value::Str(r.label.clone())),
            ("wall_ms", json::num(r.wall_ms as usize)),
            ("threshold_ms", json::num(r.threshold_ms as usize)),
            ("spans", tree),
        ]));
    }
    Ok(Value::Arr(out))
}

/// Encodes per-run statistics (wall time and solver durations travel as
/// integer nanoseconds so the round trip is exact).
pub fn run_stats_to_value(s: &RunStats) -> Value {
    json::obj(vec![
        ("iterations", json::num(s.iterations as usize)),
        ("extended", json::num(s.extended as usize)),
        ("skipped", json::num(s.skipped as usize)),
        ("wp_generated", json::num(s.wp_generated as usize)),
        ("scope_pairs", json::num(s.scope_pairs)),
        ("max_formula_size", json::num(s.max_formula_size)),
        (
            "witnesses_confirmed",
            json::num(s.witnesses_confirmed as usize),
        ),
        (
            "witnesses_unconfirmed",
            json::num(s.witnesses_unconfirmed as usize),
        ),
        (
            "witness_bits_minimized",
            json::num(s.witness_bits_minimized as usize),
        ),
        ("threads", json::num(s.threads)),
        ("parallel_batches", json::num(s.parallel_batches as usize)),
        ("parallel_checks", json::num(s.parallel_checks as usize)),
        ("merge_rechecks", json::num(s.merge_rechecks as usize)),
        ("entailment_checks", json::num(s.entailment_checks as usize)),
        ("premises_matched", json::num(s.premises_matched as usize)),
        ("premises_total", json::num(s.premises_total as usize)),
        ("sessions_reused", json::num(s.sessions_reused as usize)),
        (
            "entailment_memo_hits",
            json::num(s.entailment_memo_hits as usize),
        ),
        ("sum_cache_hits", json::num(s.sum_cache_hits as usize)),
        ("reach_cache_hits", json::num(s.reach_cache_hits as usize)),
        ("wall_time_nanos", duration_to_value(s.wall_time)),
        ("queries", query_stats_to_value(&s.queries)),
        ("phases", phases_to_value(&s.phases)),
    ])
}

/// Decodes per-run statistics.
pub fn run_stats_from_value(v: &Value) -> Result<RunStats, String> {
    let err = |e: json::JsonError| e.to_string();
    let n = |k: &str| -> Result<u64, String> {
        Ok(json::as_usize(json::get(v, k).map_err(err)?).map_err(err)? as u64)
    };
    let us = |k: &str| -> Result<usize, String> {
        json::as_usize(json::get(v, k).map_err(err)?).map_err(err)
    };
    Ok(RunStats {
        iterations: n("iterations")?,
        extended: n("extended")?,
        skipped: n("skipped")?,
        wp_generated: n("wp_generated")?,
        scope_pairs: us("scope_pairs")?,
        max_formula_size: us("max_formula_size")?,
        witnesses_confirmed: n("witnesses_confirmed")?,
        witnesses_unconfirmed: n("witnesses_unconfirmed")?,
        witness_bits_minimized: n("witness_bits_minimized")?,
        threads: us("threads")?,
        parallel_batches: n("parallel_batches")?,
        parallel_checks: n("parallel_checks")?,
        merge_rechecks: n("merge_rechecks")?,
        entailment_checks: n("entailment_checks")?,
        premises_matched: n("premises_matched")?,
        premises_total: n("premises_total")?,
        sessions_reused: n("sessions_reused")?,
        entailment_memo_hits: n("entailment_memo_hits")?,
        sum_cache_hits: n("sum_cache_hits")?,
        reach_cache_hits: n("reach_cache_hits")?,
        wall_time: duration_from_value(json::get(v, "wall_time_nanos").map_err(err)?)?,
        queries: query_stats_from_value(json::get(v, "queries").map_err(err)?)?,
        phases: phases_from_value(json::get(v, "phases").map_err(err)?)?,
    })
}

/// Encodes engine-lifetime statistics for the `stats` wire request,
/// including the LRU eviction counters and the live ledger/cache sizes.
pub fn engine_stats_to_value(
    s: &EngineStats,
    ledger_len: usize,
    cache_entries: usize,
    state_report: Option<&str>,
) -> Value {
    json::obj(vec![
        ("checks", json::num(s.checks as usize)),
        ("batches", json::num(s.batches as usize)),
        ("pairs_interned", json::num(s.pairs_interned as usize)),
        ("sum_cache_hits", json::num(s.sum_cache_hits as usize)),
        ("reach_cache_hits", json::num(s.reach_cache_hits as usize)),
        ("sessions_reused", json::num(s.sessions_reused as usize)),
        (
            "entailment_memo_hits",
            json::num(s.entailment_memo_hits as usize),
        ),
        ("warm_evictions", json::num(s.warm_evictions as usize)),
        ("pair_evictions", json::num(s.pair_evictions as usize)),
        ("session_evictions", json::num(s.session_evictions as usize)),
        ("ledger_evictions", json::num(s.ledger_evictions as usize)),
        ("ledger_len", json::num(ledger_len)),
        ("cache_entries", json::num(cache_entries)),
        (
            "state_report",
            match state_report {
                Some(r) => Value::Str(r.to_string()),
                None => Value::Null,
            },
        ),
    ])
}

/// One engine's `stats` payload in typed form: the lifetime counters
/// plus the live ledger/cache sizes and the state-load report. Encodes
/// via [`engine_stats_reply_to_value`] to exactly the object
/// [`engine_stats_to_value`] produces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStatsReply {
    /// Cumulative engine counters.
    pub stats: EngineStats,
    /// Verdicts currently recorded in the instantiation ledger.
    pub ledger_len: usize,
    /// CNF templates resident in the blast cache.
    pub cache_entries: usize,
    /// What state-dir loading found at construction, if anything.
    pub state_report: Option<String>,
}

/// Encodes a typed engine-stats reply (same bytes as
/// [`engine_stats_to_value`] on the parts).
pub fn engine_stats_reply_to_value(r: &EngineStatsReply) -> Value {
    engine_stats_to_value(
        &r.stats,
        r.ledger_len,
        r.cache_entries,
        r.state_report.as_deref(),
    )
}

/// Decodes an engine-stats object (the `"engine"` payload of a `stats`
/// reply, or one fleet shard's entry).
pub fn engine_stats_reply_from_value(v: &Value) -> Result<EngineStatsReply, String> {
    let err = |e: json::JsonError| e.to_string();
    let n = |k: &str| -> Result<u64, String> {
        Ok(json::as_usize(json::get(v, k).map_err(err)?).map_err(err)? as u64)
    };
    Ok(EngineStatsReply {
        stats: EngineStats {
            checks: n("checks")?,
            batches: n("batches")?,
            pairs_interned: n("pairs_interned")?,
            sum_cache_hits: n("sum_cache_hits")?,
            reach_cache_hits: n("reach_cache_hits")?,
            sessions_reused: n("sessions_reused")?,
            entailment_memo_hits: n("entailment_memo_hits")?,
            warm_evictions: n("warm_evictions")?,
            pair_evictions: n("pair_evictions")?,
            session_evictions: n("session_evictions")?,
            ledger_evictions: n("ledger_evictions")?,
        },
        ledger_len: json::as_usize(json::get(v, "ledger_len").map_err(err)?).map_err(err)?,
        cache_entries: json::as_usize(json::get(v, "cache_entries").map_err(err)?).map_err(err)?,
        state_report: match json::get(v, "state_report").map_err(err)? {
            Value::Null => None,
            other => Some(json::as_str(other).map_err(err)?.to_string()),
        },
    })
}

// ---------------------------------------------------------------------------
// Fleet

/// The shard-labelled `stats` reply of a fleet deployment: the
/// aggregate (field-wise sum, reports joined) under the same `"engine"`
/// key a single-engine daemon uses — existing clients keep working —
/// plus the worker count and each shard's own counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Field-wise aggregate over all shards.
    pub aggregate: EngineStatsReply,
    /// The number of engine shards serving.
    pub workers: usize,
    /// Per-shard counters, in shard order.
    pub shards: Vec<EngineStatsReply>,
}

impl FleetStats {
    /// Builds the fleet view from per-shard replies: shard order is
    /// kept, counters sum field-wise, and state reports join as
    /// `shard-<i>: <report>` lines.
    pub fn of_shards(shards: Vec<EngineStatsReply>) -> FleetStats {
        let mut aggregate = EngineStatsReply::default();
        let mut reports = Vec::new();
        for (i, s) in shards.iter().enumerate() {
            let a = &mut aggregate.stats;
            a.checks += s.stats.checks;
            a.batches += s.stats.batches;
            a.pairs_interned += s.stats.pairs_interned;
            a.sum_cache_hits += s.stats.sum_cache_hits;
            a.reach_cache_hits += s.stats.reach_cache_hits;
            a.sessions_reused += s.stats.sessions_reused;
            a.entailment_memo_hits += s.stats.entailment_memo_hits;
            a.warm_evictions += s.stats.warm_evictions;
            a.pair_evictions += s.stats.pair_evictions;
            a.session_evictions += s.stats.session_evictions;
            a.ledger_evictions += s.stats.ledger_evictions;
            aggregate.ledger_len += s.ledger_len;
            aggregate.cache_entries += s.cache_entries;
            if let Some(r) = &s.state_report {
                reports.push(format!("shard-{i}: {r}"));
            }
        }
        aggregate.state_report = if reports.is_empty() {
            None
        } else {
            Some(reports.join("; "))
        };
        FleetStats {
            aggregate,
            workers: shards.len(),
            shards,
        }
    }
}

/// Encodes the fleet `stats` reply body (without the `"metrics"` field
/// the server appends from the live registry).
pub fn fleet_stats_to_value(f: &FleetStats) -> Value {
    json::obj(vec![
        ("engine", engine_stats_reply_to_value(&f.aggregate)),
        ("workers", json::num(f.workers)),
        (
            "shards",
            Value::Arr(
                f.shards
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        json::obj(vec![
                            ("shard", json::num(i)),
                            ("engine", engine_stats_reply_to_value(s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes the fleet `stats` reply body. Shard entries must be labelled
/// `0..workers` in order — the labels are the routing indices, so a gap
/// or permutation is a protocol error.
pub fn fleet_stats_from_value(v: &Value) -> Result<FleetStats, String> {
    let err = |e: json::JsonError| e.to_string();
    let aggregate = engine_stats_reply_from_value(json::get(v, "engine").map_err(err)?)?;
    let workers = json::as_usize(json::get(v, "workers").map_err(err)?).map_err(err)?;
    let mut shards = Vec::new();
    for (i, entry) in json::as_arr(json::get(v, "shards").map_err(err)?)
        .map_err(err)?
        .iter()
        .enumerate()
    {
        let label = json::as_usize(json::get(entry, "shard").map_err(err)?).map_err(err)?;
        if label != i {
            return Err(format!("shard entry {i} labelled {label}"));
        }
        shards.push(engine_stats_reply_from_value(
            json::get(entry, "engine").map_err(err)?,
        )?);
    }
    if shards.len() != workers {
        return Err(format!(
            "stats reply lists {} shards for {workers} workers",
            shards.len()
        ));
    }
    Ok(FleetStats {
        aggregate,
        workers,
        shards,
    })
}

// ---------------------------------------------------------------------------
// Backpressure

/// What a shard's admission control rejected a request for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadScope {
    /// The routed shard's bounded queue is at its depth limit.
    Shard,
    /// The client is at its per-connection in-flight quota.
    Client,
}

impl OverloadScope {
    fn as_str(&self) -> &'static str {
        match self {
            OverloadScope::Shard => "shard",
            OverloadScope::Client => "client",
        }
    }
}

/// The typed `overloaded` response: admission control declined to queue
/// the request. The client should back off for `retry_after_ms` and
/// retry — the verdict it would have gotten is unchanged (routing is
/// deterministic), only the timing moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// Which limit rejected the request.
    pub scope: OverloadScope,
    /// The shard that would have served it (None for client-quota
    /// rejections, which precede routing).
    pub shard: Option<usize>,
    /// The observed depth (queue length or in-flight count).
    pub depth: u64,
    /// The configured limit the depth ran into.
    pub limit: u64,
    /// Suggested backoff before retrying, in milliseconds.
    pub retry_after_ms: u64,
}

/// Encodes an overload rejection as a full reply document:
/// `{"overloaded": {…}}`.
pub fn overloaded_to_value(o: &Overloaded) -> Value {
    let mut fields = vec![("scope", Value::Str(o.scope.as_str().to_string()))];
    if let Some(shard) = o.shard {
        fields.push(("shard", json::num(shard)));
    }
    fields.push(("depth", json::num(o.depth as usize)));
    fields.push(("limit", json::num(o.limit as usize)));
    fields.push(("retry_after_ms", json::num(o.retry_after_ms as usize)));
    json::obj(vec![("overloaded", json::obj(fields))])
}

/// Decodes an `{"overloaded": {…}}` reply; `Ok(None)` when the document
/// is some other reply kind.
pub fn overloaded_from_value(v: &Value) -> Result<Option<Overloaded>, String> {
    let err = |e: json::JsonError| e.to_string();
    let Ok(body) = json::get(v, "overloaded") else {
        return Ok(None);
    };
    let scope = match json::as_str(json::get(body, "scope").map_err(err)?).map_err(err)? {
        "shard" => OverloadScope::Shard,
        "client" => OverloadScope::Client,
        other => return Err(format!("unknown overload scope {other:?}")),
    };
    let shard = match json::get(body, "shard") {
        Ok(v) => Some(json::as_usize(v).map_err(err)?),
        Err(_) => None,
    };
    let n = |k: &str| -> Result<u64, String> {
        Ok(json::as_usize(json::get(body, k).map_err(err)?).map_err(err)? as u64)
    };
    Ok(Some(Overloaded {
        scope,
        shard,
        depth: n("depth")?,
        limit: n("limit")?,
        retry_after_ms: n("retry_after_ms")?,
    }))
}
