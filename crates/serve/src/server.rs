//! The daemon core: one long-lived engine serving a TCP listener.
//!
//! Connections are handled on their own threads, but every request
//! funnels into a single *engine thread* through a queue: the engine
//! thread drains whatever has accumulated, groups the default-shaped
//! check requests of one drain into a single
//! [`Engine::check_batch`](leapfrog::Engine::check_batch) call — so
//! concurrent wire queries ride the work-stealing pool exactly like an
//! in-process batch — and answers the rest (custom-option checks, stats,
//! shutdown) in arrival order. Outcome encodings are canonical, so a wire
//! answer is byte-identical to the same check run in-process.
//!
//! `metrics` and `slow_log` requests are the exception: they read only
//! the process-global registry and trace collector, so the connection
//! thread answers them directly and they never queue behind a
//! long-running check.
//!
//! With a state directory configured, the engine starts from the
//! persisted warm state (blast-cache templates, ledger verdicts,
//! entailment memos, witness corpus) and a `shutdown` request saves it
//! back before the listener closes.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use leapfrog::engine::STATE_CORPUS_FILE;
use leapfrog::json::{self, Value};
use leapfrog::{Engine, EngineConfig, QuerySpec};
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::surface;
use leapfrog_suite::corpus::WitnessCorpus;
use leapfrog_suite::{mutants, standard_benchmarks, Scale};

use crate::proto::{
    self, engine_stats_to_value, metrics_snapshot_to_value, outcome_to_value, run_stats_to_value,
    slow_queries_to_value, PairSpec, Request, WireOptions,
};

/// Daemon-level metrics. Connection counters live on the connection
/// threads; the queue-depth gauge is set by the engine thread at each
/// drain, so it reports how many requests one batch absorbed.
mod meters {
    use leapfrog_obs::{LazyCounter, LazyGauge, LazyHistogram};

    pub static CONNECTIONS_TOTAL: LazyCounter = LazyCounter::new("leapfrog_connections_total");
    pub static CONNECTIONS_OPEN: LazyGauge = LazyGauge::new("leapfrog_connections_open");
    pub static REQUESTS_TOTAL: LazyCounter = LazyCounter::new("leapfrog_requests_total");
    pub static REQUEST_SECONDS: LazyHistogram = LazyHistogram::new("leapfrog_request_seconds");
    pub static QUEUE_DEPTH: LazyGauge = LazyGauge::new("leapfrog_engine_queue_depth");
}

/// How the daemon is set up.
pub struct ServerOptions {
    /// The engine configuration (threads, GC, caches, warm capacity).
    pub config: EngineConfig,
    /// Directory for persisted warm state: reloaded at start, saved on
    /// `shutdown`.
    pub state_dir: Option<PathBuf>,
    /// Scale the named suite rows are built at.
    pub scale: Scale,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            config: EngineConfig::from_env(),
            state_dir: None,
            scale: Scale::from_env(),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    opts: ServerOptions,
}

/// One queued request with its reply channel (the rendered JSON payload).
struct Job {
    request: Request,
    reply: mpsc::Sender<String>,
}

/// A check request resolved to concrete automata.
struct ResolvedCheck {
    name: String,
    left: Automaton,
    ql: StateId,
    right: Automaton,
    qr: StateId,
    options: WireOptions,
    reply: mpsc::Sender<String>,
}

impl Server {
    /// Binds the listener. `addr` accepts anything `TcpListener::bind`
    /// does; port `0` picks a free port (see [`Server::local_addr`]).
    pub fn bind(addr: &str, opts: ServerOptions) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            opts,
        })
    }

    /// The bound address (the daemon prints it; tests read it back).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request is processed. Blocking; the
    /// `leapfrogd` binary calls this from `main`, tests call it from a
    /// spawned thread.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut config = self.opts.config.clone();
        if let Some(dir) = &self.opts.state_dir {
            config = config.with_state_dir(dir.clone());
        }
        let mut engine = Engine::new(config);
        if let Some(dir) = &self.opts.state_dir {
            let corpus = WitnessCorpus::load(dir.join(STATE_CORPUS_FILE))
                .unwrap_or_else(|_| WitnessCorpus::new());
            engine.attach_witness_sink(Box::new(corpus));
        }
        let rows = named_rows(self.opts.scale);
        let state_dir = self.opts.state_dir.clone();

        let (tx, rx) = mpsc::channel::<Job>();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| -> std::io::Result<()> {
            let stop = &stop;
            // The engine thread: the only place the engine is touched.
            s.spawn(move || {
                while let Ok(first) = rx.recv() {
                    let mut jobs = vec![first];
                    while let Ok(more) = rx.try_recv() {
                        jobs.push(more);
                    }
                    let shutting_down =
                        process_jobs(&mut engine, &rows, state_dir.as_deref(), jobs);
                    if shutting_down {
                        stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop with a throwaway
                        // connection so it observes the flag.
                        let _ = TcpStream::connect(addr);
                        break;
                    }
                }
            });
            for conn in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let tx = tx.clone();
                s.spawn(move || handle_connection(stream, tx, stop));
            }
            drop(tx);
            Ok(())
        })
    }
}

/// The rows a named request resolves against: every standard Table 2 row
/// plus the mutant suite (whose refutations carry the long multi-header
/// witnesses).
fn named_rows(scale: Scale) -> HashMap<String, leapfrog_suite::Benchmark> {
    let mut rows = HashMap::new();
    for b in standard_benchmarks(scale)
        .into_iter()
        .chain(mutants::mutant_benchmarks())
    {
        rows.insert(b.name.to_string(), b);
    }
    rows
}

/// Runs one drained queue batch through the engine. Returns whether a
/// shutdown request was processed (state saved, replies sent).
fn process_jobs(
    engine: &mut Engine,
    rows: &HashMap<String, leapfrog_suite::Benchmark>,
    state_dir: Option<&std::path::Path>,
    jobs: Vec<Job>,
) -> bool {
    meters::QUEUE_DEPTH.set(jobs.len() as i64);
    let mut checks: Vec<ResolvedCheck> = Vec::new();
    let mut shutdown: Option<mpsc::Sender<String>> = None;
    for job in jobs {
        match job.request {
            Request::Check { pair, options } => match resolve(rows, &pair) {
                Ok((name, left, ql, right, qr)) => checks.push(ResolvedCheck {
                    name,
                    left,
                    ql,
                    right,
                    qr,
                    options,
                    reply: job.reply,
                }),
                Err(e) => send(&job.reply, &error_value(&e)),
            },
            Request::Stats => {
                let v = engine_stats_to_value(
                    engine.stats(),
                    engine.ledger_len(),
                    engine.shared_cache().stats().entries,
                    engine.state_report(),
                );
                send(
                    &job.reply,
                    &json::obj(vec![
                        ("engine", v),
                        (
                            "metrics",
                            metrics_snapshot_to_value(&leapfrog_obs::global().snapshot()),
                        ),
                    ]),
                );
            }
            // Normally answered on the connection thread; these arms keep
            // the queue path total for requests injected another way.
            Request::Metrics => send(&job.reply, &metrics_reply()),
            Request::SlowLog => send(&job.reply, &slow_log_reply()),
            Request::Shutdown => shutdown = Some(job.reply),
        }
    }

    // Default-shaped checks of one drain run as ONE batch over the
    // work-stealing pool; a single check (or a custom-option one) runs
    // alone so its reply carries exact per-run statistics.
    let (batchable, custom): (Vec<_>, Vec<_>) =
        checks.into_iter().partition(|c| c.options.is_default());
    if batchable.len() > 1 {
        let specs: Vec<QuerySpec> = batchable
            .iter()
            .map(|c| QuerySpec::new(c.name.clone(), &c.left, c.ql, &c.right, c.qr))
            .collect();
        let outcomes = engine.check_batch(&specs);
        // Per-member statistics are not separable out of a batch; every
        // reply carries the batch-merged record.
        let stats = run_stats_to_value(engine.last_run_stats());
        for (c, outcome) in batchable.iter().zip(outcomes) {
            send(&c.reply, &check_reply(&outcome, stats.clone()));
        }
    } else {
        for c in batchable {
            let outcome = engine.check_named(&c.name, &c.left, c.ql, &c.right, c.qr);
            let stats = run_stats_to_value(engine.last_run_stats());
            send(&c.reply, &check_reply(&outcome, stats));
        }
    }
    for c in custom {
        let pid = engine.prepare_pair(&c.left, c.ql, &c.right, c.qr);
        let mut req = engine.standard_request(pid);
        if let Some(b) = c.options.leaps {
            req.options.leaps = b;
        }
        if let Some(b) = c.options.reach_pruning {
            req.options.reach_pruning = b;
        }
        if let Some(b) = c.options.early_stop {
            req.options.early_stop = b;
        }
        if let Some(n) = c.options.max_iterations {
            req.options.max_iterations = Some(n);
        }
        let outcome = engine.run_prepared(pid, &req);
        let stats = run_stats_to_value(engine.last_run_stats());
        send(&c.reply, &check_reply(&outcome, stats));
    }

    meters::QUEUE_DEPTH.set(0);
    match shutdown {
        Some(reply) => {
            if let Some(dir) = state_dir {
                if let Err(e) = engine.save_state(dir) {
                    send(
                        &reply,
                        &error_value(&format!("state not saved to {}: {e}", dir.display())),
                    );
                    return true;
                }
            }
            send(&reply, &json::obj(vec![("bye", Value::Bool(true))]));
            true
        }
        None => false,
    }
}

fn check_reply(outcome: &leapfrog::Outcome, stats: Value) -> Value {
    json::obj(vec![
        ("outcome", outcome_to_value(outcome)),
        ("stats", stats),
    ])
}

/// The `metrics` reply: one registry snapshot rendered both as
/// Prometheus text exposition and as structured JSON, so the two views
/// are always consistent with each other.
fn metrics_reply() -> Value {
    let snap = leapfrog_obs::global().snapshot();
    json::obj(vec![(
        "metrics",
        json::obj(vec![
            ("text", Value::Str(snap.render_prometheus())),
            ("json", metrics_snapshot_to_value(&snap)),
        ]),
    )])
}

/// The `slow_log` reply: every retained slow-query record with its span
/// tree embedded as structured JSON.
fn slow_log_reply() -> Value {
    match slow_queries_to_value(&leapfrog_obs::collector().slow_queries()) {
        Ok(v) => json::obj(vec![("slow_queries", v)]),
        Err(e) => error_value(&format!("slow log not renderable: {e}")),
    }
}

fn error_value(msg: &str) -> Value {
    json::obj(vec![("error", Value::Str(msg.to_string()))])
}

fn send(reply: &mpsc::Sender<String>, v: &Value) {
    let _ = reply.send(v.render());
}

/// Resolves a pair spec to automata: a named suite row by lookup, an
/// inline pair by parsing its surface sources.
fn resolve(
    rows: &HashMap<String, leapfrog_suite::Benchmark>,
    pair: &PairSpec,
) -> Result<(String, Automaton, StateId, Automaton, StateId), String> {
    match pair {
        PairSpec::Named(name) => {
            let b = rows
                .get(name)
                .ok_or_else(|| format!("unknown pair {name:?}"))?;
            Ok((
                b.name.to_string(),
                b.left.clone(),
                b.left_start,
                b.right.clone(),
                b.right_start,
            ))
        }
        PairSpec::Inline {
            left,
            left_start,
            right,
            right_start,
        } => {
            let l = surface::parse(left).map_err(|e| format!("left parser: {e:?}"))?;
            let r = surface::parse(right).map_err(|e| format!("right parser: {e:?}"))?;
            let ql = l
                .state_by_name(left_start)
                .ok_or_else(|| format!("left parser has no state {left_start:?}"))?;
            let qr = r
                .state_by_name(right_start)
                .ok_or_else(|| format!("right parser has no state {right_start:?}"))?;
            // A content-derived name keeps witness-corpus entries from
            // unrelated inline pairs apart (one shared "inline" key would
            // mix regression packets across automata).
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (left, left_start, right, right_start).hash(&mut h);
            Ok((format!("inline:{:016x}", h.finish()), l, ql, r, qr))
        }
    }
}

/// What one poll of a connection produced.
enum FrameRead {
    /// A complete frame.
    Frame(String),
    /// The peer closed cleanly between frames.
    Eof,
    /// Nothing arrived within the poll timeout.
    Idle,
}

/// Reads one frame with an idle timeout on the *first* byte only: once a
/// prefix byte has arrived the read blocks (retrying through timeouts)
/// until the frame completes, so a slow writer is never torn.
fn read_frame_idle(stream: &mut TcpStream) -> std::io::Result<FrameRead> {
    use std::io::ErrorKind;
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed mid-prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && filled == 0 =>
            {
                return Ok(FrameRead::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > proto::MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match stream.read(&mut payload[at..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => at += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(payload)
        .map(FrameRead::Frame)
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "non-UTF-8 frame"))
}

fn handle_connection(mut stream: TcpStream, tx: mpsc::Sender<Job>, stop: &AtomicBool) {
    meters::CONNECTIONS_TOTAL.inc();
    meters::CONNECTIONS_OPEN.inc();
    struct OpenGuard;
    impl Drop for OpenGuard {
        fn drop(&mut self) {
            meters::CONNECTIONS_OPEN.dec();
        }
    }
    let _open = OpenGuard;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let text = match read_frame_idle(&mut stream) {
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::Frame(t)) => t,
        };
        let started = std::time::Instant::now();
        meters::REQUESTS_TOTAL.inc();
        let request = json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|v| proto::request_from_value(&v));
        let request = match request {
            Ok(r) => r,
            Err(e) => {
                let ok = proto::write_frame(&mut stream, &error_value(&e).render()).is_ok();
                meters::REQUEST_SECONDS.record(started.elapsed());
                if !ok {
                    return;
                }
                continue;
            }
        };
        // Introspection requests read only process-global state: answer
        // them right here so they never queue behind a long-running
        // check on the engine thread.
        if matches!(request, Request::Metrics | Request::SlowLog) {
            let reply = match request {
                Request::Metrics => metrics_reply(),
                _ => slow_log_reply(),
            };
            let ok = proto::write_frame(&mut stream, &reply.render()).is_ok();
            meters::REQUEST_SECONDS.record(started.elapsed());
            if !ok {
                return;
            }
            continue;
        }
        let is_shutdown = matches!(request, Request::Shutdown);
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx
            .send(Job {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            let _ = proto::write_frame(
                &mut stream,
                &error_value("server is shutting down").render(),
            );
            return;
        }
        let Ok(reply) = reply_rx.recv() else { return };
        let ok = proto::write_frame(&mut stream, &reply).is_ok();
        meters::REQUEST_SECONDS.record(started.elapsed());
        if !ok || is_shutdown {
            return;
        }
    }
}
