//! The daemon core: a fingerprint-routed fleet of engine shards behind
//! one TCP listener.
//!
//! The server spawns `workers` *engine shards*, each owning its own
//! [`leapfrog::Engine`], warm-state universe, and job queue.
//! Connections are handled on their own threads; a check request is
//! resolved to automata right there and routed by the pair's stable
//! 128-bit fingerprint — shard index `route_fingerprint(pair) % workers`
//! — so a given pair always lands on the shard that is warm for it.
//! Each shard drains whatever has accumulated on its queue, groups the
//! default-shaped check requests of one drain into a single
//! [`Engine::check_batch`](leapfrog::Engine::check_batch) call, and
//! answers the rest (custom-option checks) in arrival order. Outcome
//! encodings are canonical and routing is deterministic, so a wire
//! answer is byte-identical to the same check run in-process — at any
//! worker count.
//!
//! Admission control bounds each shard's queue: when a shard's depth is
//! at [`ServerOptions::queue_depth`], new requests for it get a typed
//! `overloaded` reply (with a retry-after hint) instead of queuing
//! without bound, and [`ServerOptions::client_quota`] caps one client
//! address's concurrent in-flight checks the same way.
//!
//! `metrics` and `slow_log` requests read only the process-global
//! registry and trace collector, so the connection thread answers them
//! directly and they never queue behind a long-running check. `stats`
//! broadcasts to every shard and aggregates the replies (the `"engine"`
//! key carries the field-wise sum; `"shards"` the per-shard counters).
//!
//! With a state directory configured, each shard persists under
//! `shard-<i>/` inside it. At startup, a layout matching the current
//! worker count reloads natively; any other layout (different worker
//! count, or a pre-fleet single-engine dir) goes through the merge
//! path: every saved memo re-routes to the shard its fingerprint now
//! maps to, witness corpora union, and content-keyed artifacts (blast
//! cache, ledger) degrade to cold. A `shutdown` request saves every
//! shard and removes stale state before the listener closes.

use std::collections::HashMap;
use std::io::Read;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use leapfrog::engine::{
    route_fingerprint, STATE_BLAST_FILE, STATE_CORPUS_FILE, STATE_LEDGER_FILE, STATE_MEMO_FILE,
};
use leapfrog::json::{self, Value};
use leapfrog::{Engine, EngineConfig, QuerySpec};
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::surface;
use leapfrog_suite::corpus::WitnessCorpus;
use leapfrog_suite::{mutants, standard_benchmarks, Scale};

use crate::proto::{
    self, fleet_stats_to_value, metrics_snapshot_to_value, outcome_to_value, overloaded_to_value,
    run_stats_to_value, slow_queries_to_value, EngineStatsReply, FleetStats, OverloadScope,
    Overloaded, PairSpec, Request, WireOptions,
};

/// Daemon-level metrics. Connection counters live on the connection
/// threads; `leapfrog_engine_queue_depth` is the fleet-wide total of
/// queued checks (per-shard depths live under
/// `leapfrog_shard_<i>_queue_depth`).
mod meters {
    use leapfrog_obs::{LazyCounter, LazyGauge, LazyHistogram};

    pub static CONNECTIONS_TOTAL: LazyCounter = LazyCounter::new("leapfrog_connections_total");
    pub static CONNECTIONS_OPEN: LazyGauge = LazyGauge::new("leapfrog_connections_open");
    pub static REQUESTS_TOTAL: LazyCounter = LazyCounter::new("leapfrog_requests_total");
    pub static REQUEST_SECONDS: LazyHistogram = LazyHistogram::new("leapfrog_request_seconds");
    pub static QUEUE_DEPTH: LazyGauge = LazyGauge::new("leapfrog_engine_queue_depth");
    pub static OVERLOADED_TOTAL: LazyCounter = LazyCounter::new("leapfrog_overloaded_total");
}

/// Per-shard metric handles, suffixed by shard index so one Prometheus
/// scrape shows the whole fleet.
struct ShardMeters {
    queue_depth: Arc<leapfrog_obs::Gauge>,
    checks: Arc<leapfrog_obs::Counter>,
    evictions: Arc<leapfrog_obs::Counter>,
}

impl ShardMeters {
    fn new(shard: usize) -> ShardMeters {
        let g = leapfrog_obs::global();
        ShardMeters {
            queue_depth: g.gauge(&format!("leapfrog_shard_{shard}_queue_depth")),
            checks: g.counter(&format!("leapfrog_shard_{shard}_checks_total")),
            evictions: g.counter(&format!("leapfrog_shard_{shard}_evictions_total")),
        }
    }
}

/// How the daemon is set up.
pub struct ServerOptions {
    /// The engine configuration (threads, GC, caches, warm capacity),
    /// applied to every shard.
    pub config: EngineConfig,
    /// Directory for persisted warm state: each shard reloads from and
    /// saves to `shard-<i>/` under it (a layout saved at a different
    /// worker count merges by fingerprint).
    pub state_dir: Option<PathBuf>,
    /// Scale the named suite rows are built at.
    pub scale: Scale,
    /// Engine shards to run; 0 picks the host's available parallelism.
    /// Defaults to `LEAPFROG_WORKERS` (or 1).
    pub workers: usize,
    /// Per-shard queued-check bound; at the bound new requests get an
    /// `overloaded` reply. 0 disables the bound. Defaults to
    /// `LEAPFROG_QUEUE_DEPTH` (or 256).
    pub queue_depth: usize,
    /// Per-client-address in-flight check quota; 0 disables it.
    /// Defaults to `LEAPFROG_CLIENT_QUOTA` (or 0).
    pub client_quota: usize,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            config: EngineConfig::from_env(),
            state_dir: None,
            scale: Scale::from_env(),
            workers: env_usize("LEAPFROG_WORKERS").unwrap_or(1),
            queue_depth: env_usize("LEAPFROG_QUEUE_DEPTH").unwrap_or(256),
            client_quota: env_usize("LEAPFROG_CLIENT_QUOTA").unwrap_or(0),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    opts: ServerOptions,
}

/// A check request resolved to concrete automata, ready for a shard.
struct ResolvedCheck {
    name: String,
    left: Automaton,
    ql: StateId,
    right: Automaton,
    qr: StateId,
    options: WireOptions,
    reply: mpsc::Sender<String>,
}

/// What travels to an engine shard. Checks are the only queue-depth
/// accounted kind; `Stats`/`Save` are control-plane and always admitted.
enum ShardJob {
    Check(ResolvedCheck),
    Stats(mpsc::Sender<EngineStatsReply>),
    /// Persist the shard's state and acknowledge; processed after every
    /// check already drained, then the shard exits.
    Save(mpsc::Sender<Result<(), String>>),
}

/// One shard as the connection threads see it: its queue and the
/// shared depth counter admission control reads.
struct ShardHandle {
    tx: mpsc::Sender<ShardJob>,
    depth: Arc<AtomicUsize>,
}

/// Everything a connection thread needs: routing, admission limits, and
/// the shutdown orchestration inputs.
struct Fleet {
    shards: Vec<ShardHandle>,
    rows: HashMap<String, leapfrog_suite::Benchmark>,
    queue_depth: usize,
    client_quota: usize,
    /// In-flight check counts per client address (the quota's subject).
    inflight: Mutex<HashMap<IpAddr, usize>>,
    state_dir: Option<PathBuf>,
    addr: SocketAddr,
}

impl Fleet {
    fn total_depth(&self) -> i64 {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::SeqCst) as i64)
            .sum()
    }
}

/// How shard engines pick up persisted state at startup.
enum StatePlan {
    /// No state dir, or the on-disk layout matches the worker count:
    /// shard `i` loads `shard-<i>/` natively (missing dirs cold-start).
    Native,
    /// The layout was saved at a different worker count (or by a
    /// pre-fleet single engine): every listed source dir's memos are
    /// re-routed by fingerprint into whichever shard now owns them, and
    /// the witness corpora union.
    Merge(Vec<PathBuf>),
}

/// Decides between native reload and the merge path by scanning the
/// state dir: `shard-0..shard-(workers-1)` exactly, with no legacy
/// root-level state files, reloads natively; anything else merges.
fn scan_state(dir: &Path, workers: usize) -> StatePlan {
    let mut found: Vec<usize> = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir) {
        for entry in rd.flatten() {
            if let Some(i) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("shard-"))
                .and_then(|s| s.parse::<usize>().ok())
            {
                found.push(i);
            }
        }
    }
    found.sort_unstable();
    let legacy_root = [
        STATE_BLAST_FILE,
        STATE_LEDGER_FILE,
        STATE_MEMO_FILE,
        STATE_CORPUS_FILE,
    ]
    .iter()
    .any(|f| dir.join(f).exists());
    let exact = found.iter().copied().eq(0..workers);
    if !legacy_root && (found.is_empty() || exact) {
        return StatePlan::Native;
    }
    let mut sources: Vec<PathBuf> = found
        .into_iter()
        .map(|i| dir.join(format!("shard-{i}")))
        .collect();
    if legacy_root {
        sources.push(dir.to_path_buf());
    }
    StatePlan::Merge(sources)
}

/// Removes state a fresh start at this worker count would not reload:
/// legacy root-level files and `shard-<j>` dirs with `j >= workers`.
/// Called after a shutdown save, so the next start reloads natively.
fn cleanup_stale_state(dir: &Path, workers: usize) {
    for f in [
        STATE_BLAST_FILE,
        STATE_LEDGER_FILE,
        STATE_MEMO_FILE,
        STATE_CORPUS_FILE,
    ] {
        let _ = std::fs::remove_file(dir.join(f));
    }
    if let Ok(rd) = std::fs::read_dir(dir) {
        for entry in rd.flatten() {
            if let Some(i) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("shard-"))
                .and_then(|s| s.parse::<usize>().ok())
            {
                if i >= workers {
                    let _ = std::fs::remove_dir_all(entry.path());
                }
            }
        }
    }
}

impl Server {
    /// Binds the listener. `addr` accepts anything `TcpListener::bind`
    /// does; port `0` picks a free port (see [`Server::local_addr`]).
    pub fn bind(addr: &str, opts: ServerOptions) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            opts,
        })
    }

    /// The bound address (the daemon prints it; tests read it back).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The worker count [`Server::run`] will spawn (0 resolved to the
    /// host's available parallelism).
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.opts.workers)
    }

    /// Serves until a `shutdown` request is processed. Blocking; the
    /// `leapfrogd` binary calls this from `main`, tests call it from a
    /// spawned thread.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let workers = resolve_workers(self.opts.workers);
        let state_dir = self.opts.state_dir.clone();
        let plan = match &state_dir {
            Some(dir) => scan_state(dir, workers),
            None => StatePlan::Native,
        };
        let plan = Arc::new(plan);

        let mut shards = Vec::with_capacity(workers);
        let mut spawn_args = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let depth = Arc::new(AtomicUsize::new(0));
            shards.push(ShardHandle {
                tx,
                depth: depth.clone(),
            });
            spawn_args.push((shard, rx, depth));
        }
        let fleet = Fleet {
            shards,
            rows: named_rows(self.opts.scale),
            queue_depth: self.opts.queue_depth,
            client_quota: self.opts.client_quota,
            inflight: Mutex::new(HashMap::new()),
            state_dir: state_dir.clone(),
            addr,
        };
        let config = self.opts.config.clone();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| -> std::io::Result<()> {
            let stop = &stop;
            let fleet = &fleet;
            for (shard, rx, depth) in spawn_args {
                let config = config.clone();
                let state_dir = state_dir.clone();
                let plan = plan.clone();
                s.spawn(move || {
                    let engine =
                        build_shard_engine(config, state_dir.as_deref(), &plan, shard, workers);
                    let save_dir = state_dir.map(|d| d.join(format!("shard-{shard}")));
                    shard_loop(engine, rx, depth, save_dir, ShardMeters::new(shard));
                });
            }
            for conn in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                s.spawn(move || handle_connection(stream, fleet, stop));
            }
            Ok(())
        })
    }
}

fn resolve_workers(requested: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    n.max(1)
}

/// Builds one shard's engine per the state plan: native reload from its
/// own `shard-<i>/` dir, or a cold engine fed the fingerprint-routed
/// slice of every merge source (memos re-route; blast cache and ledger
/// are content-keyed, not routed, and degrade to cold).
fn build_shard_engine(
    config: EngineConfig,
    state_dir: Option<&Path>,
    plan: &StatePlan,
    shard: usize,
    workers: usize,
) -> Engine {
    let shard_dir = state_dir.map(|d| d.join(format!("shard-{shard}")));
    let mut engine = match (plan, &shard_dir) {
        (StatePlan::Native, Some(dir)) => Engine::new(config.with_state_dir(dir.clone())),
        _ => Engine::new(config),
    };
    let mut corpus = WitnessCorpus::new();
    match plan {
        StatePlan::Native => {
            if let Some(dir) = &shard_dir {
                if let Ok(c) = WitnessCorpus::load(dir.join(STATE_CORPUS_FILE)) {
                    corpus = c;
                }
            }
        }
        StatePlan::Merge(sources) => {
            let keep = |fp: u128| fp % workers as u128 == shard as u128;
            for src in sources {
                // Unreadable sources degrade to cold, like load_state.
                let _ = engine.import_memos_routed(src, &keep);
                if let Ok(c) = WitnessCorpus::load(src.join(STATE_CORPUS_FILE)) {
                    corpus.absorb(c);
                }
            }
        }
    }
    if state_dir.is_some() {
        engine.attach_witness_sink(Box::new(corpus));
    }
    engine
}

/// The rows a named request resolves against: every standard Table 2 row
/// plus the mutant suite (whose refutations carry the long multi-header
/// witnesses).
fn named_rows(scale: Scale) -> HashMap<String, leapfrog_suite::Benchmark> {
    let mut rows = HashMap::new();
    for b in standard_benchmarks(scale)
        .into_iter()
        .chain(mutants::mutant_benchmarks())
    {
        rows.insert(b.name.to_string(), b);
    }
    rows
}

/// Tracked totals behind the per-shard delta counters.
#[derive(Default)]
struct ShardSnapshot {
    checks: u64,
    evictions: u64,
}

/// One engine shard's drain loop: the only place that shard's engine is
/// touched. Exits after acknowledging a `Save` (shutdown) or when every
/// sender is gone.
fn shard_loop(
    mut engine: Engine,
    rx: mpsc::Receiver<ShardJob>,
    depth: Arc<AtomicUsize>,
    save_dir: Option<PathBuf>,
    shard_meters: ShardMeters,
) {
    let mut last = ShardSnapshot::default();
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        while let Ok(more) = rx.try_recv() {
            jobs.push(more);
        }
        let mut checks: Vec<ResolvedCheck> = Vec::new();
        let mut save: Option<mpsc::Sender<Result<(), String>>> = None;
        for job in jobs {
            match job {
                ShardJob::Check(c) => checks.push(c),
                ShardJob::Stats(tx) => {
                    let _ = tx.send(shard_stats(&engine));
                }
                ShardJob::Save(tx) => save = Some(tx),
            }
        }
        // Drained checks are in processing, not queued: free their
        // admission slots before the (possibly long) batch runs.
        depth.fetch_sub(checks.len(), Ordering::SeqCst);
        shard_meters
            .queue_depth
            .set(depth.load(Ordering::SeqCst) as i64);
        run_checks(&mut engine, checks);
        let s = engine.stats();
        let evictions =
            s.warm_evictions + s.pair_evictions + s.session_evictions + s.ledger_evictions;
        shard_meters.checks.add(s.checks - last.checks);
        shard_meters.evictions.add(evictions - last.evictions);
        last = ShardSnapshot {
            checks: s.checks,
            evictions,
        };
        if let Some(ack) = save {
            let result = match &save_dir {
                Some(dir) => engine
                    .save_state(dir)
                    .map_err(|e| format!("state not saved to {}: {e}", dir.display())),
                None => Ok(()),
            };
            let _ = ack.send(result);
            break;
        }
    }
}

/// One shard's typed `stats` payload.
fn shard_stats(engine: &Engine) -> EngineStatsReply {
    EngineStatsReply {
        stats: engine.stats().clone(),
        ledger_len: engine.ledger_len(),
        cache_entries: engine.shared_cache().stats().entries,
        state_report: engine.state_report().map(String::from),
    }
}

/// Runs one drained batch of checks through a shard's engine.
/// Default-shaped checks of one drain run as ONE batch over the
/// work-stealing pool; a single check (or a custom-option one) runs
/// alone so its reply carries exact per-run statistics.
fn run_checks(engine: &mut Engine, checks: Vec<ResolvedCheck>) {
    let (batchable, custom): (Vec<_>, Vec<_>) =
        checks.into_iter().partition(|c| c.options.is_default());
    if batchable.len() > 1 {
        let specs: Vec<QuerySpec> = batchable
            .iter()
            .map(|c| QuerySpec::new(c.name.clone(), &c.left, c.ql, &c.right, c.qr))
            .collect();
        let outcomes = engine.check_batch(&specs);
        // Per-member statistics are not separable out of a batch; every
        // reply carries the batch-merged record.
        let stats = run_stats_to_value(engine.last_run_stats());
        for (c, outcome) in batchable.iter().zip(outcomes) {
            send(&c.reply, &check_reply(&outcome, stats.clone()));
        }
    } else {
        for c in batchable {
            let outcome = engine.check_named(&c.name, &c.left, c.ql, &c.right, c.qr);
            let stats = run_stats_to_value(engine.last_run_stats());
            send(&c.reply, &check_reply(&outcome, stats));
        }
    }
    for c in custom {
        let pid = engine.prepare_pair(&c.left, c.ql, &c.right, c.qr);
        let mut req = engine.standard_request(pid);
        if let Some(b) = c.options.leaps {
            req.options.leaps = b;
        }
        if let Some(b) = c.options.reach_pruning {
            req.options.reach_pruning = b;
        }
        if let Some(b) = c.options.early_stop {
            req.options.early_stop = b;
        }
        if let Some(n) = c.options.max_iterations {
            req.options.max_iterations = Some(n);
        }
        let outcome = engine.run_prepared(pid, &req);
        let stats = run_stats_to_value(engine.last_run_stats());
        send(&c.reply, &check_reply(&outcome, stats));
    }
}

fn check_reply(outcome: &leapfrog::Outcome, stats: Value) -> Value {
    json::obj(vec![
        ("outcome", outcome_to_value(outcome)),
        ("stats", stats),
    ])
}

/// The `verify` reply: resolve the pair, rebuild its sum automaton, and
/// re-validate the certificate through the independent
/// `leapfrog-certcheck` trust root. Touches no engine state — the
/// connection thread answers it directly, like `metrics`.
fn verify_reply(fleet: &Fleet, pair: &PairSpec, certificate: &Value) -> Value {
    let (_, left, _, right, _) = match resolve(&fleet.rows, pair) {
        Ok(r) => r,
        Err(e) => return error_value(&e),
    };
    let sum = leapfrog_p4a::sum::sum(&left, &right);
    let reply = match leapfrog_certcheck::check_json(&sum.automaton, &certificate.render()) {
        Ok(()) => proto::VerifyReply::accepted(),
        Err(e) => proto::VerifyReply::rejected(e.class(), &e.to_string()),
    };
    proto::verify_reply_to_value(&reply)
}

/// The `metrics` reply: one registry snapshot rendered both as
/// Prometheus text exposition and as structured JSON, so the two views
/// are always consistent with each other.
fn metrics_reply() -> Value {
    let snap = leapfrog_obs::global().snapshot();
    json::obj(vec![(
        "metrics",
        json::obj(vec![
            ("text", Value::Str(snap.render_prometheus())),
            ("json", metrics_snapshot_to_value(&snap)),
        ]),
    )])
}

/// The `slow_log` reply: every retained slow-query record with its span
/// tree embedded as structured JSON.
fn slow_log_reply() -> Value {
    match slow_queries_to_value(&leapfrog_obs::collector().slow_queries()) {
        Ok(v) => json::obj(vec![("slow_queries", v)]),
        Err(e) => error_value(&format!("slow log not renderable: {e}")),
    }
}

/// The `stats` reply: broadcast to every shard, aggregate, and append
/// the live metrics snapshot.
fn stats_reply(fleet: &Fleet) -> Value {
    let mut acks = Vec::with_capacity(fleet.shards.len());
    for sh in &fleet.shards {
        let (tx, rx) = mpsc::channel();
        if sh.tx.send(ShardJob::Stats(tx)).is_err() {
            return error_value("server is shutting down");
        }
        acks.push(rx);
    }
    let mut per_shard = Vec::with_capacity(acks.len());
    for rx in acks {
        match rx.recv() {
            Ok(s) => per_shard.push(s),
            Err(_) => return error_value("server is shutting down"),
        }
    }
    let mut v = fleet_stats_to_value(&FleetStats::of_shards(per_shard));
    if let Value::Obj(fields) = &mut v {
        fields.push((
            "metrics".to_string(),
            metrics_snapshot_to_value(&leapfrog_obs::global().snapshot()),
        ));
    }
    v
}

/// Shutdown orchestration: every shard saves its state under
/// `shard-<i>/` and acknowledges; stale state (legacy root files,
/// higher-numbered shard dirs from a wider fleet) is then removed so
/// the next start at this worker count reloads natively.
fn shutdown_reply(fleet: &Fleet) -> Value {
    let mut acks = Vec::with_capacity(fleet.shards.len());
    for sh in &fleet.shards {
        let (tx, rx) = mpsc::channel();
        if sh.tx.send(ShardJob::Save(tx)).is_ok() {
            acks.push(rx);
        }
    }
    let mut errors = Vec::new();
    for rx in acks {
        match rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => errors.push(e),
            Err(_) => errors.push("shard exited before saving".to_string()),
        }
    }
    if let Some(dir) = &fleet.state_dir {
        cleanup_stale_state(dir, fleet.shards.len());
    }
    if errors.is_empty() {
        json::obj(vec![("bye", Value::Bool(true))])
    } else {
        error_value(&errors.join("; "))
    }
}

fn error_value(msg: &str) -> Value {
    json::obj(vec![("error", Value::Str(msg.to_string()))])
}

fn send(reply: &mpsc::Sender<String>, v: &Value) {
    let _ = reply.send(v.render());
}

/// Resolves a pair spec to automata: a named suite row by lookup, an
/// inline pair by parsing its surface sources.
fn resolve(
    rows: &HashMap<String, leapfrog_suite::Benchmark>,
    pair: &PairSpec,
) -> Result<(String, Automaton, StateId, Automaton, StateId), String> {
    match pair {
        PairSpec::Named(name) => {
            let b = rows
                .get(name)
                .ok_or_else(|| format!("unknown pair {name:?}"))?;
            Ok((
                b.name.to_string(),
                b.left.clone(),
                b.left_start,
                b.right.clone(),
                b.right_start,
            ))
        }
        PairSpec::Inline {
            left,
            left_start,
            right,
            right_start,
        } => {
            let l = surface::parse(left).map_err(|e| format!("left parser: {e:?}"))?;
            let r = surface::parse(right).map_err(|e| format!("right parser: {e:?}"))?;
            let ql = l
                .state_by_name(left_start)
                .ok_or_else(|| format!("left parser has no state {left_start:?}"))?;
            let qr = r
                .state_by_name(right_start)
                .ok_or_else(|| format!("right parser has no state {right_start:?}"))?;
            // A content-derived name keeps witness-corpus entries from
            // unrelated inline pairs apart (one shared "inline" key would
            // mix regression packets across automata).
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (left, left_start, right, right_start).hash(&mut h);
            Ok((format!("inline:{:016x}", h.finish()), l, ql, r, qr))
        }
    }
}

/// Deterministic backoff hint for an `overloaded` reply, scaled by the
/// observed depth and clamped to a sane polling interval.
fn retry_after_ms(depth: u64) -> u64 {
    depth.saturating_mul(20).clamp(50, 5000)
}

/// Atomically takes an admission slot on a shard: fails (with the
/// observed depth) once `limit` is reached. `limit` 0 never fails.
fn try_admit(depth: &AtomicUsize, limit: usize) -> Result<(), usize> {
    if limit == 0 {
        depth.fetch_add(1, Ordering::SeqCst);
        return Ok(());
    }
    depth
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| {
            (d < limit).then_some(d + 1)
        })
        .map(|_| ())
}

/// Holds one client address's in-flight slot; released on drop so every
/// exit path (including write failures) returns the quota.
struct QuotaSlot<'a> {
    inflight: &'a Mutex<HashMap<IpAddr, usize>>,
    ip: IpAddr,
}

impl Drop for QuotaSlot<'_> {
    fn drop(&mut self) {
        let mut map = self.inflight.lock().unwrap();
        if let Some(n) = map.get_mut(&self.ip) {
            *n -= 1;
            if *n == 0 {
                map.remove(&self.ip);
            }
        }
    }
}

/// Takes an in-flight slot for `ip`, or reports the current count when
/// the quota is exhausted.
fn try_take_quota<'a>(
    inflight: &'a Mutex<HashMap<IpAddr, usize>>,
    ip: IpAddr,
    quota: usize,
) -> Result<QuotaSlot<'a>, u64> {
    let mut map = inflight.lock().unwrap();
    let n = map.entry(ip).or_insert(0);
    if *n >= quota {
        return Err(*n as u64);
    }
    *n += 1;
    Ok(QuotaSlot { inflight, ip })
}

/// Routes and runs one resolved check: quota, shard admission, enqueue,
/// wait for the verdict. Returns the rendered reply payload.
fn run_check(fleet: &Fleet, peer: Option<IpAddr>, pair: PairSpec, options: WireOptions) -> String {
    let _slot = match (fleet.client_quota, peer) {
        (quota, Some(ip)) if quota > 0 => match try_take_quota(&fleet.inflight, ip, quota) {
            Ok(slot) => Some(slot),
            Err(inflight) => {
                meters::OVERLOADED_TOTAL.inc();
                return overloaded_to_value(&Overloaded {
                    scope: OverloadScope::Client,
                    shard: None,
                    depth: inflight,
                    limit: quota as u64,
                    retry_after_ms: retry_after_ms(inflight),
                })
                .render();
            }
        },
        _ => None,
    };
    let (name, left, ql, right, qr) = match resolve(&fleet.rows, &pair) {
        Ok(r) => r,
        Err(e) => return error_value(&e).render(),
    };
    let workers = fleet.shards.len();
    let shard = (route_fingerprint(&left, ql, &right, qr) % workers as u128) as usize;
    let handle = &fleet.shards[shard];
    if let Err(depth) = try_admit(&handle.depth, fleet.queue_depth) {
        meters::OVERLOADED_TOTAL.inc();
        leapfrog_obs::global()
            .counter(&format!("leapfrog_shard_{shard}_overloaded_total"))
            .inc();
        return overloaded_to_value(&Overloaded {
            scope: OverloadScope::Shard,
            shard: Some(shard),
            depth: depth as u64,
            limit: fleet.queue_depth as u64,
            retry_after_ms: retry_after_ms(depth as u64),
        })
        .render();
    }
    meters::QUEUE_DEPTH.set(fleet.total_depth());
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = ShardJob::Check(ResolvedCheck {
        name,
        left,
        ql,
        right,
        qr,
        options,
        reply: reply_tx,
    });
    if handle.tx.send(job).is_err() {
        handle.depth.fetch_sub(1, Ordering::SeqCst);
        return error_value("server is shutting down").render();
    }
    match reply_rx.recv() {
        Ok(reply) => reply,
        Err(_) => error_value("server is shutting down").render(),
    }
}

/// What one poll of a connection produced.
enum FrameRead {
    /// A complete frame.
    Frame(String),
    /// The peer closed cleanly between frames.
    Eof,
    /// Nothing arrived within the poll timeout.
    Idle,
}

/// Reads one frame with an idle timeout on the *first* byte only: once a
/// prefix byte has arrived the read blocks (retrying through timeouts)
/// until the frame completes, so a slow writer is never torn.
fn read_frame_idle(stream: &mut TcpStream) -> std::io::Result<FrameRead> {
    use std::io::ErrorKind;
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed mid-prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && filled == 0 =>
            {
                return Ok(FrameRead::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > proto::MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match stream.read(&mut payload[at..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => at += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(payload)
        .map(FrameRead::Frame)
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "non-UTF-8 frame"))
}

fn handle_connection(mut stream: TcpStream, fleet: &Fleet, stop: &AtomicBool) {
    meters::CONNECTIONS_TOTAL.inc();
    meters::CONNECTIONS_OPEN.inc();
    struct OpenGuard;
    impl Drop for OpenGuard {
        fn drop(&mut self) {
            meters::CONNECTIONS_OPEN.dec();
        }
    }
    let _open = OpenGuard;
    let peer = stream.peer_addr().ok().map(|a| a.ip());
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let text = match read_frame_idle(&mut stream) {
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::Frame(t)) => t,
        };
        let started = std::time::Instant::now();
        meters::REQUESTS_TOTAL.inc();
        let request = json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|v| proto::request_from_value(&v));
        let payload = match request {
            Ok(Request::Check { pair, options }) => run_check(fleet, peer, pair, options),
            // Introspection requests read only process-global state:
            // answered right here, never queued behind a check.
            Ok(Request::Verify { pair, certificate }) => {
                verify_reply(fleet, &pair, &certificate).render()
            }
            Ok(Request::Metrics) => metrics_reply().render(),
            Ok(Request::SlowLog) => slow_log_reply().render(),
            Ok(Request::Stats) => stats_reply(fleet).render(),
            Ok(Request::Shutdown) => {
                let reply = shutdown_reply(fleet);
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop with a throwaway connection so
                // it observes the flag.
                let _ = TcpStream::connect(fleet.addr);
                let _ = proto::write_frame(&mut stream, &reply.render());
                meters::REQUEST_SECONDS.record(started.elapsed());
                return;
            }
            Err(e) => error_value(&e).render(),
        };
        meters::QUEUE_DEPTH.set(fleet.total_depth());
        let ok = proto::write_frame(&mut stream, &payload).is_ok();
        meters::REQUEST_SECONDS.record(started.elapsed());
        if !ok {
            return;
        }
    }
}
