//! Packet workload generation: random valid and adversarial packets for
//! a parser, used by differential tests and the substrate benchmarks.
//!
//! The walking/steering machinery itself lives in [`leapfrog_p4a::walk`]
//! so the counterexample witness engine (`leapfrog-cex`) can reuse it
//! without depending on the evaluation suite; this module re-exports it
//! under the suite's historical paths and keeps the suite-level tests.

pub use leapfrog_p4a::walk::{
    accepting_walk_packet, distances_to_accept, packets, random_walk_packet, synthesize_chunk,
    walk_with, Rng,
};

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, StateId};

/// The standard packet workload with witness-corpus regressions merged in
/// front: recorded counterexample packets (see [`crate::corpus`]) are
/// exercised first, then the steered random walks.
/// [`crate::differential::check_cross_validate_and_record`] runs this
/// merged workload against every equivalence verdict, so recorded
/// witnesses are re-exercised on every differential pass.
pub fn packets_with_regressions(
    aut: &Automaton,
    start: StateId,
    max_states: usize,
    count: usize,
    seed: u64,
    regressions: &[BitVec],
) -> Vec<BitVec> {
    let mut out: Vec<BitVec> = regressions.to_vec();
    out.extend(packets(aut, start, max_states, count, seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::mpls;
    use leapfrog_p4a::semantics::Config;

    #[test]
    fn walk_generates_accepting_mpls_packets() {
        let aut = mpls::reference();
        let q1 = aut.state_by_name("q1").unwrap();
        let pkts = packets(&aut, q1, 16, 100, 123);
        let accepted = pkts
            .iter()
            .filter(|p| Config::initial(&aut, q1).accepts_chunked(&aut, p))
            .count();
        // Steering should hit the accept path often (each loop iteration
        // has a 50% chance of taking the bottom-of-stack branch).
        assert!(accepted > 20, "only {accepted}/100 packets accepted");
        // And packets must be label-aligned (multiples of 32, plus 64).
        for p in &pkts {
            assert!(p.len() % 32 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a = packets(&mpls::reference(), leapfrog_p4a::ast::StateId(0), 8, 5, 9);
        let b = packets(&mpls::reference(), leapfrog_p4a::ast::StateId(0), 8, 5, 9);
        assert_eq!(a, b);
    }
}
