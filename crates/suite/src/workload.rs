//! Packet workload generation: random valid and adversarial packets for
//! a parser, used by differential tests and the substrate benchmarks.
//!
//! The generator walks the automaton itself: starting from a state, it
//! repeatedly synthesizes the bits each state consumes, steering selects
//! toward a chosen branch. This yields packets that exercise deep paths
//! (hard to hit with uniform random bits) without hand-writing per-parser
//! generators.

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, Pattern, StateId, Target, Transition};
use leapfrog_p4a::semantics::{eval_transition, run_ops, Config, Store};

/// A deterministic split-mix style RNG for reproducible workloads.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z ^ (z >> 33)
    }

    /// A value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Generates a packet by walking up to `max_states` states from `start`,
/// randomly steering selects, and stopping when `accept`/`reject` is
/// reached. Returns the packet; it may or may not be accepted (steering
/// toward reject branches is allowed), which is exactly what differential
/// testing wants.
pub fn random_walk_packet(
    aut: &Automaton,
    start: StateId,
    max_states: usize,
    rng: &mut Rng,
) -> BitVec {
    let mut packet = BitVec::new();
    let mut config = Config::initial(aut, start);
    for _ in 0..max_states {
        let q = match config.target {
            Target::State(q) => q,
            _ => break,
        };
        let chunk = synthesize_chunk(aut, q, &config.store, rng);
        packet.extend(&chunk);
        let mut store = config.store.clone();
        run_ops(aut, q, &mut store, &chunk);
        let next = eval_transition(aut, q, &store);
        config = Config { target: next, store, buf: BitVec::new() };
    }
    packet
}

/// Synthesizes `‖op(q)‖` bits for state `q`, trying to steer its select
/// toward a uniformly chosen case (best effort: only directly-extracted
/// scrutinee patterns can be forced, which covers the suite's parsers).
fn synthesize_chunk(aut: &Automaton, q: StateId, store: &Store, rng: &mut Rng) -> BitVec {
    let size = aut.op_size(q);
    let mut chunk = BitVec::random_with(size, || rng.next_u64());
    if let Transition::Select { exprs, cases } = &aut.state(q).trans {
        if cases.is_empty() {
            return chunk;
        }
        let choice = &cases[rng.below(cases.len())];
        // Try to force each exact pattern by writing its bits into the
        // extracted region its scrutinee reads from, when the scrutinee is
        // a header (or slice of one) extracted in this very state.
        for (pat, expr) in choice.pats.iter().zip(exprs) {
            if let Pattern::Exact(bits) = pat {
                force_expr(aut, q, expr, bits, &mut chunk);
            }
        }
        let _ = store;
    }
    chunk
}

/// Writes `bits` into the part of `chunk` that `expr` will read, when
/// `expr` is a (slice of a) header extracted by state `q`.
fn force_expr(
    aut: &Automaton,
    q: StateId,
    expr: &leapfrog_p4a::ast::Expr,
    bits: &BitVec,
    chunk: &mut BitVec,
) {
    use leapfrog_p4a::ast::{clamped_slice_bounds, Expr, Op};
    // Resolve the expression to (header, offset-within-header, len).
    fn resolve(aut: &Automaton, e: &Expr) -> Option<(leapfrog_p4a::ast::HeaderId, usize, usize)> {
        match e {
            Expr::Hdr(h) => Some((*h, 0, aut.header_size(*h))),
            Expr::Slice(inner, n1, n2) => {
                let (h, off, len) = resolve(aut, inner)?;
                let (s, l) = clamped_slice_bounds(len, *n1, *n2);
                Some((h, off + s, l))
            }
            _ => None,
        }
    }
    let Some((h, off, len)) = resolve(aut, expr) else { return };
    if bits.len() != len {
        return;
    }
    // Find the chunk offset where h is extracted (last extract wins).
    let mut cursor = 0;
    let mut found = None;
    for op in &aut.state(q).ops {
        if let Op::Extract(h2) = op {
            if *h2 == h {
                found = Some(cursor);
            }
            cursor += aut.header_size(*h2);
        }
    }
    let Some(base) = found else { return };
    for i in 0..len {
        chunk.set(base + off + i, bits.get(i).unwrap());
    }
}

/// A batch of `count` random-walk packets.
pub fn packets(
    aut: &Automaton,
    start: StateId,
    max_states: usize,
    count: usize,
    seed: u64,
) -> Vec<BitVec> {
    let mut rng = Rng::new(seed);
    (0..count).map(|_| random_walk_packet(aut, start, max_states, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::mpls;
    use leapfrog_p4a::semantics::Config;

    #[test]
    fn walk_generates_accepting_mpls_packets() {
        let aut = mpls::reference();
        let q1 = aut.state_by_name("q1").unwrap();
        let pkts = packets(&aut, q1, 16, 100, 123);
        let accepted = pkts
            .iter()
            .filter(|p| Config::initial(&aut, q1).accepts_chunked(&aut, p))
            .count();
        // Steering should hit the accept path often (each loop iteration
        // has a 50% chance of taking the bottom-of-stack branch).
        assert!(accepted > 20, "only {accepted}/100 packets accepted");
        // And packets must be label-aligned (multiples of 32, plus 64).
        for p in &pkts {
            assert!(p.len() % 32 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a = packets(&mpls::reference(), leapfrog_p4a::ast::StateId(0), 8, 5, 9);
        let b = packets(&mpls::reference(), leapfrog_p4a::ast::StateId(0), 8, 5, 9);
        assert_eq!(a, b);
    }
}
