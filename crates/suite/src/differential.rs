//! Differential-testing oracles: cheap semantic equivalence checks used to
//! cross-validate the symbolic decision procedure.
//!
//! These are *testing* tools, not decision procedures: randomized agreement
//! is one-sided (catches inequivalence, never proves equivalence), and the
//! exhaustive oracle is exponential and only usable on tiny automata.
//!
//! Since the counterexample engine landed, refutations are cross-validated
//! too: [`confirm_refutation`] independently replays a refutation's witness
//! packet through the explicit semantics (both the bit-by-bit `δ` and the
//! chunked interpreter) and rejects any witness that does not reproduce a
//! concrete disagreement, and [`check_and_cross_validate`] wraps a full
//! checker run with the matching validation for either verdict.

use leapfrog::{Engine, EngineConfig, Options, Outcome};
use leapfrog_bitvec::BitVec;
use leapfrog_cex::{Disagreement, Refutation, Witness};
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::semantics::{Config, Store};

/// Randomized agreement: runs `samples` random words of each length in
/// `lengths` through both parsers (with independently random initial
/// stores) and reports whether acceptance always matched.
pub fn agree_on_words(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    lengths: &[usize],
    samples: usize,
    seed: u64,
) -> bool {
    find_disagreement(left, ql, right, qr, lengths, samples, seed).is_none()
}

/// Like [`agree_on_words`], but returns the first disagreeing word.
pub fn find_disagreement(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    lengths: &[usize],
    samples: usize,
    seed: u64,
) -> Option<BitVec> {
    let mut state = seed | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for &len in lengths {
        for _ in 0..samples {
            let word = BitVec::random_with(len, &mut rng);
            let sl = Store::random(left, &mut rng);
            let sr = Store::random(right, &mut rng);
            let al = Config::with_store(ql, sl).accepts_chunked(left, &word);
            let ar = Config::with_store(qr, sr).accepts_chunked(right, &word);
            if al != ar {
                return Some(word);
            }
        }
    }
    None
}

/// Exhaustive agreement over *all* words up to `max_len` bits, with zero
/// initial stores. Exponential; keep `max_len ≤ ~18`.
pub fn agree_exhaustive(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    max_len: usize,
) -> bool {
    assert!(max_len <= 22, "exhaustive oracle limited to 22 bits");
    for len in 0..=max_len {
        for w in 0u64..(1u64 << len) {
            let word = BitVec::from_u64(w, len);
            let al = Config::initial(left, ql).accepts_chunked(left, &word);
            let ar = Config::initial(right, qr).accepts_chunked(right, &word);
            if al != ar {
                return false;
            }
        }
    }
    true
}

/// Cross-validates a symbolic refutation: the outcome must carry a
/// *confirmed* witness, and replaying its minimized packet from both
/// initial configurations — with the bit-by-bit `δ` *and* the chunked
/// interpreter, independently — must reproduce the recorded disagreement.
pub fn confirm_refutation(outcome: &Outcome) -> Result<&Witness, String> {
    let refutation = match outcome {
        Outcome::NotEquivalent(r) => r,
        other => return Err(format!("outcome is not a refutation: {other:?}")),
    };
    let w = match refutation {
        Refutation::Witness(w) => w.as_ref(),
        Refutation::Unconfirmed { reason, .. } => {
            return Err(format!("refutation carries no confirmed witness: {reason}"))
        }
    };
    if !w.check() {
        return Err("witness does not replay to its recorded disagreement".into());
    }
    if let Disagreement::Acceptance {
        left_accepts,
        right_accepts,
    } = &w.disagreement
    {
        // Second, independent interpreter: the chunked semantics must agree
        // with the bit-by-bit replay `Witness::check` just performed.
        let aut = w.automaton();
        let al =
            Config::with_store(w.left_start, w.left_store.clone()).accepts_chunked(aut, &w.packet);
        let ar = Config::with_store(w.right_start, w.right_store.clone())
            .accepts_chunked(aut, &w.packet);
        if al != *left_accepts || ar != *right_accepts {
            return Err("chunked replay disagrees with the recorded witness".into());
        }
    }
    Ok(w)
}

/// Runs the symbolic checker and cross-validates its verdict against the
/// explicit semantics: an equivalence verdict is spot-checked with random
/// packets, a refutation must carry a confirmed replayable witness.
/// Answers through a transient engine; a long-running harness should use
/// [`check_and_cross_validate_in`] with a persistent one.
pub fn check_and_cross_validate(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    options: Options,
) -> Result<Outcome, String> {
    let mut engine = Engine::new(EngineConfig::from_options(&options));
    check_and_cross_validate_in(&mut engine, left, ql, right, qr)
}

/// [`check_and_cross_validate`] over a caller-owned persistent [`Engine`]:
/// repeated calls reuse the engine's warm sums, sessions and verdict
/// memos. Verdicts and witnesses are identical to the transient path.
pub fn check_and_cross_validate_in(
    engine: &mut Engine,
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
) -> Result<Outcome, String> {
    let outcome = engine.check(left, ql, right, qr);
    match &outcome {
        Outcome::Equivalent(_) => {
            if !agree_on_words(left, ql, right, qr, &[0, 1, 8, 16, 32, 96, 112], 20, 0xd1f) {
                return Err("equivalence verdict contradicted by random packets".into());
            }
        }
        Outcome::NotEquivalent(_) => {
            confirm_refutation(&outcome)
                .map(|_| ())
                .map_err(|e| e.to_string())?;
        }
        Outcome::Aborted(_) => {}
    }
    Ok(outcome)
}

/// [`check_and_cross_validate`], plus the regression-corpus loop: any
/// recorded counterexamples for `name` are replayed *before* the check
/// (an entry that no longer distinguishes an expected-inequivalent pair
/// is a regression), and a freshly confirmed witness is recorded back
/// into the corpus for the next run.
pub fn check_cross_validate_and_record(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    options: Options,
    name: &str,
    corpus: &mut crate::corpus::WitnessCorpus,
) -> Result<Outcome, String> {
    let mut engine = Engine::new(EngineConfig::from_options(&options));
    check_cross_validate_and_record_in(&mut engine, left, ql, right, qr, name, corpus)
}

/// [`check_cross_validate_and_record`] over a caller-owned persistent
/// [`Engine`] — the serving loop the `table2` harness drives.
pub fn check_cross_validate_and_record_in(
    engine: &mut Engine,
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    name: &str,
    corpus: &mut crate::corpus::WitnessCorpus,
) -> Result<Outcome, String> {
    let prior = corpus.exercise(name, left, ql, right, qr);
    let outcome = check_and_cross_validate_in(engine, left, ql, right, qr)?;
    match &outcome {
        Outcome::NotEquivalent(_) => {
            if prior.replayed > 0 && prior.distinguishing == 0 {
                return Err(format!(
                    "regression corpus for {name}: {} recorded packet(s) no longer \
                     distinguish the refuted pair",
                    prior.replayed
                ));
            }
            if let Some(w) = outcome.witness() {
                corpus.record(name, w);
            }
        }
        Outcome::Equivalent(_) => {
            if prior.distinguishing > 0 {
                return Err(format!(
                    "regression corpus for {name}: {} packet(s) still distinguish a \
                     pair the checker now claims equivalent",
                    prior.distinguishing
                ));
            }
            // The corpus packets also join the packet workload: the pair
            // claims equivalence for *all* initial stores, so the two
            // parsers must agree on every merged packet with zero stores.
            let packets = crate::workload::packets_with_regressions(
                left,
                ql,
                8,
                32,
                0xc0ffee,
                &corpus.packets(name),
            );
            for packet in &packets {
                let al = Config::initial(left, ql).accepts_chunked(left, packet);
                let ar = Config::initial(right, qr).accepts_chunked(right, packet);
                if al != ar {
                    return Err(format!(
                        "regression corpus for {name}: a workload packet ({} bits) \
                         distinguishes a pair the checker claims equivalent",
                        packet.len()
                    ));
                }
            }
        }
        Outcome::Aborted(_) => {}
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::surface::parse;

    #[test]
    fn oracles_accept_equivalent_pair() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 1); goto t }
                        state t { extract(y, 1);
               select(x, y) { (0b1, 0b0) => accept; (_, _) => reject; } } }",
        )
        .unwrap();
        let sa = a.state_by_name("s").unwrap();
        let sb = b.state_by_name("s").unwrap();
        assert!(agree_exhaustive(&a, sa, &b, sb, 6));
        assert!(agree_on_words(&a, sa, &b, sb, &[0, 1, 2, 3, 4], 50, 7));
    }

    #[test]
    fn oracles_catch_inequivalent_pair() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b01 => accept; _ => reject; } } }",
        )
        .unwrap();
        let sa = a.state_by_name("s").unwrap();
        let sb = b.state_by_name("s").unwrap();
        assert!(!agree_exhaustive(&a, sa, &b, sb, 3));
        let w = find_disagreement(&a, sa, &b, sb, &[2], 64, 3).expect("must disagree");
        assert_eq!(w.len(), 2);
    }
}
