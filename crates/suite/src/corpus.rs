//! The witness regression corpus: confirmed, minimized counterexample
//! packets fed back into the differential harness.
//!
//! Every confirmed refutation the symbolic checker produces is also a
//! perfect differential-testing input: a packet (plus initial stores) on
//! which two parsers demonstrably disagree. This module closes the loop —
//! [`WitnessCorpus::record`] captures the minimized packet and the lifted
//! stores of a [`Witness`], keyed by benchmark name; the corpus serializes
//! to a small line-based text file (the offline build has no serde) so it
//! survives across runs; and [`WitnessCorpus::exercise`] replays every
//! recorded packet for a pair through the explicit semantics of the
//! rebuilt sum automaton, reporting how many still distinguish the two
//! parsers. The differential harness and the `table2` binary re-exercise
//! the corpus on every run, so a regression that silently re-equalizes a
//! refuted pair (or breaks the semantics on an old counterexample) is
//! caught immediately.

use std::collections::BTreeMap;
use std::path::Path;

use leapfrog_bitvec::BitVec;
use leapfrog_cex::{Disagreement, Witness};
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::semantics::{Config, Store};
use leapfrog_p4a::sum::sum;

/// One recorded counterexample: the minimized packet and the nonzero
/// headers of both lifted initial stores, named over the *sum* automaton
/// (`l.<header>` / `r.<header>` — the sum construction is deterministic,
/// so the names resolve identically when the pair is rebuilt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The minimized distinguishing packet.
    pub packet: BitVec,
    /// Nonzero headers of the left run's initial store.
    pub left_store: Vec<(String, BitVec)>,
    /// Nonzero headers of the right run's initial store.
    pub right_store: Vec<(String, BitVec)>,
}

/// What replaying a pair's corpus observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusReport {
    /// Entries replayed (store names resolved in the rebuilt sum).
    pub replayed: usize,
    /// Entries whose packet still drives the two runs to different
    /// acceptance verdicts.
    pub distinguishing: usize,
    /// Entries skipped because a stored header name did not resolve
    /// (the parser pair changed shape since the entry was recorded).
    pub skipped: usize,
}

/// A named collection of confirmed witness packets, replayable as
/// differential regression inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WitnessCorpus {
    entries: BTreeMap<String, Vec<CorpusEntry>>,
}

impl WitnessCorpus {
    /// An empty corpus.
    pub fn new() -> WitnessCorpus {
        WitnessCorpus::default()
    }

    /// Total recorded entries across all pairs.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The benchmark names with recorded entries.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// The entries recorded for a pair.
    pub fn entries(&self, name: &str) -> &[CorpusEntry] {
        self.entries.get(name).map_or(&[], Vec::as_slice)
    }

    /// The recorded packets for a pair (for merging into packet
    /// workloads; see [`crate::workload::packets_with_regressions`]).
    pub fn packets(&self, name: &str) -> Vec<BitVec> {
        self.entries(name)
            .iter()
            .map(|e| e.packet.clone())
            .collect()
    }

    /// Records a confirmed witness under `name`. Only acceptance
    /// disagreements are generically replayable (a relational
    /// counterexample may agree on acceptance, which the differential
    /// harness cannot observe), so others are declined. Returns whether a
    /// new entry was added (duplicates are dropped).
    pub fn record(&mut self, name: &str, witness: &Witness) -> bool {
        if !matches!(witness.disagreement, Disagreement::Acceptance { .. }) {
            return false;
        }
        let aut = witness.automaton();
        let collect = |store: &Store| -> Vec<(String, BitVec)> {
            aut.header_ids()
                .filter_map(|h| {
                    let v = store.get(h);
                    if v.iter().any(|b| b) {
                        Some((aut.header_name(h).to_string(), v.clone()))
                    } else {
                        None
                    }
                })
                .collect()
        };
        let entry = CorpusEntry {
            packet: witness.packet.clone(),
            left_store: collect(&witness.left_store),
            right_store: collect(&witness.right_store),
        };
        let bucket = self.entries.entry(name.to_string()).or_default();
        if bucket.contains(&entry) {
            return false;
        }
        bucket.push(entry);
        true
    }

    /// Replays every entry recorded for `name` against the pair,
    /// rebuilding the sum automaton the stores are named over.
    pub fn exercise(
        &self,
        name: &str,
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
    ) -> CorpusReport {
        let mut report = CorpusReport::default();
        let entries = self.entries(name);
        if entries.is_empty() {
            return report;
        }
        let s = sum(left, right);
        let ql = s.left_state(ql);
        let qr = s.right_state(qr);
        'entries: for entry in entries {
            let mut stores = [Store::zeros(&s.automaton), Store::zeros(&s.automaton)];
            for (i, named) in [&entry.left_store, &entry.right_store].iter().enumerate() {
                for (hname, bits) in named.iter() {
                    match s.automaton.header_by_name(hname) {
                        Some(h) if s.automaton.header_size(h) == bits.len() => {
                            stores[i].set(h, bits.clone())
                        }
                        _ => {
                            report.skipped += 1;
                            continue 'entries;
                        }
                    }
                }
            }
            let [left_store, right_store] = stores;
            let al = Config::with_store(ql, left_store)
                .step_word(&s.automaton, &entry.packet)
                .is_accepting();
            let ar = Config::with_store(qr, right_store)
                .step_word(&s.automaton, &entry.packet)
                .is_accepting();
            report.replayed += 1;
            if al != ar {
                report.distinguishing += 1;
            }
        }
        report
    }

    /// Serializes the corpus to the line-based text format.
    pub fn to_text(&self) -> String {
        fn stores(out: &mut String, tag: &str, named: &[(String, BitVec)]) {
            out.push_str(tag);
            if named.is_empty() {
                out.push_str(" -");
            } else {
                for (i, (name, bits)) in named.iter().enumerate() {
                    out.push(if i == 0 { ' ' } else { ',' });
                    out.push_str(name);
                    out.push('=');
                    out.push_str(&bits.to_string());
                }
            }
            out.push('\n');
        }
        let mut out = String::from("# leapfrog-witness-corpus v1\n");
        for (name, entries) in &self.entries {
            out.push_str("pair ");
            out.push_str(name);
            out.push('\n');
            for e in entries {
                out.push_str("packet ");
                if e.packet.is_empty() {
                    out.push('-');
                } else {
                    out.push_str(&e.packet.to_string());
                }
                out.push('\n');
                stores(&mut out, "left", &e.left_store);
                stores(&mut out, "right", &e.right_store);
            }
        }
        out
    }

    /// Parses the text format produced by [`WitnessCorpus::to_text`].
    pub fn from_text(text: &str) -> Result<WitnessCorpus, String> {
        fn parse_stores(rest: &str, line_no: usize) -> Result<Vec<(String, BitVec)>, String> {
            if rest == "-" {
                return Ok(Vec::new());
            }
            rest.split(',')
                .map(|kv| {
                    let (name, bits) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("line {line_no}: malformed store entry {kv:?}"))?;
                    let bits: BitVec = bits
                        .parse()
                        .map_err(|e| format!("line {line_no}: bad bits for {name}: {e}"))?;
                    Ok((name.to_string(), bits))
                })
                .collect()
        }
        let mut corpus = WitnessCorpus::new();
        let mut current: Option<String> = None;
        let mut pending: Option<CorpusEntry> = None;
        let flush = |name: &Option<String>,
                     pending: &mut Option<CorpusEntry>,
                     corpus: &mut WitnessCorpus|
         -> Result<(), String> {
            if let Some(entry) = pending.take() {
                let name = name
                    .as_ref()
                    .ok_or_else(|| "packet before any pair header".to_string())?;
                corpus.entries.entry(name.clone()).or_default().push(entry);
            }
            Ok(())
        };
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix("pair ") {
                flush(&current, &mut pending, &mut corpus)?;
                current = Some(name.to_string());
            } else if let Some(rest) = line.strip_prefix("packet ") {
                flush(&current, &mut pending, &mut corpus)?;
                let packet = if rest == "-" {
                    BitVec::new()
                } else {
                    rest.parse()
                        .map_err(|e| format!("line {line_no}: bad packet: {e}"))?
                };
                pending = Some(CorpusEntry {
                    packet,
                    left_store: Vec::new(),
                    right_store: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("left ") {
                let entry = pending
                    .as_mut()
                    .ok_or(format!("line {line_no}: left before packet"))?;
                entry.left_store = parse_stores(rest, line_no)?;
            } else if let Some(rest) = line.strip_prefix("right ") {
                let entry = pending
                    .as_mut()
                    .ok_or(format!("line {line_no}: right before packet"))?;
                entry.right_store = parse_stores(rest, line_no)?;
            } else {
                return Err(format!("line {line_no}: unrecognized line {line:?}"));
            }
        }
        flush(&current, &mut pending, &mut corpus)?;
        Ok(corpus)
    }

    /// Loads a corpus from a file; a missing file is an empty corpus.
    pub fn load(path: impl AsRef<Path>) -> Result<WitnessCorpus, String> {
        match std::fs::read_to_string(path.as_ref()) {
            Ok(text) => WitnessCorpus::from_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(WitnessCorpus::new()),
            Err(e) => Err(format!("{}: {e}", path.as_ref().display())),
        }
    }

    /// Saves the corpus to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Merges another corpus into this one, dropping duplicate entries.
    /// Fleet restarts use this to union per-shard corpus files (entries
    /// are name-keyed, not fingerprint-keyed, so every shard may replay
    /// the full set). Returns how many entries were newly added.
    pub fn absorb(&mut self, other: WitnessCorpus) -> usize {
        let mut added = 0;
        for (name, entries) in other.entries {
            let bucket = self.entries.entry(name).or_default();
            for entry in entries {
                if !bucket.contains(&entry) {
                    bucket.push(entry);
                    added += 1;
                }
            }
        }
        added
    }
}

/// The corpus is a [`WitnessSink`](leapfrog::WitnessSink): attach it to a
/// persistent engine and every confirmed refutation witness a named check
/// (or batch member) produces is recorded automatically.
impl leapfrog::WitnessSink for WitnessCorpus {
    fn record(&mut self, name: &str, witness: &Witness) -> bool {
        WitnessCorpus::record(self, name, witness)
    }

    /// The corpus text format — `Engine::save_state` writes it into the
    /// state directory so recorded regression packets survive a restart.
    fn export_text(&self) -> Option<String> {
        Some(self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog::{Checker, Options};
    use leapfrog_p4a::surface::parse;

    fn inequivalent_pair() -> (Automaton, StateId, Automaton, StateId) {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let sa = a.state_by_name("s").unwrap();
        let sb = b.state_by_name("s").unwrap();
        (a, sa, b, sb)
    }

    #[test]
    fn record_roundtrip_and_exercise() {
        let (a, sa, b, sb) = inequivalent_pair();
        let mut checker = Checker::new(&a, sa, &b, sb, Options::default());
        let outcome = checker.run();
        let w = outcome.witness().expect("confirmed witness");

        let mut corpus = WitnessCorpus::new();
        assert!(corpus.record("toy", w));
        assert!(!corpus.record("toy", w), "duplicates are dropped");
        assert_eq!(corpus.len(), 1);

        // Text round trip.
        let text = corpus.to_text();
        let back = WitnessCorpus::from_text(&text).unwrap();
        assert_eq!(back, corpus);

        // The recorded packet still distinguishes the pair.
        let report = back.exercise("toy", &a, sa, &b, sb);
        assert_eq!(report.replayed, 1, "{report:?}");
        assert_eq!(report.distinguishing, 1, "{report:?}");
        assert_eq!(report.skipped, 0);

        // …and stops distinguishing a self-comparison, as expected.
        let self_report = back.exercise("toy", &a, sa, &a, sa);
        assert_eq!(self_report.distinguishing, 0);
    }

    #[test]
    fn store_dependent_witness_replays_with_stores() {
        // The witness for a store-dependent refutation needs its lifted
        // stores to reproduce the disagreement; the corpus must carry
        // them through serialization.
        let a = parse(
            "parser A {
               state s { extract(g, 1);
                 select(h[0:0]) { 0b1 => accept; _ => reject; } }
               header h : 4;
             }",
        )
        .unwrap();
        let sa = a.state_by_name("s").unwrap();
        let mut checker = Checker::new(&a, sa, &a, sa, Options::default());
        let outcome = checker.run();
        let w = outcome.witness().expect("store-dependence witness");
        let mut corpus = WitnessCorpus::new();
        assert!(corpus.record("store-dep", w));
        let back = WitnessCorpus::from_text(&corpus.to_text()).unwrap();
        let report = back.exercise("store-dep", &a, sa, &a, sa);
        assert_eq!(report.replayed, 1, "{report:?}");
        assert_eq!(
            report.distinguishing, 1,
            "stores must survive the round trip: {report:?}"
        );
    }

    #[test]
    fn shape_change_is_skipped_not_wrong() {
        let (a, sa, b, sb) = inequivalent_pair();
        let mut corpus = WitnessCorpus::new();
        corpus.entries.insert(
            "toy".into(),
            vec![CorpusEntry {
                packet: "11".parse().unwrap(),
                left_store: vec![("l.absent".into(), "1".parse().unwrap())],
                right_store: vec![],
            }],
        );
        let report = corpus.exercise("toy", &a, sa, &b, sb);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn absorb_unions_and_dedupes() {
        let (a, sa, b, sb) = inequivalent_pair();
        let mut checker = Checker::new(&a, sa, &b, sb, Options::default());
        let w_binding = checker.run();
        let w = w_binding.witness().expect("confirmed witness");
        let mut left = WitnessCorpus::new();
        left.record("toy", w);
        let mut right = WitnessCorpus::new();
        right.record("toy", w);
        right.entries.insert(
            "other".into(),
            vec![CorpusEntry {
                packet: "10".parse().unwrap(),
                left_store: vec![],
                right_store: vec![],
            }],
        );
        // The duplicate "toy" entry is dropped; "other" is adopted.
        assert_eq!(left.absorb(right.clone()), 1);
        assert_eq!(left.len(), 2);
        // Absorbing again is a no-op.
        assert_eq!(left.absorb(right), 0);
    }

    #[test]
    fn missing_file_is_empty_corpus() {
        let corpus = WitnessCorpus::load("/nonexistent/leapfrog-corpus.txt");
        assert_eq!(corpus, Ok(WitnessCorpus::new()));
    }
}
