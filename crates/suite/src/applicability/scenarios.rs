//! The four deployment-scenario parsers (paper §7.2, after Gibb et al.).
//!
//! Every parser starts at `parse_eth`. The [`Scale`] knob trims the MPLS
//! chain depth and tunnel nesting so benchmarks can run quickly; at
//! [`Scale::Full`] the state counts land near Table 2's
//! (Edge 14, Service Provider 11, Datacenter 15, Enterprise 11 per copy).

use leapfrog_p4a::ast::{Automaton, Expr, Target};
use leapfrog_p4a::builder::Builder;

use super::protocols::{self as p, values as v};
use crate::Scale;

fn ethertype_slice(b: &mut Builder, name: &str) -> Expr {
    let eth = b.header(name, p::ETHERNET_BITS);
    Expr::slice(
        Expr::hdr(eth),
        p::ETHERTYPE_OFFSET,
        p::ETHERTYPE_OFFSET + p::ETHERTYPE_BITS - 1,
    )
}

/// Builds an MPLS label chain: `mpls0 … mpls{depth-1}`, each branching on
/// the bottom-of-stack bit to the next label or to `after_bos`; stack
/// overflow (no bottom within `depth` labels) rejects.
fn mpls_chain(b: &mut Builder, depth: usize, after_bos: Target) -> Target {
    assert!(depth >= 1);
    let states: Vec<_> = (0..depth)
        .map(|i| b.state(format!("parse_mpls{i}")))
        .collect();
    for i in 0..depth {
        let label = b.header(format!("mpls{i}"), p::MPLS_BITS);
        let next: Target = if i + 1 < depth {
            Target::State(states[i + 1])
        } else {
            Target::Reject // stack deeper than the hardware supports
        };
        let bos = Expr::slice(Expr::hdr(label), p::MPLS_BOS_OFFSET, p::MPLS_BOS_OFFSET);
        let trans = b.select1(bos, vec![("0", next), ("1", after_bos)]);
        b.define(states[i], vec![b.extract(label)], trans);
    }
    Target::State(states[0])
}

/// A leaf state that extracts one header and accepts.
fn leaf(b: &mut Builder, state: &str, header: &str, bits: usize) -> Target {
    let q = b.state(state);
    let h = b.header(header, bits);
    b.define(q, vec![b.extract(h)], b.goto(Target::Accept));
    Target::State(q)
}

/// An IPv4 state demuxing on the protocol field.
fn ipv4_state(b: &mut Builder, state: &str, header: &str, cases: Vec<(u64, Target)>) -> Target {
    let q = b.state(state);
    let h = b.header(header, p::IPV4_BITS);
    let sel = Expr::slice(
        Expr::hdr(h),
        p::IPV4_PROTO_OFFSET,
        p::IPV4_PROTO_OFFSET + p::PROTO_BITS - 1,
    );
    let pats: Vec<(String, Target)> = cases
        .into_iter()
        .map(|(num, t)| (p::proto(num), t))
        .collect();
    let trans = b.select1(sel, pats.iter().map(|(s, t)| (s.as_str(), *t)).collect());
    b.define(q, vec![b.extract(h)], trans);
    Target::State(q)
}

/// An IPv6 state demuxing on the next-header field.
fn ipv6_state(b: &mut Builder, state: &str, header: &str, cases: Vec<(u64, Target)>) -> Target {
    let q = b.state(state);
    let h = b.header(header, p::IPV6_BITS);
    let sel = Expr::slice(
        Expr::hdr(h),
        p::IPV6_NEXT_OFFSET,
        p::IPV6_NEXT_OFFSET + p::PROTO_BITS - 1,
    );
    let pats: Vec<(String, Target)> = cases
        .into_iter()
        .map(|(num, t)| (p::proto(num), t))
        .collect();
    let trans = b.select1(sel, pats.iter().map(|(s, t)| (s.as_str(), *t)).collect());
    b.define(q, vec![b.extract(h)], trans);
    Target::State(q)
}

/// **Enterprise** (campus router): Ethernet, optional VLAN (+ QinQ), ARP,
/// IPv4/IPv6, TCP/UDP/ICMP(v6).
pub fn enterprise(_scale: Scale) -> Automaton {
    let mut b = Builder::new();
    let tcp = leaf(&mut b, "parse_tcp", "tcp", p::TCP_BITS);
    let udp = leaf(&mut b, "parse_udp", "udp", p::UDP_BITS);
    let icmp = leaf(&mut b, "parse_icmp", "icmp", p::ICMP_BITS);
    let icmp6 = leaf(&mut b, "parse_icmp6", "icmp6", p::ICMP_BITS);
    let arp = leaf(&mut b, "parse_arp", "arp", p::ARP_BITS);
    let ipv4 = ipv4_state(
        &mut b,
        "parse_ipv4",
        "ipv4",
        vec![(v::IP_TCP, tcp), (v::IP_UDP, udp), (v::IP_ICMP, icmp)],
    );
    let ipv6 = ipv6_state(
        &mut b,
        "parse_ipv6",
        "ipv6",
        vec![(v::IP_TCP, tcp), (v::IP_UDP, udp), (v::IP_ICMPV6, icmp6)],
    );
    // Inner VLAN (QinQ) then outer VLAN.
    let vlan_demux = |b: &mut Builder, state: &str, header: &str, deeper: Option<Target>| {
        let q = b.state(state);
        let h = b.header(header, p::VLAN_BITS);
        let sel = Expr::slice(
            Expr::hdr(h),
            p::VLAN_ETHERTYPE_OFFSET,
            p::VLAN_ETHERTYPE_OFFSET + p::ETHERTYPE_BITS - 1,
        );
        let mut cases = vec![
            (p::ethertype(v::ETH_IPV4), ipv4),
            (p::ethertype(v::ETH_IPV6), ipv6),
            (p::ethertype(v::ETH_ARP), arp),
        ];
        if let Some(d) = deeper {
            cases.insert(0, (p::ethertype(v::ETH_VLAN), d));
        }
        let trans = b.select1(sel, cases.iter().map(|(s, t)| (s.as_str(), *t)).collect());
        b.define(q, vec![b.extract(h)], trans);
        Target::State(q)
    };
    let vlan_inner2 = vlan_demux(&mut b, "parse_vlan_inner2", "vlan_inner2", None);
    let vlan_inner = vlan_demux(&mut b, "parse_vlan_inner", "vlan_inner", Some(vlan_inner2));
    let vlan = vlan_demux(&mut b, "parse_vlan", "vlan", Some(vlan_inner));
    let parse_eth = b.state("parse_eth");
    let ety = ethertype_slice(&mut b, "eth");
    let trans = b.select1(
        ety,
        vec![
            (&p::ethertype(v::ETH_VLAN), vlan),
            (&p::ethertype(v::ETH_QINQ), vlan),
            (&p::ethertype(v::ETH_IPV4), ipv4),
            (&p::ethertype(v::ETH_IPV6), ipv6),
            (&p::ethertype(v::ETH_ARP), arp),
        ]
        .into_iter()
        .map(|(s, t)| (s.to_string(), t))
        .map(|(s, t)| (Box::leak(s.into_boxed_str()) as &str, t))
        .collect(),
    );
    let eth_hdr = b.header("eth", p::ETHERNET_BITS);
    b.define(parse_eth, vec![b.extract(eth_hdr)], trans);
    b.build().expect("enterprise parser is well-formed")
}

/// **Edge** (gateway router): Ethernet, VLAN, an MPLS stack, IPv4/IPv6,
/// GRE tunneling with an inner IPv4, TCP/UDP/ICMP.
pub fn edge(scale: Scale) -> Automaton {
    let mpls_depth = match scale {
        Scale::Full => 5,
        Scale::Medium => 2,
        Scale::Small => 1,
    };
    let mut b = Builder::new();
    let tcp = leaf(&mut b, "parse_tcp", "tcp", p::TCP_BITS);
    let udp = leaf(&mut b, "parse_udp", "udp", p::UDP_BITS);
    let icmp = leaf(&mut b, "parse_icmp", "icmp", p::ICMP_BITS);
    // Inner IPv4 under GRE.
    let ipv4_inner = ipv4_state(
        &mut b,
        "parse_ipv4_inner",
        "ipv4_inner",
        vec![(v::IP_TCP, tcp), (v::IP_UDP, udp)],
    );
    let gre = {
        let q = b.state("parse_gre");
        let h = b.header("gre", p::GRE_BITS);
        // Protocol type field in the low 16 bits of the GRE base header.
        let sel = Expr::slice(Expr::hdr(h), 16, 31);
        let trans = b.select1(sel, vec![(&*p::ethertype(v::ETH_IPV4).leak(), ipv4_inner)]);
        b.define(q, vec![b.extract(h)], trans);
        Target::State(q)
    };
    let ipv4 = ipv4_state(
        &mut b,
        "parse_ipv4",
        "ipv4",
        vec![
            (v::IP_TCP, tcp),
            (v::IP_UDP, udp),
            (v::IP_ICMP, icmp),
            (v::IP_GRE, gre),
        ],
    );
    let ipv6 = ipv6_state(
        &mut b,
        "parse_ipv6",
        "ipv6",
        vec![(v::IP_TCP, tcp), (v::IP_UDP, udp)],
    );
    let mpls = mpls_chain(&mut b, mpls_depth, ipv4);
    let vlan = {
        let q = b.state("parse_vlan");
        let h = b.header("vlan", p::VLAN_BITS);
        let sel = Expr::slice(
            Expr::hdr(h),
            p::VLAN_ETHERTYPE_OFFSET,
            p::VLAN_ETHERTYPE_OFFSET + p::ETHERTYPE_BITS - 1,
        );
        let cases = vec![
            (p::ethertype(v::ETH_MPLS).leak() as &str, mpls),
            (p::ethertype(v::ETH_IPV4).leak() as &str, ipv4),
            (p::ethertype(v::ETH_IPV6).leak() as &str, ipv6),
        ];
        let trans = b.select1(sel, cases);
        b.define(q, vec![b.extract(h)], trans);
        Target::State(q)
    };
    let parse_eth = b.state("parse_eth");
    let ety = ethertype_slice(&mut b, "eth");
    let cases = vec![
        (p::ethertype(v::ETH_VLAN).leak() as &str, vlan),
        (p::ethertype(v::ETH_MPLS).leak() as &str, mpls),
        (p::ethertype(v::ETH_IPV4).leak() as &str, ipv4),
        (p::ethertype(v::ETH_IPV6).leak() as &str, ipv6),
    ];
    let trans = b.select1(ety, cases);
    let eth_hdr = b.header("eth", p::ETHERNET_BITS);
    b.define(parse_eth, vec![b.extract(eth_hdr)], trans);
    b.build().expect("edge parser is well-formed")
}

/// **Service Provider** (core router): Ethernet, QinQ VLANs, a deep MPLS
/// stack, IPv4/IPv6, TCP/UDP.
pub fn service_provider(scale: Scale) -> Automaton {
    let mpls_depth = match scale {
        Scale::Full => 4,
        Scale::Medium => 2,
        Scale::Small => 1,
    };
    let mut b = Builder::new();
    let tcp = leaf(&mut b, "parse_tcp", "tcp", p::TCP_BITS);
    let udp = leaf(&mut b, "parse_udp", "udp", p::UDP_BITS);
    let ipv4 = ipv4_state(
        &mut b,
        "parse_ipv4",
        "ipv4",
        vec![(v::IP_TCP, tcp), (v::IP_UDP, udp)],
    );
    let ipv6 = ipv6_state(
        &mut b,
        "parse_ipv6",
        "ipv6",
        vec![(v::IP_TCP, tcp), (v::IP_UDP, udp)],
    );
    let mpls = mpls_chain(&mut b, mpls_depth, ipv4);
    let vlan_demux = |b: &mut Builder, state: &str, header: &str, deeper: Option<Target>| {
        let q = b.state(state);
        let h = b.header(header, p::VLAN_BITS);
        let sel = Expr::slice(
            Expr::hdr(h),
            p::VLAN_ETHERTYPE_OFFSET,
            p::VLAN_ETHERTYPE_OFFSET + p::ETHERTYPE_BITS - 1,
        );
        let mut cases: Vec<(&str, Target)> = vec![
            (p::ethertype(v::ETH_MPLS).leak(), mpls),
            (p::ethertype(v::ETH_IPV4).leak(), ipv4),
            (p::ethertype(v::ETH_IPV6).leak(), ipv6),
        ];
        if let Some(d) = deeper {
            cases.insert(0, (p::ethertype(v::ETH_VLAN).leak(), d));
        }
        let trans = b.select1(sel, cases);
        b.define(q, vec![b.extract(h)], trans);
        Target::State(q)
    };
    let vlan_inner = vlan_demux(&mut b, "parse_vlan_inner", "vlan_inner", None);
    let vlan = vlan_demux(&mut b, "parse_vlan", "vlan", Some(vlan_inner));
    let parse_eth = b.state("parse_eth");
    let ety = ethertype_slice(&mut b, "eth");
    let cases: Vec<(&str, Target)> = vec![
        (p::ethertype(v::ETH_QINQ).leak(), vlan),
        (p::ethertype(v::ETH_VLAN).leak(), vlan),
        (p::ethertype(v::ETH_MPLS).leak(), mpls),
        (p::ethertype(v::ETH_IPV4).leak(), ipv4),
        (p::ethertype(v::ETH_IPV6).leak(), ipv6),
    ];
    let trans = b.select1(ety, cases);
    let eth_hdr = b.header("eth", p::ETHERNET_BITS);
    b.define(parse_eth, vec![b.extract(eth_hdr)], trans);
    b.build().expect("service provider parser is well-formed")
}

/// **Datacenter** (top-of-rack switch): Ethernet, VLAN, IPv4/IPv6,
/// TCP/UDP, VXLAN tunneling (UDP port 4789) with a full inner
/// Ethernet/IP/transport stack, and NVGRE.
pub fn datacenter(scale: Scale) -> Automaton {
    let inner = !matches!(scale, Scale::Small);
    let mut b = Builder::new();
    let tcp_in = leaf(&mut b, "parse_tcp_inner", "tcp_inner", p::TCP_BITS);
    let udp_in = leaf(&mut b, "parse_udp_inner", "udp_inner", p::UDP_BITS);
    let ipv4_in = if inner {
        ipv4_state(
            &mut b,
            "parse_ipv4_inner",
            "ipv4_inner",
            vec![(v::IP_TCP, tcp_in), (v::IP_UDP, udp_in)],
        )
    } else {
        tcp_in
    };
    let ipv6_in = if inner {
        ipv6_state(
            &mut b,
            "parse_ipv6_inner",
            "ipv6_inner",
            vec![(v::IP_TCP, tcp_in), (v::IP_UDP, udp_in)],
        )
    } else {
        udp_in
    };
    // Inner Ethernet after the VXLAN header.
    let eth_inner = {
        let q = b.state("parse_eth_inner");
        let h = b.header("eth_inner", p::ETHERNET_BITS);
        let sel = Expr::slice(
            Expr::hdr(h),
            p::ETHERTYPE_OFFSET,
            p::ETHERTYPE_OFFSET + p::ETHERTYPE_BITS - 1,
        );
        let cases: Vec<(&str, Target)> = vec![
            (p::ethertype(v::ETH_IPV4).leak(), ipv4_in),
            (p::ethertype(v::ETH_IPV6).leak(), ipv6_in),
        ];
        let trans = b.select1(sel, cases);
        b.define(q, vec![b.extract(h)], trans);
        Target::State(q)
    };
    let vxlan = {
        let q = b.state("parse_vxlan");
        let h = b.header("vxlan", p::VXLAN_BITS);
        b.define(q, vec![b.extract(h)], b.goto(eth_inner));
        Target::State(q)
    };
    // Outer UDP demuxes on the destination port for VXLAN.
    let udp = {
        let q = b.state("parse_udp");
        let h = b.header("udp", p::UDP_BITS);
        let sel = Expr::slice(
            Expr::hdr(h),
            p::UDP_DPORT_OFFSET,
            p::UDP_DPORT_OFFSET + p::PORT_BITS - 1,
        );
        let cases: Vec<(&str, Target)> = vec![
            (p::port(v::PORT_VXLAN).leak(), vxlan),
            ("_", Target::Accept),
        ];
        let trans = b.select1(sel, cases);
        b.define(q, vec![b.extract(h)], trans);
        Target::State(q)
    };
    let tcp = leaf(&mut b, "parse_tcp", "tcp", p::TCP_BITS);
    // NVGRE: GRE carrying inner Ethernet.
    let nvgre = {
        let q = b.state("parse_nvgre");
        let h = b.header("nvgre", p::GRE_BITS);
        b.define(q, vec![b.extract(h)], b.goto(eth_inner));
        Target::State(q)
    };
    let icmp = leaf(&mut b, "parse_icmp", "icmp", p::ICMP_BITS);
    let icmp6 = leaf(&mut b, "parse_icmp6", "icmp6", p::ICMP_BITS);
    let ipv4 = ipv4_state(
        &mut b,
        "parse_ipv4",
        "ipv4",
        vec![
            (v::IP_TCP, tcp),
            (v::IP_UDP, udp),
            (v::IP_GRE, nvgre),
            (v::IP_ICMP, icmp),
        ],
    );
    let ipv6 = ipv6_state(
        &mut b,
        "parse_ipv6",
        "ipv6",
        vec![(v::IP_TCP, tcp), (v::IP_UDP, udp), (v::IP_ICMPV6, icmp6)],
    );
    let vlan = {
        let q = b.state("parse_vlan");
        let h = b.header("vlan", p::VLAN_BITS);
        let sel = Expr::slice(
            Expr::hdr(h),
            p::VLAN_ETHERTYPE_OFFSET,
            p::VLAN_ETHERTYPE_OFFSET + p::ETHERTYPE_BITS - 1,
        );
        let cases: Vec<(&str, Target)> = vec![
            (p::ethertype(v::ETH_IPV4).leak(), ipv4),
            (p::ethertype(v::ETH_IPV6).leak(), ipv6),
        ];
        let trans = b.select1(sel, cases);
        b.define(q, vec![b.extract(h)], trans);
        Target::State(q)
    };
    let parse_eth = b.state("parse_eth");
    let ety = ethertype_slice(&mut b, "eth");
    let cases: Vec<(&str, Target)> = vec![
        (p::ethertype(v::ETH_VLAN).leak(), vlan),
        (p::ethertype(v::ETH_IPV4).leak(), ipv4),
        (p::ethertype(v::ETH_IPV6).leak(), ipv6),
    ];
    let trans = b.select1(ety, cases);
    let eth_hdr = b.header("eth", p::ETHERNET_BITS);
    b.define(parse_eth, vec![b.extract(eth_hdr)], trans);
    b.build().expect("datacenter parser is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::applicability::all_benchmarks;
    use crate::workload::{packets, Rng};
    use leapfrog_p4a::semantics::Config;
    use leapfrog_p4a::validate::validate;

    #[test]
    fn all_scenarios_validate_at_all_scales() {
        for scale in [Scale::Small, Scale::Medium, Scale::Full] {
            for aut in [
                enterprise(scale),
                edge(scale),
                service_provider(scale),
                datacenter(scale),
            ] {
                assert!(validate(&aut).is_ok());
                assert!(aut.state_by_name("parse_eth").is_some());
            }
        }
    }

    #[test]
    fn full_scale_state_counts_near_table2() {
        // Table 2 (both copies): Edge 28, SP 22, DC 30, Enterprise 22.
        assert_eq!(edge(Scale::Full).num_states() * 2, 28);
        assert_eq!(service_provider(Scale::Full).num_states() * 2, 22);
        assert_eq!(datacenter(Scale::Full).num_states() * 2, 30);
        assert_eq!(enterprise(Scale::Full).num_states() * 2, 22);
    }

    #[test]
    fn scenarios_accept_generated_packets() {
        for aut in [
            enterprise(Scale::Small),
            edge(Scale::Small),
            service_provider(Scale::Small),
            datacenter(Scale::Small),
        ] {
            let q = aut.state_by_name("parse_eth").unwrap();
            let pkts = packets(&aut, q, 12, 60, 0xD00D);
            let accepted = pkts
                .iter()
                .filter(|p| Config::initial(&aut, q).accepts_chunked(&aut, p))
                .count();
            assert!(accepted > 0, "workload never reaches accept");
        }
    }

    #[test]
    fn benchmarks_are_self_comparisons() {
        for bench in all_benchmarks(Scale::Small) {
            assert!(bench.expect_equivalent);
            assert_eq!(bench.left.num_states(), bench.right.num_states());
        }
        let mut rng = Rng::new(1);
        let _ = rng.next_u64();
    }
}
