//! Standard protocol header sizes and demux field constants used by the
//! scenario parsers.

/// Ethernet II header: 48-bit destination, 48-bit source, 16-bit EtherType.
pub const ETHERNET_BITS: usize = 112;
/// 802.1Q VLAN tag: TPID consumed by the EtherType, 16-bit TCI + 16-bit
/// inner EtherType.
pub const VLAN_BITS: usize = 32;
/// One MPLS label stack entry.
pub const MPLS_BITS: usize = 32;
/// IPv4 header without options (20 bytes).
pub const IPV4_BITS: usize = 160;
/// IPv6 fixed header (40 bytes).
pub const IPV6_BITS: usize = 320;
/// TCP header without options (20 bytes).
pub const TCP_BITS: usize = 160;
/// UDP header (8 bytes).
pub const UDP_BITS: usize = 64;
/// ICMP header (first 4 bytes).
pub const ICMP_BITS: usize = 32;
/// GRE base header (4 bytes).
pub const GRE_BITS: usize = 32;
/// VXLAN header (8 bytes).
pub const VXLAN_BITS: usize = 64;
/// ARP payload for Ethernet/IPv4 (28 bytes).
pub const ARP_BITS: usize = 224;

/// Offset of the EtherType within an Ethernet header.
pub const ETHERTYPE_OFFSET: usize = 96;
/// EtherType length.
pub const ETHERTYPE_BITS: usize = 16;

/// Offset of the inner EtherType within a VLAN tag.
pub const VLAN_ETHERTYPE_OFFSET: usize = 16;

/// Offset of the protocol field within an IPv4 header.
pub const IPV4_PROTO_OFFSET: usize = 72;
/// Offset of the next-header field within an IPv6 header.
pub const IPV6_NEXT_OFFSET: usize = 48;
/// Protocol field length.
pub const PROTO_BITS: usize = 8;

/// Offset of the bottom-of-stack flag within an MPLS label entry.
pub const MPLS_BOS_OFFSET: usize = 23;

/// Offset of the UDP destination port.
pub const UDP_DPORT_OFFSET: usize = 16;
/// Port field length.
pub const PORT_BITS: usize = 16;

/// A 16-bit EtherType as a binary-string pattern.
pub fn ethertype(value: u64) -> String {
    format!("{value:016b}")
}

/// An 8-bit IP protocol number as a binary-string pattern.
pub fn proto(value: u64) -> String {
    format!("{value:08b}")
}

/// A 16-bit port as a binary-string pattern.
pub fn port(value: u64) -> String {
    format!("{value:016b}")
}

/// Well-known demux values.
pub mod values {
    /// EtherType: IPv4.
    pub const ETH_IPV4: u64 = 0x0800;
    /// EtherType: IPv6.
    pub const ETH_IPV6: u64 = 0x86DD;
    /// EtherType: 802.1Q VLAN.
    pub const ETH_VLAN: u64 = 0x8100;
    /// EtherType: 802.1ad QinQ outer tag.
    pub const ETH_QINQ: u64 = 0x88A8;
    /// EtherType: MPLS unicast.
    pub const ETH_MPLS: u64 = 0x8847;
    /// EtherType: ARP.
    pub const ETH_ARP: u64 = 0x0806;
    /// IP protocol: ICMP.
    pub const IP_ICMP: u64 = 1;
    /// IP protocol: TCP.
    pub const IP_TCP: u64 = 6;
    /// IP protocol: UDP.
    pub const IP_UDP: u64 = 17;
    /// IP protocol: GRE.
    pub const IP_GRE: u64 = 47;
    /// IP protocol: ICMPv6.
    pub const IP_ICMPV6: u64 = 58;
    /// UDP port: VXLAN.
    pub const PORT_VXLAN: u64 = 4789;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_helpers_have_fixed_widths() {
        assert_eq!(ethertype(values::ETH_IPV6), "1000011011011101");
        assert_eq!(ethertype(values::ETH_IPV6).len(), 16);
        assert_eq!(proto(values::IP_UDP), "00010001");
        assert_eq!(proto(values::IP_UDP).len(), 8);
        assert_eq!(port(values::PORT_VXLAN).len(), 16);
    }
}
