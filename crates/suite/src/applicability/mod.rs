//! parser-gen-style parsers for the four deployment scenarios of §7.2.
//!
//! The originals are the benchmark parse graphs of Gibb et al. (ANCS 2013),
//! which we cannot ship; these are reconstructions with the protocol mixes
//! that paper describes per scenario, sized to land near Table 2's state
//! counts (see DESIGN.md). The Table 2 experiment is a *self-comparison*:
//! each parser is checked equivalent to itself under arbitrary initial
//! stores, which both exercises scalability and proves acceptance is
//! independent of uninitialized headers.

pub mod protocols;
pub mod scenarios;

pub use scenarios::{datacenter, edge, enterprise, service_provider};

use crate::{Benchmark, Scale};

/// All four applicability benchmarks at the given scale.
pub fn all_benchmarks(scale: Scale) -> Vec<Benchmark> {
    vec![
        Benchmark::self_comparison("Edge", edge(scale), "parse_eth"),
        Benchmark::self_comparison("Service Provider", service_provider(scale), "parse_eth"),
        Benchmark::self_comparison("Datacenter", datacenter(scale), "parse_eth"),
        Benchmark::self_comparison("Enterprise", enterprise(scale), "parse_eth"),
    ]
}
