//! The mutated-parser negative suite: fault-injected variants of the
//! speculative-loop benchmark, generated with [`Automaton::redirect_case`].
//!
//! Each mutant redirects exactly one select case of the reference or
//! vectorized MPLS parser, breaking equivalence in a structurally distinct
//! way (a dropped loop case, a skipped repair, a severed accept path).
//! They are *expected-inequivalent* pairs: the checker must refute each
//! one with a confirmed witness, the witnesses land in the regression
//! corpus (`WITNESS_CORPUS.txt`, via the `table2` binary), and the
//! recorded packets are replayed by the differential harness on every
//! subsequent run — a mutant that silently re-equalizes is a regression.

use leapfrog_p4a::ast::{Automaton, Target};

use crate::utility::mpls;
use crate::Benchmark;

/// Applies `mutate` to the vectorized parser and pairs the result against
/// the pristine reference.
fn vectorized_mutant(name: &'static str, mutate: impl FnOnce(&mut Automaton)) -> Benchmark {
    let mut v = mpls::vectorized();
    mutate(&mut v);
    Benchmark::new(name, mpls::reference(), "q1", v, "q3", false)
}

/// Applies `mutate` to the reference parser and pairs the result against
/// the pristine vectorized parser.
fn reference_mutant(name: &'static str, mutate: impl FnOnce(&mut Automaton)) -> Benchmark {
    let mut r = mpls::reference();
    mutate(&mut r);
    Benchmark::new(name, r, "q1", mpls::vectorized(), "q3", false)
}

/// The negative suite: ≥4 single-case mutants of the speculative-loop
/// pair, every one expected `NotEquivalent` with a confirmed witness.
pub fn mutant_benchmarks() -> Vec<Benchmark> {
    vec![
        // q3's (open, open) loop case rejects: multi-label stacks die.
        vectorized_mutant("MPLS mutant: open-open loop rejects", |v| {
            let q3 = v.state_by_name("q3").unwrap();
            v.redirect_case(q3, 0, Target::Reject);
        }),
        // q3's (open, closed) exit case rejects: two-label stacks die.
        vectorized_mutant("MPLS mutant: open-closed exit rejects", |v| {
            let q3 = v.state_by_name("q3").unwrap();
            v.redirect_case(q3, 1, Target::Reject);
        }),
        // q3's (closed, _) case skips the q5 repair and reads a fresh UDP
        // header instead: the speculatively-read label is lost.
        vectorized_mutant("MPLS mutant: repair skipped", |v| {
            let q3 = v.state_by_name("q3").unwrap();
            let q4 = v.state_by_name("q4").unwrap();
            v.redirect_case(q3, 2, Target::State(q4));
        }),
        // q1's open-label case leaves the loop early: every label is
        // treated as bottom-of-stack.
        reference_mutant("MPLS mutant: loop exits early", |r| {
            let q1 = r.state_by_name("q1").unwrap();
            let q2 = r.state_by_name("q2").unwrap();
            r.redirect_case(q1, 0, Target::State(q2));
        }),
        // q1's bottom-of-stack case loops forever: accept is unreachable.
        reference_mutant("MPLS mutant: accept unreachable", |r| {
            let q1 = r.state_by_name("q1").unwrap();
            r.redirect_case(q1, 1, Target::State(q1));
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::WitnessCorpus;
    use crate::differential::check_cross_validate_and_record;
    use leapfrog::{Options, Outcome};

    #[test]
    fn every_mutant_is_refuted_recorded_and_replayed() {
        let mutants = mutant_benchmarks();
        assert!(mutants.len() >= 4, "the suite promises at least 4 mutants");
        let mut corpus = WitnessCorpus::new();
        for m in &mutants {
            // First run: refute with a confirmed witness and record it.
            let outcome = check_cross_validate_and_record(
                &m.left,
                m.left_start,
                &m.right,
                m.right_start,
                Options::default(),
                m.name,
                &mut corpus,
            )
            .unwrap_or_else(|e| panic!("{}: cross-validation failed: {e}", m.name));
            assert!(
                matches!(outcome, Outcome::NotEquivalent(_)),
                "{}: expected NotEquivalent",
                m.name
            );
            assert!(
                !corpus.entries(m.name).is_empty(),
                "{}: confirmed witness must land in the corpus",
                m.name
            );
            // Second run: the recorded packet replays as a regression
            // input and must still distinguish the pair.
            let report = corpus.exercise(m.name, &m.left, m.left_start, &m.right, m.right_start);
            assert!(
                report.distinguishing > 0,
                "{}: recorded packet must replay to a disagreement: {report:?}",
                m.name
            );
        }
        assert!(corpus.len() >= mutants.len());
    }

    #[test]
    fn mutants_differ_from_the_pristine_pair() {
        // Sanity: each mutant really changed transition structure.
        let pristine_ref = mpls::reference();
        let pristine_vec = mpls::vectorized();
        for m in mutant_benchmarks() {
            let left_same = format!("{:?}", m.left.state(m.left_start))
                == format!(
                    "{:?}",
                    pristine_ref.state(pristine_ref.state_by_name("q1").unwrap())
                );
            let right_same = format!("{:?}", m.right.state(m.right_start))
                == format!(
                    "{:?}",
                    pristine_vec.state(pristine_vec.state_by_name("q3").unwrap())
                );
            assert!(
                !(left_same && right_same),
                "{}: mutation must alter a start-state transition or a successor",
                m.name
            );
        }
    }
}
