//! The mutated-parser negative suite: fault-injected variants of the
//! speculative-loop benchmark *and* the applicability scenario parsers,
//! generated with [`Automaton::redirect_case`].
//!
//! Each mutant redirects exactly one select case, breaking equivalence in
//! a structurally distinct way (a dropped loop case, a skipped repair, a
//! severed accept path, a rejected tunnel/demux leg). They are
//! *expected-inequivalent* pairs: the checker must refute each one with a
//! confirmed witness, the witnesses land in the regression corpus
//! (`WITNESS_CORPUS.txt`, via the `table2` binary), and the recorded
//! packets are replayed by the differential harness on every subsequent
//! run — a mutant that silently re-equalizes is a regression.
//!
//! The applicability mutants matter beyond coverage: their
//! counterexamples traverse several protocol headers (Ethernet → VLAN /
//! MPLS → IP → transport), so the lifted witnesses are *long* and
//! exercise the leap-aware chunk-dropping pre-pass of the minimizer
//! before per-bit delta debugging takes over.

use leapfrog_p4a::ast::{Automaton, Target};

use crate::applicability;
use crate::utility::mpls;
use crate::{Benchmark, Scale};

/// Applies `mutate` to the vectorized parser and pairs the result against
/// the pristine reference.
fn vectorized_mutant(name: &'static str, mutate: impl FnOnce(&mut Automaton)) -> Benchmark {
    let mut v = mpls::vectorized();
    mutate(&mut v);
    Benchmark::new(name, mpls::reference(), "q1", v, "q3", false)
}

/// Applies `mutate` to the reference parser and pairs the result against
/// the pristine vectorized parser.
fn reference_mutant(name: &'static str, mutate: impl FnOnce(&mut Automaton)) -> Benchmark {
    let mut r = mpls::reference();
    mutate(&mut r);
    Benchmark::new(name, r, "q1", mpls::vectorized(), "q3", false)
}

/// Pairs a pristine applicability parser against a `mutate`d copy of
/// itself (both starting at `parse_eth`), expecting inequivalence.
fn applicability_mutant(
    name: &'static str,
    pristine: &Automaton,
    mutate: impl FnOnce(&mut Automaton),
) -> Benchmark {
    let mut m = pristine.clone();
    mutate(&mut m);
    Benchmark::new(name, pristine.clone(), "parse_eth", m, "parse_eth", false)
}

/// Single-case mutants of the deployment-scenario parsers. Always built at
/// the given scale; the default suite uses [`Scale::Small`] so the
/// negative checks stay cheap while the witnesses still cross three to
/// five headers.
pub fn applicability_mutants(scale: Scale) -> Vec<Benchmark> {
    let edge = applicability::edge(scale);
    let sp = applicability::service_provider(scale);
    let ent = applicability::enterprise(scale);
    vec![
        // Edge's parse_ipv4 demux: the GRE case (index 3) rejects, so
        // every tunneled packet (eth → ipv4 → gre → inner ipv4 → tcp/udp)
        // dies in the mutant.
        applicability_mutant("Edge mutant: GRE tunnel rejected", &edge, |m| {
            let q = m.state_by_name("parse_ipv4").unwrap();
            m.redirect_case(q, 3, Target::Reject);
        }),
        // Service Provider's first MPLS label: the bottom-of-stack case
        // (index 1) rejects, severing the whole MPLS → ipv4 path.
        applicability_mutant(
            "Service Provider mutant: MPLS bottom-of-stack rejected",
            &sp,
            |m| {
                let q = m.state_by_name("parse_mpls0").unwrap();
                m.redirect_case(q, 1, Target::Reject);
            },
        ),
        // Enterprise's outer VLAN demux: the ARP case (index 3) rejects,
        // so VLAN-tagged ARP frames die in the mutant.
        applicability_mutant("Enterprise mutant: VLAN ARP rejected", &ent, |m| {
            let q = m.state_by_name("parse_vlan").unwrap();
            m.redirect_case(q, 3, Target::Reject);
        }),
    ]
}

/// The negative suite: ≥4 single-case mutants of the speculative-loop
/// pair plus ≥3 single-case mutants of the applicability parsers (at
/// [`Scale::Small`]), every one expected `NotEquivalent` with a confirmed
/// witness.
pub fn mutant_benchmarks() -> Vec<Benchmark> {
    let mut out = vec![
        // q3's (open, open) loop case rejects: multi-label stacks die.
        vectorized_mutant("MPLS mutant: open-open loop rejects", |v| {
            let q3 = v.state_by_name("q3").unwrap();
            v.redirect_case(q3, 0, Target::Reject);
        }),
        // q3's (open, closed) exit case rejects: two-label stacks die.
        vectorized_mutant("MPLS mutant: open-closed exit rejects", |v| {
            let q3 = v.state_by_name("q3").unwrap();
            v.redirect_case(q3, 1, Target::Reject);
        }),
        // q3's (closed, _) case skips the q5 repair and reads a fresh UDP
        // header instead: the speculatively-read label is lost.
        vectorized_mutant("MPLS mutant: repair skipped", |v| {
            let q3 = v.state_by_name("q3").unwrap();
            let q4 = v.state_by_name("q4").unwrap();
            v.redirect_case(q3, 2, Target::State(q4));
        }),
        // q1's open-label case leaves the loop early: every label is
        // treated as bottom-of-stack.
        reference_mutant("MPLS mutant: loop exits early", |r| {
            let q1 = r.state_by_name("q1").unwrap();
            let q2 = r.state_by_name("q2").unwrap();
            r.redirect_case(q1, 0, Target::State(q2));
        }),
        // q1's bottom-of-stack case loops forever: accept is unreachable.
        reference_mutant("MPLS mutant: accept unreachable", |r| {
            let q1 = r.state_by_name("q1").unwrap();
            r.redirect_case(q1, 1, Target::State(q1));
        }),
    ];
    out.extend(applicability_mutants(Scale::Small));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::WitnessCorpus;
    use crate::differential::check_cross_validate_and_record;
    use leapfrog::{Options, Outcome};

    #[test]
    fn every_mutant_is_refuted_recorded_and_replayed() {
        let mutants = mutant_benchmarks();
        assert!(mutants.len() >= 4, "the suite promises at least 4 mutants");
        let mut corpus = WitnessCorpus::new();
        for m in &mutants {
            // First run: refute with a confirmed witness and record it.
            let outcome = check_cross_validate_and_record(
                &m.left,
                m.left_start,
                &m.right,
                m.right_start,
                Options::default(),
                m.name,
                &mut corpus,
            )
            .unwrap_or_else(|e| panic!("{}: cross-validation failed: {e}", m.name));
            assert!(
                matches!(outcome, Outcome::NotEquivalent(_)),
                "{}: expected NotEquivalent",
                m.name
            );
            assert!(
                !corpus.entries(m.name).is_empty(),
                "{}: confirmed witness must land in the corpus",
                m.name
            );
            // Second run: the recorded packet replays as a regression
            // input and must still distinguish the pair.
            let report = corpus.exercise(m.name, &m.left, m.left_start, &m.right, m.right_start);
            assert!(
                report.distinguishing > 0,
                "{}: recorded packet must replay to a disagreement: {report:?}",
                m.name
            );
        }
        assert!(corpus.len() >= mutants.len());
    }

    #[test]
    fn applicability_mutants_yield_long_confirmed_witnesses() {
        // The point of mutating the scenario parsers: their refutation
        // packets cross several protocol headers, so the leap-aware
        // minimizer works on genuinely long, multi-chunk witnesses (an
        // Ethernet header alone is 112 bits).
        let mutants = applicability_mutants(Scale::Small);
        assert!(mutants.len() >= 3, "≥3 applicability mutants promised");
        for m in &mutants {
            let mut checker = leapfrog::Checker::new(
                &m.left,
                m.left_start,
                &m.right,
                m.right_start,
                Options::default(),
            );
            let outcome = checker.run();
            let w = outcome
                .witness()
                .unwrap_or_else(|| panic!("{}: witness must confirm", m.name));
            assert!(w.check(), "{}: witness must replay", m.name);
            assert!(
                w.packet.len() > 112,
                "{}: the distinguishing packet must span multiple headers, got {} bits",
                m.name,
                w.packet.len()
            );
            assert!(
                w.original_bits >= w.packet.len(),
                "{}: minimization cannot grow the packet",
                m.name
            );
        }
    }

    #[test]
    fn mutants_differ_from_the_pristine_pair() {
        // Sanity: each mutant really changed transition structure.
        let pristine_ref = mpls::reference();
        let pristine_vec = mpls::vectorized();
        for m in mutant_benchmarks() {
            let left_same = format!("{:?}", m.left.state(m.left_start))
                == format!(
                    "{:?}",
                    pristine_ref.state(pristine_ref.state_by_name("q1").unwrap())
                );
            let right_same = format!("{:?}", m.right.state(m.right_start))
                == format!(
                    "{:?}",
                    pristine_vec.state(pristine_vec.state_by_name("q3").unwrap())
                );
            assert!(
                !(left_same && right_same),
                "{}: mutation must alter a start-state transition or a successor",
                m.name
            );
        }
    }
}
