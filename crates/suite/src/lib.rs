//! The Leapfrog evaluation suite: every parser from the paper's case
//! studies (§7, Table 2), packet workload generators, Table 2 metrics, and
//! differential-testing helpers.
//!
//! * [`utility`] — the six utility case studies: state rearrangement
//!   (Fig. 7), variable-length IP options parsing (Figs. 11/12), header
//!   initialization (Fig. 9), the speculative MPLS loop (Fig. 1), and the
//!   sloppy/strict Ethernet parsers used by the external-filtering and
//!   relational-verification studies (Fig. 10).
//! * [`applicability`] — parser-gen-style parsers for the four deployment
//!   scenarios (Edge, Service Provider, Datacenter, Enterprise). The
//!   originals are research artifacts; these are reconstructions with the
//!   protocol mixes described in the parser-gen paper, sized to match
//!   Table 2 (see DESIGN.md for the substitution argument).
//! * [`metrics`] — the States / Branched-bits / Total-bits columns.
//! * [`workload`] — random valid/invalid packet generation per parser.
//! * [`differential`] — bounded brute-force and randomized equivalence
//!   oracles used to cross-validate the symbolic checker.
//! * [`corpus`] — the witness regression corpus: confirmed minimized
//!   counterexample packets recorded per benchmark and re-exercised by
//!   the differential harness on every run.
//! * [`mutants`] — the mutated-parser negative suite: fault-injected
//!   variants of the speculative-loop pair (via
//!   `Automaton::redirect_case`) that must be refuted with confirmed
//!   witnesses, feeding the corpus.

pub mod applicability;
pub mod corpus;
pub mod differential;
pub mod metrics;
pub mod mutants;
pub mod utility;
pub mod workload;

use leapfrog_p4a::ast::{Automaton, StateId};

/// A named benchmark: two parsers and their start states.
pub struct Benchmark {
    /// Table 2 row name.
    pub name: &'static str,
    /// The left parser.
    pub left: Automaton,
    /// Start state of the left parser.
    pub left_start: StateId,
    /// The right parser.
    pub right: Automaton,
    /// Start state of the right parser.
    pub right_start: StateId,
    /// Whether the two parsers are expected to be language-equivalent
    /// under the default (standard) initial relation.
    pub expect_equivalent: bool,
}

impl Benchmark {
    /// Builds a benchmark from two parsers and start-state names.
    pub fn new(
        name: &'static str,
        left: Automaton,
        left_start: &str,
        right: Automaton,
        right_start: &str,
        expect_equivalent: bool,
    ) -> Benchmark {
        let left_start = left
            .state_by_name(left_start)
            .expect("unknown left start state");
        let right_start = right
            .state_by_name(right_start)
            .expect("unknown right start state");
        Benchmark {
            name,
            left,
            left_start,
            right,
            right_start,
            expect_equivalent,
        }
    }

    /// A self-comparison benchmark (the applicability studies): the parser
    /// against a copy of itself, proving acceptance is store-independent.
    pub fn self_comparison(name: &'static str, aut: Automaton, start: &str) -> Benchmark {
        Benchmark::new(name, aut.clone(), start, aut, start, true)
    }

    /// Table 2 metrics for this benchmark.
    pub fn metrics(&self) -> metrics::Table2Metrics {
        metrics::Table2Metrics::for_pair(&self.left, &self.right)
    }
}

/// All standard Table 2 rows answerable as plain language-equivalence
/// queries: the four utility rows followed by the applicability
/// self-comparisons (the relational rows and translation validation need
/// dedicated runners and are not included). This is the row set the
/// `table2` binary measures, `check_batch` smoke jobs drive, and the
/// `leapfrogd` wire server resolves named requests against.
pub fn standard_benchmarks(scale: Scale) -> Vec<Benchmark> {
    let mut rows = vec![
        utility::state_rearrangement::state_rearrangement_benchmark(),
        utility::ip_options::ip_options_benchmark(scale),
        utility::vlan_init::vlan_init_benchmark(),
        utility::mpls::mpls_benchmark(),
    ];
    rows.extend(applicability::all_benchmarks(scale));
    rows
}

/// The scale knob for the applicability parsers (`LEAPFROG_SCALE`):
/// `full` reproduces Table 2 sizes, `medium`/`small` trim repetition counts
/// so the harness finishes quickly on a laptop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table 2 sizes.
    Full,
    /// Reduced MPLS/option chains.
    Medium,
    /// Minimal chains, for CI.
    Small,
}

impl Scale {
    /// Reads `LEAPFROG_SCALE` (default [`Scale::Small`] — see EXPERIMENTS.md
    /// for full-scale runs).
    pub fn from_env() -> Scale {
        match std::env::var("LEAPFROG_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        }
    }
}
