//! The Table 2 size metrics: States, Branched bits, Total bits.

use leapfrog_p4a::ast::Automaton;

/// The three size columns of Table 2 for a parser pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Metrics {
    /// Total states across both parsers.
    pub states: usize,
    /// Total bits appearing in `select` scrutinees across both parsers
    /// ("an optimal verification algorithm would need to represent 2^B
    /// states").
    pub branched_bits: usize,
    /// Total header bits across both parsers ("an explicit state space
    /// would contain 2^T states").
    pub total_bits: usize,
}

impl Table2Metrics {
    /// Computes the metrics for a pair of parsers.
    pub fn for_pair(left: &Automaton, right: &Automaton) -> Table2Metrics {
        Table2Metrics {
            states: left.num_states() + right.num_states(),
            branched_bits: left.branched_bits() + right.branched_bits(),
            total_bits: left.total_header_bits() + right.total_header_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::surface::parse;

    #[test]
    fn counts_states_branches_and_headers() {
        let a = parse(
            "parser A { state s { extract(h, 8);
               select(h[0:3]) { 0b1111 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse("parser B { state s { extract(g, 4); goto accept } }").unwrap();
        let m = Table2Metrics::for_pair(&a, &b);
        assert_eq!(m.states, 2);
        assert_eq!(m.branched_bits, 4);
        assert_eq!(m.total_bits, 12);
    }
}
