//! The variable-length parsing case study (paper, Figures 11/12 and §7.1):
//! a generic IP-options parser versus a parser with a specialized state
//! for the Timestamp option (type 0x44, length 6).
//!
//! Each option starts with a type byte `T` and a length byte `L`; lengths
//! 1–6 select a variant state that reads `8·L` bits into the option value
//! `v` (via a width-matched scratch header, since header sizes are fixed),
//! and `(T, L) ∈ {(0,0), (1,0)}` ends the option list. The specialized
//! parser adds a state that splits the 48-bit Timestamp payload into
//! `ptr`/`overflow`/`flag`/`time` fields; it consumes exactly the same 48
//! bits, so the two parsers accept the same packets.
//!
//! The number of option slots is a parameter: Table 2's row uses two slots
//! (30 states across both parsers).

use leapfrog_p4a::ast::{Automaton, Expr, Pattern, Target, Transition};
use leapfrog_p4a::builder::Builder;

use crate::{Benchmark, Scale};

const VALUE_BITS: usize = 48;

/// Builds the option-list parser with `n` option slots; when `timestamp`
/// is set, the specialized Timestamp state is added (Figure 12), otherwise
/// the parser is fully generic (Figure 11).
pub fn options_parser(n: usize, timestamp: bool) -> Automaton {
    assert!(n >= 1, "at least one option slot");
    let mut b = Builder::new();
    // Scratch headers, one per variant width (the paper's figure reuses a
    // single `scratch`; header sizes are fixed in the model, so we split).
    let scratch: Vec<_> = (1..=5)
        .map(|k| b.header(format!("scratch{}", 8 * k), 8 * k))
        .collect();
    for i in 0..n {
        b.header(format!("T{i}"), 8);
        b.header(format!("L{i}"), 8);
        b.header(format!("v{i}"), VALUE_BITS);
        if timestamp {
            b.header(format!("ptr{i}"), 8);
            b.header(format!("over{i}"), 4);
            b.header(format!("flag{i}"), 4);
            b.header(format!("time{i}"), 32);
        }
    }
    for i in 0..n {
        let parse_i = b.state(format!("parse_{i}"));
        let next: Target = if i + 1 < n {
            Target::State(b.state(format!("parse_{}", i + 1)))
        } else {
            Target::Accept
        };
        let ti = b.header(format!("T{i}"), 8);
        let li = b.header(format!("L{i}"), 8);
        let vi = b.header(format!("v{i}"), VALUE_BITS);

        // Variant states for lengths 1..=6.
        let mut variant_targets = Vec::new();
        for k in 1..=6usize {
            let vstate = b.state(format!("parse_v{i}{k}"));
            variant_targets.push(vstate);
            if k == 6 {
                b.define(vstate, vec![b.extract(vi)], b.goto(next));
            } else {
                let sc = scratch[k - 1];
                // v_i := scratch ++ v_i[8k : 47]  (keep the old suffix).
                b.define(
                    vstate,
                    vec![
                        b.extract(sc),
                        b.assign(
                            vi,
                            Expr::concat(
                                Expr::hdr(sc),
                                Expr::slice(Expr::hdr(vi), 8 * k, VALUE_BITS - 1),
                            ),
                        ),
                    ],
                    b.goto(next),
                );
            }
        }

        // The T/L dispatch state.
        let byte = |v: u64| Pattern::Exact(leapfrog_bitvec::BitVec::from_u64(v, 8));
        let mut cases = vec![
            (vec![byte(0x00), byte(0x00)], Target::Accept),
            (vec![byte(0x01), byte(0x00)], Target::Accept),
        ];
        if timestamp {
            let stamp = b.state(format!("parse_stamp{i}"));
            let ptr = b.header(format!("ptr{i}"), 8);
            let over = b.header(format!("over{i}"), 4);
            let flag = b.header(format!("flag{i}"), 4);
            let time = b.header(format!("time{i}"), 32);
            b.define(
                stamp,
                vec![
                    b.extract(ptr),
                    b.extract(over),
                    b.extract(flag),
                    b.extract(time),
                ],
                b.goto(next),
            );
            cases.push((vec![byte(0x44), byte(0x06)], Target::State(stamp)));
        }
        for (k, vstate) in variant_targets.iter().enumerate() {
            cases.push((
                vec![Pattern::Wildcard, byte(k as u64 + 1)],
                Target::State(*vstate),
            ));
        }
        let trans = Transition::Select {
            exprs: vec![Expr::hdr(ti), Expr::hdr(li)],
            cases: cases
                .into_iter()
                .map(|(pats, target)| leapfrog_p4a::ast::Case { pats, target })
                .collect(),
        };
        b.define(parse_i, vec![b.extract(ti), b.extract(li)], trans);
    }
    b.build().expect("IP options parser is well-formed")
}

/// The generic parser of Figure 11 (parameterized option count).
pub fn generic(n: usize) -> Automaton {
    options_parser(n, false)
}

/// The specialized Timestamp parser of Figure 12.
pub fn specialized(n: usize) -> Automaton {
    options_parser(n, true)
}

/// Option slots per scale: Table 2's row has 30 states across both
/// parsers, which corresponds to two slots.
pub fn slots_for(scale: Scale) -> usize {
    match scale {
        Scale::Full | Scale::Medium => 2,
        Scale::Small => 1,
    }
}

/// The Table 2 "Variable-length parsing" benchmark.
pub fn ip_options_benchmark(scale: Scale) -> Benchmark {
    let n = slots_for(scale);
    Benchmark::new(
        "Variable-length parsing",
        generic(n),
        "parse_0",
        specialized(n),
        "parse_0",
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::agree_on_words;
    use leapfrog_bitvec::BitVec;
    use leapfrog_p4a::semantics::Config;

    fn option(ty: u64, len: u64, data_bits: usize) -> BitVec {
        let mut o = BitVec::from_u64(ty, 8);
        o.extend(&BitVec::from_u64(len, 8));
        o.extend(&BitVec::random_with(data_bits, || 0x5a5a));
        o
    }

    #[test]
    fn generic_accepts_wellformed_option_lists() {
        let aut = generic(2);
        let q = aut.state_by_name("parse_0").unwrap();
        // End-of-list immediately.
        assert!(Config::initial(&aut, q).accepts(&aut, &option(0, 0, 0)));
        // One 3-byte option, then end-of-list.
        let pkt = option(0x07, 3, 24).concat(&option(0x01, 0, 0));
        assert!(Config::initial(&aut, q).accepts(&aut, &pkt));
        // A 6-byte option fills the slot, then end-of-list.
        let pkt = option(0x07, 6, 48).concat(&option(0x00, 0, 0));
        assert!(Config::initial(&aut, q).accepts(&aut, &pkt));
        // Length 7 is invalid.
        assert!(!Config::initial(&aut, q).accepts(&aut, &option(0x07, 7, 56)));
    }

    #[test]
    fn specialized_consumes_timestamp_like_generic() {
        let g = generic(2);
        let s = specialized(2);
        let qg = g.state_by_name("parse_0").unwrap();
        let qs = s.state_by_name("parse_0").unwrap();
        let pkt = option(0x44, 6, 48).concat(&option(0x00, 0, 0));
        assert!(Config::initial(&g, qg).accepts(&g, &pkt));
        assert!(Config::initial(&s, qs).accepts(&s, &pkt));
        // The specialized parser actually split the fields.
        let end = Config::initial(&s, qs).step_word(&s, &pkt);
        assert!(end.is_accepting());
        let ptr0 = s.header_by_name("ptr0").unwrap();
        assert_eq!(end.store.get(ptr0).len(), 8);
    }

    #[test]
    fn parsers_agree_on_random_words() {
        let bench = ip_options_benchmark(Scale::Small);
        assert!(agree_on_words(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
            &[0, 8, 16, 24, 40, 48, 64, 72, 80, 96, 112],
            150,
            0x0b7,
        ));
        let bench2 = ip_options_benchmark(Scale::Medium);
        assert!(agree_on_words(
            &bench2.left,
            bench2.left_start,
            &bench2.right,
            bench2.right_start,
            &[16, 32, 48, 80, 96, 128, 160],
            100,
            0x0b8,
        ));
    }

    #[test]
    fn metrics_match_table_at_two_slots() {
        let m = ip_options_benchmark(Scale::Medium).metrics();
        assert_eq!(m.states, 30); // Table 2: 30
        assert_eq!(m.branched_bits, 64); // 16 bits per dispatch × 4 dispatch states
    }
}
