//! The speculative-loop case study (paper, Figure 1 and §7.1):
//! a reference MPLS/UDP parser versus a vectorized parser that
//! speculatively extracts two MPLS labels per iteration.

use leapfrog_p4a::ast::{Automaton, Expr, Pattern, Target};
use leapfrog_p4a::builder::Builder;

use crate::Benchmark;

/// The reference parser (Figure 1, left): `q1` reads one 32-bit label at a
/// time until the bottom-of-stack bit (bit 23) is set, then `q2` reads a
/// 64-bit UDP header.
pub fn reference() -> Automaton {
    let mut b = Builder::new();
    let mpls = b.header("mpls", 32);
    let udp = b.header("udp", 64);
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    b.define(
        q1,
        vec![b.extract(mpls)],
        b.select(
            vec![Expr::slice(Expr::hdr(mpls), 23, 23)],
            vec![
                (vec![Pattern::exact_str("0")], Target::State(q1)),
                (vec![Pattern::exact_str("1")], Target::State(q2)),
            ],
        ),
    );
    b.define(q2, vec![b.extract(udp)], b.goto(Target::Accept));
    b.build().expect("reference MPLS parser is well-formed")
}

/// The vectorized parser (Figure 1, right): `q3` speculatively extracts
/// two labels. If the first label closes the stack, the second label was
/// really the first half of the UDP header; `q5` repairs by reading 32
/// more bits and reassembling `udp := new ++ tmp`.
pub fn vectorized() -> Automaton {
    let mut b = Builder::new();
    let old = b.header("old", 32);
    let new = b.header("new", 32);
    let tmp = b.header("tmp", 32);
    let udp = b.header("udp", 64);
    let q3 = b.state("q3");
    let q4 = b.state("q4");
    let q5 = b.state("q5");
    b.define(
        q3,
        vec![b.extract(old), b.extract(new)],
        b.select(
            vec![
                Expr::slice(Expr::hdr(old), 23, 23),
                Expr::slice(Expr::hdr(new), 23, 23),
            ],
            vec![
                (
                    vec![Pattern::exact_str("0"), Pattern::exact_str("0")],
                    Target::State(q3),
                ),
                (
                    vec![Pattern::exact_str("0"), Pattern::exact_str("1")],
                    Target::State(q4),
                ),
                (
                    vec![Pattern::exact_str("1"), Pattern::Wildcard],
                    Target::State(q5),
                ),
            ],
        ),
    );
    b.define(q4, vec![b.extract(udp)], b.goto(Target::Accept));
    b.define(
        q5,
        vec![
            b.extract(tmp),
            b.assign(udp, Expr::concat(Expr::hdr(new), Expr::hdr(tmp))),
        ],
        b.goto(Target::Accept),
    );
    b.build().expect("vectorized MPLS parser is well-formed")
}

/// The Table 2 "Speculative loop" benchmark.
pub fn mpls_benchmark() -> Benchmark {
    Benchmark::new(
        "Speculative loop",
        reference(),
        "q1",
        vectorized(),
        "q3",
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::agree_on_words;
    use leapfrog_bitvec::BitVec;
    use leapfrog_p4a::semantics::Config;

    fn label(bottom: bool, fill: u64) -> BitVec {
        let mut l = BitVec::random_with(32, || fill);
        l.set(23, bottom);
        l
    }

    #[test]
    fn reference_and_vectorized_agree_on_mpls_packets() {
        let r = reference();
        let v = vectorized();
        let q1 = r.state_by_name("q1").unwrap();
        let q3 = v.state_by_name("q3").unwrap();
        for stack in 1..5usize {
            let mut pkt = BitVec::new();
            for i in 0..stack {
                pkt.extend(&label(i == stack - 1, 0xDEADBEEF ^ i as u64));
            }
            pkt.extend(&BitVec::random_with(64, || 0x1234));
            assert!(
                Config::initial(&r, q1).accepts(&r, &pkt),
                "ref rejects stack {stack}"
            );
            assert!(
                Config::initial(&v, q3).accepts(&v, &pkt),
                "vec rejects stack {stack}"
            );
        }
    }

    #[test]
    fn parsers_agree_on_random_words() {
        let bench = mpls_benchmark();
        assert!(agree_on_words(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
            &[0, 1, 31, 32, 64, 95, 96, 97, 128, 160, 192, 224, 256],
            200,
            0xfeed,
        ));
    }

    #[test]
    fn metrics_match_figure() {
        let bench = mpls_benchmark();
        let m = bench.metrics();
        assert_eq!(m.states, 5); // q1, q2 + q3, q4, q5 (Table 2: 5)
        assert_eq!(m.branched_bits, 3); // 1 (ref) + 2 (vectorized)
        assert_eq!(m.total_bits, 96 + 160);
    }
}
