//! The state-rearrangement case study (paper, Figure 7 and §7.1): a
//! reference parser for a stylized IP + TCP/UDP protocol versus an
//! optimized parser that extracts the common 32-bit prefix before
//! branching.

use leapfrog_p4a::ast::{Automaton, Expr, Target};
use leapfrog_p4a::builder::Builder;

use crate::Benchmark;

/// The reference parser (Figure 7, left): 64 bits of IP, then either
/// 32 bits of UDP or 64 bits of TCP depending on `ip[40:43]`.
pub fn reference() -> Automaton {
    let mut b = Builder::new();
    let ip = b.header("ip", 64);
    let udp = b.header("udp", 32);
    let tcp = b.header("tcp", 64);
    let parse_ip = b.state("parse_ip");
    let parse_udp = b.state("parse_udp");
    let parse_tcp = b.state("parse_tcp");
    b.define(
        parse_ip,
        vec![b.extract(ip)],
        b.select1(
            Expr::slice(Expr::hdr(ip), 40, 43),
            vec![
                ("0001", Target::State(parse_udp)),
                ("0000", Target::State(parse_tcp)),
            ],
        ),
    );
    b.define(parse_udp, vec![b.extract(udp)], b.goto(Target::Accept));
    b.define(parse_tcp, vec![b.extract(tcp)], b.goto(Target::Accept));
    b.build().expect("reference IP parser is well-formed")
}

/// The combined parser (Figure 7, right): extracts IP plus the shared
/// 32-bit prefix, then either accepts (UDP) or reads the 32-bit suffix
/// (TCP).
pub fn combined() -> Automaton {
    let mut b = Builder::new();
    let ip = b.header("ip", 64);
    let pref = b.header("pref", 32);
    let suff = b.header("suff", 32);
    let parse_combined = b.state("parse_combined");
    let parse_suff = b.state("parse_suff");
    b.define(
        parse_combined,
        vec![b.extract(ip), b.extract(pref)],
        b.select1(
            Expr::slice(Expr::hdr(ip), 40, 43),
            vec![
                ("0001", Target::Accept),
                ("0000", Target::State(parse_suff)),
            ],
        ),
    );
    b.define(parse_suff, vec![b.extract(suff)], b.goto(Target::Accept));
    b.build().expect("combined IP parser is well-formed")
}

/// The Table 2 "State Rearrangement" benchmark.
pub fn state_rearrangement_benchmark() -> Benchmark {
    Benchmark::new(
        "State Rearrangement",
        reference(),
        "parse_ip",
        combined(),
        "parse_combined",
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::agree_on_words;
    use leapfrog_bitvec::BitVec;
    use leapfrog_p4a::semantics::Config;

    fn ip_packet(tag: &str, payload_bits: usize) -> BitVec {
        let mut pkt = BitVec::random_with(64, || 0xabcdef);
        let tag: BitVec = tag.parse().unwrap();
        for i in 0..4 {
            pkt.set(40 + i, tag.get(i).unwrap());
        }
        pkt.concat(&BitVec::random_with(payload_bits, || 0x1111))
    }

    #[test]
    fn udp_and_tcp_paths_agree() {
        let r = reference();
        let c = combined();
        let qr = r.state_by_name("parse_ip").unwrap();
        let qc = c.state_by_name("parse_combined").unwrap();
        // UDP: tag 0001, 32 payload bits.
        let udp = ip_packet("0001", 32);
        assert!(Config::initial(&r, qr).accepts(&r, &udp));
        assert!(Config::initial(&c, qc).accepts(&c, &udp));
        // TCP: tag 0000, 64 payload bits.
        let tcp = ip_packet("0000", 64);
        assert!(Config::initial(&r, qr).accepts(&r, &tcp));
        assert!(Config::initial(&c, qc).accepts(&c, &tcp));
        // Unknown tag: rejected by both.
        let bad = ip_packet("1000", 32);
        assert!(!Config::initial(&r, qr).accepts(&r, &bad));
        assert!(!Config::initial(&c, qc).accepts(&c, &bad));
    }

    #[test]
    fn parsers_agree_on_random_words() {
        let bench = state_rearrangement_benchmark();
        assert!(agree_on_words(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
            &[0, 32, 63, 64, 95, 96, 97, 127, 128, 129, 160],
            150,
            0x5eed,
        ));
    }

    #[test]
    fn metrics_match_table() {
        let m = state_rearrangement_benchmark().metrics();
        assert_eq!(m.states, 5); // Table 2: 5
        assert_eq!(m.branched_bits, 8); // Table 2: 8 (4 bits per parser)
    }
}
