//! The six utility case studies of §7.1.

pub mod ip_options;
pub mod mpls;
pub mod sloppy_strict;
pub mod state_rearrangement;
pub mod vlan_init;

pub use ip_options::ip_options_benchmark;
pub use mpls::mpls_benchmark;
pub use sloppy_strict::{sloppy_strict_parsers, SLOPPY_START, STRICT_START};
pub use state_rearrangement::state_rearrangement_benchmark;
pub use vlan_init::vlan_init_benchmark;
