//! The sloppy/strict Ethernet parsers (paper, Figure 10), used by two case
//! studies (§7.1):
//!
//! * **External filtering**: the lenient parser treats any non-IPv4
//!   EtherType as IPv6; the strict parser rejects unknown EtherTypes. They
//!   are *not* language-equivalent, but become equivalent *modulo an
//!   external filter* that drops packets whose EtherType is neither IPv4
//!   nor IPv6 — posed by replacing the initial relation.
//! * **Relational verification**: whenever both parsers accept, their
//!   stores correspond.

use leapfrog_logic::confrel::{BitExpr, ConfRel, Pure, Side};
use leapfrog_logic::templates::{Template, TemplatePair};
use leapfrog_p4a::ast::{Automaton, Expr, Target};
use leapfrog_p4a::builder::Builder;
use leapfrog_p4a::sum::Sum;

/// Start state of the sloppy parser.
pub const SLOPPY_START: &str = "parse_eth";
/// Start state of the strict parser.
pub const STRICT_START: &str = "parse_eth";

/// EtherType for IPv6 in the paper's figure.
pub const ETHERTYPE_IPV6: &str = "1000011011011101"; // 0x86dd
/// EtherType for IPv4 in the paper's figure (0x8600, as printed there).
pub const ETHERTYPE_IPV4: &str = "1000011000000000"; // 0x8600

fn eth_parser(strict: bool) -> Automaton {
    let mut b = Builder::new();
    let ether = b.header("ether", 112);
    let ipv6 = b.header("ipv6", 288);
    let ipv4 = b.header("ipv4", 128);
    let parse_eth = b.state("parse_eth");
    let parse_ipv6 = b.state("parse_ipv6");
    let parse_ipv4 = b.state("parse_ipv4");
    let mut cases = vec![
        (ETHERTYPE_IPV6, Target::State(parse_ipv6)),
        (ETHERTYPE_IPV4, Target::State(parse_ipv4)),
    ];
    if strict {
        cases.push(("_", Target::Reject));
    } else {
        // Lenient: anything else is assumed to be IPv6.
        cases.push(("_", Target::State(parse_ipv6)));
    }
    b.define(
        parse_eth,
        vec![b.extract(ether)],
        b.select1(Expr::slice(Expr::hdr(ether), 96, 111), cases),
    );
    b.define(parse_ipv6, vec![b.extract(ipv6)], b.goto(Target::Accept));
    b.define(parse_ipv4, vec![b.extract(ipv4)], b.goto(Target::Accept));
    b.build().expect("Ethernet parser is well-formed")
}

/// The lenient parser: unknown EtherTypes are parsed as IPv6.
pub fn sloppy() -> Automaton {
    eth_parser(false)
}

/// The strict parser: unknown EtherTypes are rejected.
pub fn strict() -> Automaton {
    eth_parser(true)
}

/// Both parsers, `(sloppy, strict)`.
pub fn sloppy_strict_parsers() -> (Automaton, Automaton) {
    (sloppy(), strict())
}

/// The *external filtering* initial relation (§7.1), expressed over the
/// sum automaton: for configuration pairs that disagree on acceptance, the
/// sloppy side's EtherType must be one the filter would drop (neither IPv4
/// nor IPv6); equally-accepting pairs are unconstrained, and accept/accept
/// pairs additionally pin the EtherType to a filtered-in value.
///
/// `reach` must be the reachable template pairs of the sum; the relation
/// produced replaces the standard initial relation via
/// [`leapfrog::Checker::replace_init`].
pub fn external_filter_init(sum: &Sum, reach: &[TemplatePair]) -> Vec<ConfRel> {
    let aut = &sum.automaton;
    let ether_l = aut.header_by_name("l.ether").expect("sloppy ether header");
    let ipv6: leapfrog_bitvec::BitVec = ETHERTYPE_IPV6.parse().unwrap();
    let ipv4: leapfrog_bitvec::BitVec = ETHERTYPE_IPV4.parse().unwrap();
    let ether_type = BitExpr::Slice(Box::new(BitExpr::Hdr(Side::Left, ether_l)), 96, 16);
    let filtered_in = Pure::or(
        Pure::eq(ether_type.clone(), BitExpr::Lit(ipv6)),
        Pure::eq(ether_type, BitExpr::Lit(ipv4)),
    );
    let mut out = Vec::new();
    for p in reach {
        if p.left.is_accepting() != p.right.is_accepting() {
            // A disagreement is tolerable only when the filter drops the
            // packet: the EtherType must NOT be IPv4/IPv6.
            out.push(ConfRel {
                guard: *p,
                vars: vec![],
                phi: Pure::not(filtered_in.clone()),
            });
        }
    }
    out
}

/// The *relational verification* initial relation (§7.1): when both
/// parsers accept, their stores correspond — the Ethernet headers are
/// equal, and the protocol headers match on the path both parsers took.
pub fn store_correspondence_init(sum: &Sum) -> Vec<ConfRel> {
    let aut = &sum.automaton;
    let h = |n: &str| aut.header_by_name(n).unwrap();
    let (ether_l, ether_r) = (h("l.ether"), h("r.ether"));
    let (v6_l, v6_r) = (h("l.ipv6"), h("r.ipv6"));
    let (v4_l, v4_r) = (h("l.ipv4"), h("r.ipv4"));
    let ipv6: leapfrog_bitvec::BitVec = ETHERTYPE_IPV6.parse().unwrap();
    let ipv4: leapfrog_bitvec::BitVec = ETHERTYPE_IPV4.parse().unwrap();
    let ether_type = BitExpr::Slice(Box::new(BitExpr::Hdr(Side::Left, ether_l)), 96, 16);
    let phi = Pure::and_all([
        Pure::eq(
            BitExpr::Hdr(Side::Left, ether_l),
            BitExpr::Hdr(Side::Right, ether_r),
        ),
        Pure::implies(
            Pure::eq(ether_type.clone(), BitExpr::Lit(ipv6)),
            Pure::eq(
                BitExpr::Hdr(Side::Left, v6_l),
                BitExpr::Hdr(Side::Right, v6_r),
            ),
        ),
        Pure::implies(
            Pure::eq(ether_type, BitExpr::Lit(ipv4)),
            Pure::eq(
                BitExpr::Hdr(Side::Left, v4_l),
                BitExpr::Hdr(Side::Right, v4_r),
            ),
        ),
    ]);
    vec![ConfRel {
        guard: TemplatePair::new(Template::accept(), Template::accept()),
        vars: vec![],
        phi,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::find_disagreement;
    use leapfrog_bitvec::BitVec;
    use leapfrog_p4a::semantics::Config;

    fn packet(ethertype: &str, rest: usize) -> BitVec {
        let mut pkt = BitVec::random_with(96, || 0x77);
        let ty: BitVec = ethertype.parse().unwrap();
        pkt.extend(&ty);
        pkt.extend(&BitVec::random_with(rest, || 0x31));
        pkt
    }

    #[test]
    fn parsers_differ_exactly_on_unknown_ethertypes() {
        let (s, t) = sloppy_strict_parsers();
        let qs = s.state_by_name(SLOPPY_START).unwrap();
        let qt = t.state_by_name(STRICT_START).unwrap();
        // Known types agree.
        for (ty, rest) in [(ETHERTYPE_IPV6, 288), (ETHERTYPE_IPV4, 128)] {
            let p = packet(ty, rest);
            assert_eq!(
                Config::initial(&s, qs).accepts(&s, &p),
                Config::initial(&t, qt).accepts(&t, &p)
            );
        }
        // Unknown type parsed as IPv6 by sloppy, rejected by strict.
        let junk = packet("0000000000000001", 288);
        assert!(Config::initial(&s, qs).accepts(&s, &junk));
        assert!(!Config::initial(&t, qt).accepts(&t, &junk));
    }

    #[test]
    fn random_testing_finds_the_disagreement() {
        let (s, t) = sloppy_strict_parsers();
        let qs = s.state_by_name(SLOPPY_START).unwrap();
        let qt = t.state_by_name(STRICT_START).unwrap();
        let w = find_disagreement(&s, qs, &t, qt, &[112 + 288], 200, 42);
        assert!(w.is_some(), "sloppy and strict must disagree somewhere");
    }
}
