//! The header-initialization case study (paper, Figure 9 and §7.1): an
//! Ethernet parser with an optional VLAN tag that *defaults* the tag when
//! absent. Self-comparison with unconstrained initial stores proves that
//! acceptance never depends on an uninitialized header.

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, Expr, Target};
use leapfrog_p4a::builder::Builder;

use crate::Benchmark;

/// The Figure 9 parser: Ethernet (112 bits), optionally a 32-bit VLAN tag
/// (selected on the first Ethernet bit, as in the paper's stylized
/// figure), IP (160), UDP (64); the final select rejects VLAN tags whose
/// first nibble is `1111`. When the tag is absent it is defaulted to zero,
/// so the branch never reads uninitialized data.
pub fn vlan_parser() -> Automaton {
    let mut b = Builder::new();
    let ether = b.header("ether", 112);
    let vlan = b.header("vlan", 32);
    let ip = b.header("ip", 160);
    let udp = b.header("udp", 64);
    let parse_eth = b.state("parse_eth");
    let default_vlan = b.state("default_vlan");
    let parse_vlan = b.state("parse_vlan");
    let parse_ip = b.state("parse_ip");
    let parse_udp = b.state("parse_udp");
    b.define(
        parse_eth,
        vec![b.extract(ether)],
        b.select1(
            Expr::slice(Expr::hdr(ether), 0, 0),
            vec![
                ("0", Target::State(default_vlan)),
                ("1", Target::State(parse_vlan)),
            ],
        ),
    );
    b.define(
        default_vlan,
        vec![b.assign(vlan, Expr::lit(BitVec::zeros(32))), b.extract(ip)],
        b.goto(Target::State(parse_udp)),
    );
    b.define(
        parse_vlan,
        vec![b.extract(vlan)],
        b.goto(Target::State(parse_ip)),
    );
    b.define(
        parse_ip,
        vec![b.extract(ip)],
        b.goto(Target::State(parse_udp)),
    );
    b.define(
        parse_udp,
        vec![b.extract(udp)],
        b.select1(
            Expr::slice(Expr::hdr(vlan), 0, 3),
            vec![("1111", Target::Reject), ("_", Target::Accept)],
        ),
    );
    b.build().expect("VLAN parser is well-formed")
}

/// A *buggy* variant that forgets the default assignment — acceptance then
/// depends on the initial store, and the self-comparison check fails.
/// Used by tests and the `header_initialization` example to show the bug
/// the case study is about.
pub fn vlan_parser_buggy() -> Automaton {
    let mut b = Builder::new();
    let ether = b.header("ether", 112);
    let vlan = b.header("vlan", 32);
    let ip = b.header("ip", 160);
    let udp = b.header("udp", 64);
    let parse_eth = b.state("parse_eth");
    let default_vlan = b.state("default_vlan");
    let parse_vlan = b.state("parse_vlan");
    let parse_ip = b.state("parse_ip");
    let parse_udp = b.state("parse_udp");
    b.define(
        parse_eth,
        vec![b.extract(ether)],
        b.select1(
            Expr::slice(Expr::hdr(ether), 0, 0),
            vec![
                ("0", Target::State(default_vlan)),
                ("1", Target::State(parse_vlan)),
            ],
        ),
    );
    // Bug: no `vlan := 0` here.
    b.define(
        default_vlan,
        vec![b.extract(ip)],
        b.goto(Target::State(parse_udp)),
    );
    b.define(
        parse_vlan,
        vec![b.extract(vlan)],
        b.goto(Target::State(parse_ip)),
    );
    b.define(
        parse_ip,
        vec![b.extract(ip)],
        b.goto(Target::State(parse_udp)),
    );
    b.define(
        parse_udp,
        vec![b.extract(udp)],
        b.select1(
            Expr::slice(Expr::hdr(vlan), 0, 3),
            vec![("1111", Target::Reject), ("_", Target::Accept)],
        ),
    );
    b.build().expect("buggy VLAN parser is well-formed")
}

/// The Table 2 "Header initialization" benchmark: the parser compared to
/// itself with unconstrained initial stores.
pub fn vlan_init_benchmark() -> Benchmark {
    Benchmark::self_comparison("Header initialization", vlan_parser(), "parse_eth")
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::semantics::{Config, Store};

    #[test]
    fn fixed_parser_is_store_independent_on_samples() {
        let aut = vlan_parser();
        let q = aut.state_by_name("parse_eth").unwrap();
        let mut seed = 99u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed
        };
        for len in [0usize, 112, 112 + 160 + 64, 112 + 32 + 160 + 64] {
            for _ in 0..20 {
                let word = BitVec::random_with(len, &mut rng);
                let a = Config::with_store(q, Store::random(&aut, &mut rng))
                    .accepts_chunked(&aut, &word);
                let b = Config::with_store(q, Store::random(&aut, &mut rng))
                    .accepts_chunked(&aut, &word);
                assert_eq!(a, b, "len {len}");
            }
        }
    }

    #[test]
    fn buggy_parser_is_store_dependent() {
        let aut = vlan_parser_buggy();
        let q = aut.state_by_name("parse_eth").unwrap();
        let vlan = aut.header_by_name("vlan").unwrap();
        // Non-VLAN packet (first bit 0) of full length.
        let word = BitVec::zeros(112 + 160 + 64);
        let accepting = Config::with_store(q, Store::zeros(&aut)).accepts_chunked(&aut, &word);
        assert!(accepting);
        let mut poisoned = Store::zeros(&aut);
        poisoned.set(vlan, {
            let mut v = BitVec::zeros(32);
            for i in 0..4 {
                v.set(i, true);
            }
            v
        });
        let rejecting = Config::with_store(q, poisoned).accepts_chunked(&aut, &word);
        assert!(!rejecting, "poisoned initial vlan must flip acceptance");
    }

    #[test]
    fn metrics_match_table() {
        let m = vlan_init_benchmark().metrics();
        assert_eq!(m.states, 10); // Table 2: 10
                                  // Branched: (1 + 4) per copy = 10 (Table 2 reports 10).
        assert_eq!(m.branched_bits, 10);
    }
}
