//! Property tests for the workload generator (offline, fixed-seed RNG):
//!
//! * **Round trip**: every packet synthesized toward an accepting path is
//!   actually accepted by the explicit semantics of `leapfrog_p4a` — the
//!   steering machinery and the interpreter agree about what acceptance
//!   means.
//! * **Adversarial packets stay in-bounds**: random-walk packets always
//!   decompose into whole per-state chunks, so every `extract` along the
//!   replay reads exactly its declared width and the run ends on a state
//!   boundary with an empty buffer.

use leapfrog_p4a::semantics::{Config, Store};
use leapfrog_p4a::walk::{accepting_walk_packet, random_walk_packet, Rng};
use leapfrog_suite::applicability;
use leapfrog_suite::utility::{ip_options, mpls, sloppy_strict, vlan_init};
use leapfrog_suite::{Benchmark, Scale};

/// Every suite parser, as (name, automaton, start state).
fn suite_parsers() -> Vec<(String, leapfrog_p4a::Automaton, leapfrog_p4a::StateId)> {
    let mut out = Vec::new();
    let mut push_bench = |b: Benchmark| {
        out.push((format!("{}/left", b.name), b.left.clone(), b.left_start));
        out.push((format!("{}/right", b.name), b.right.clone(), b.right_start));
    };
    push_bench(leapfrog_suite::utility::state_rearrangement_benchmark());
    push_bench(ip_options::ip_options_benchmark(Scale::Small));
    push_bench(vlan_init::vlan_init_benchmark());
    push_bench(mpls::mpls_benchmark());
    for b in applicability::all_benchmarks(Scale::Small) {
        push_bench(b);
    }
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let qs = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qt = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    out.push(("sloppy".into(), sloppy, qs));
    out.push(("strict".into(), strict, qt));
    out
}

#[test]
fn steered_accepting_packets_are_accepted() {
    let mut rng = Rng::new(0xacce97);
    for (name, aut, start) in suite_parsers() {
        for round in 0..30 {
            let packet = accepting_walk_packet(&aut, start, Store::zeros(&aut), 64, &mut rng);
            assert!(
                Config::initial(&aut, start).accepts_chunked(&aut, &packet),
                "{name} round {round}: steered packet of {} bits was rejected",
                packet.len(),
            );
        }
    }
}

#[test]
fn adversarial_packets_stay_state_aligned() {
    let mut rng = Rng::new(0xadb3a5);
    for (name, aut, start) in suite_parsers() {
        for round in 0..50 {
            let packet = random_walk_packet(&aut, start, 12, &mut rng);
            // Replaying must consume the packet in whole per-state chunks:
            // the final configuration sits exactly on a state boundary, so
            // no extract ever read past the packet.
            let end = Config::initial(&aut, start).step_word(&aut, &packet);
            assert!(
                end.buf.is_empty(),
                "{name} round {round}: {} trailing bits buffered mid-state",
                end.buf.len(),
            );
        }
    }
}

#[test]
fn steering_is_deterministic_per_seed() {
    for (_, aut, start) in suite_parsers().into_iter().take(3) {
        let a = accepting_walk_packet(&aut, start, Store::zeros(&aut), 64, &mut Rng::new(5));
        let b = accepting_walk_packet(&aut, start, Store::zeros(&aut), 64, &mut Rng::new(5));
        assert_eq!(a, b);
    }
}
