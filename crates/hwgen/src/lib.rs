//! A parser-gen-style hardware parser pipeline: the third-party compiler
//! substrate for the paper's translation-validation case study (§7.2,
//! Figure 8).
//!
//! Gibb et al.'s `parser-gen` compiles parse graphs to TCAM-style match
//! tables for a fixed-function pipeline: each cycle a hardware state
//! matches a masked window of packet bytes, advances the cursor, and picks
//! the next state. The paper runs that compiler on its Edge benchmark,
//! translates the table *back* into a P4 automaton, and uses Leapfrog to
//! prove the round trip preserves the parser's language.
//!
//! This crate reimplements that flow:
//!
//! * [`table`] — the hardware representation: prioritized
//!   [`table::TcamEntry`]s (mask/value over the consumed window, advance
//!   amount, next state) plus a direct interpreter, mirroring Figure 8's
//!   rows;
//! * [`compiler`] — a compiler from P4 automata to tables under per-cycle
//!   hardware budgets (maximum advance width, maximum branch bits),
//!   performing the same class of transformations parser-gen does:
//!   *splitting* states that consume more than a cycle's worth of bits and
//!   *merging* hardware states with identical behaviour;
//! * [`backtranslate`] — the reverse translation from tables to P4
//!   automata, which together with `leapfrog` closes the translation-
//!   validation loop.
//!
//! The compiler only accepts parsers whose `select` scrutinees are slices
//! of headers extracted in the same state (true of every parser in the
//! evaluation suite); anything else is reported as unsupported rather than
//! silently miscompiled.

pub mod backtranslate;
pub mod compiler;
pub mod table;

pub use backtranslate::back_translate;
pub use compiler::{compile, CompileError, HwBudget};
pub use table::{HwParser, HwTarget, TcamEntry};
