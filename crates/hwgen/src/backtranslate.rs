//! Back-translation from hardware tables to P4 automata (the right-hand
//! side of Figure 8), closing the translation-validation loop.
//!
//! Every live hardware state becomes a P4A state that extracts its whole
//! window into a header `w<state>`. The state's TCAM rows become a
//! first-match `select`: the scrutinees are the window bit-groups that
//! some row masks (grouped so that every row masks each group fully or
//! not at all), and each row contributes a case whose patterns are the
//! row's values on the groups it masks and wildcards elsewhere.

use std::collections::{BTreeSet, HashMap};

use leapfrog_p4a::ast::{Automaton, Case, Expr, Pattern, Target, Transition};
use leapfrog_p4a::builder::Builder;

use crate::table::{HwParser, HwTarget};

/// Translates a hardware parser back into a P4 automaton. The start state
/// is named `hw0`-style after [`HwParser::initial`]; look it up with the
/// returned name.
pub fn back_translate(hw: &HwParser) -> (Automaton, String) {
    let mut b = Builder::new();
    let live: BTreeSet<u16> = live_states(hw);
    let mut names: HashMap<u16, String> = HashMap::new();
    for &s in &live {
        names.insert(s, format!("hw{s}"));
    }
    for &s in &live {
        b.state(names[&s].clone());
    }
    for &s in &live {
        let q = b.state(names[&s].clone());
        let width = hw.advance[s as usize];
        let w = b.header(format!("w{s}"), width);
        let rows: Vec<_> = hw.rows_of(s).collect();

        // Group masked bit positions: positions masked by the same subset
        // of rows, split into contiguous runs.
        let groups = mask_groups(width, &rows.iter().map(|r| &r.mask).collect::<Vec<_>>());

        let target_of = |b: &mut Builder, t: HwTarget| match t {
            HwTarget::Accept => Target::Accept,
            HwTarget::Reject => Target::Reject,
            HwTarget::State(s2) => Target::State(b.state(format!("hw{s2}"))),
        };

        let trans = if groups.is_empty() {
            // No row compares anything: the first row always wins.
            let t = rows.first().map(|r| r.next).unwrap_or(HwTarget::Reject);
            Transition::Goto(target_of(&mut b, t))
        } else {
            let exprs: Vec<Expr> = groups
                .iter()
                .map(|g| Expr::slice(Expr::hdr(w), g.0, g.0 + g.1 - 1))
                .collect();
            let cases: Vec<Case> = rows
                .iter()
                .map(|row| {
                    let pats = groups
                        .iter()
                        .map(|&(start, len)| {
                            if row.mask.get(start) == Some(true) {
                                Pattern::Exact(row.value.subrange(start, len))
                            } else {
                                Pattern::Wildcard
                            }
                        })
                        .collect();
                    Case {
                        pats,
                        target: target_of(&mut b, row.next),
                    }
                })
                .collect();
            Transition::Select { exprs, cases }
        };
        b.define(q, vec![b.extract(w)], trans);
    }
    let start = format!("hw{}", hw.initial);
    (
        b.build().expect("back-translated automaton is well-formed"),
        start,
    )
}

/// Hardware states reachable from the initial state through live rows.
fn live_states(hw: &HwParser) -> BTreeSet<u16> {
    let mut seen = BTreeSet::new();
    let mut work = vec![hw.initial];
    while let Some(s) = work.pop() {
        if !seen.insert(s) {
            continue;
        }
        for row in hw.rows_of(s) {
            if let HwTarget::State(s2) = row.next {
                if !seen.contains(&s2) {
                    work.push(s2);
                }
            }
        }
    }
    seen
}

/// Partitions `0..width` into contiguous runs of positions that are masked
/// by exactly the same set of rows, dropping wholly unmasked runs.
/// Guarantees every row masks each returned run fully or not at all.
fn mask_groups(width: usize, masks: &[&leapfrog_bitvec::BitVec]) -> Vec<(usize, usize)> {
    let signature =
        |i: usize| -> Vec<bool> { masks.iter().map(|m| m.get(i) == Some(true)).collect() };
    let mut groups = Vec::new();
    let mut i = 0;
    while i < width {
        let sig = signature(i);
        let start = i;
        while i < width && signature(i) == sig {
            i += 1;
        }
        if sig.iter().any(|&b| b) {
            groups.push((start, i - start));
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, HwBudget};
    use leapfrog_bitvec::BitVec;
    use leapfrog_p4a::semantics::Config;
    use leapfrog_p4a::surface::parse;

    fn roundtrip_agrees(src: &str, start: &str, budget: &HwBudget, lengths: &[usize]) {
        let a = parse(src).unwrap();
        let q = a.state_by_name(start).unwrap();
        let hw = compile(&a, q, budget).expect("compiles");
        let (back, bstart) = back_translate(&hw);
        let bq = back.state_by_name(&bstart).unwrap();
        let mut seed = 0x1717u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed
        };
        for &len in lengths {
            for _ in 0..40 {
                let word = BitVec::random_with(len, &mut rng);
                let a_acc = Config::initial(&a, q).accepts_chunked(&a, &word);
                let hw_acc = hw.accepts(&word);
                let b_acc = Config::initial(&back, bq).accepts_chunked(&back, &word);
                assert_eq!(a_acc, hw_acc, "source vs hardware at len {len}");
                assert_eq!(hw_acc, b_acc, "hardware vs back-translation at len {len}");
            }
        }
    }

    #[test]
    fn roundtrip_simple_select() {
        roundtrip_agrees(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b10 => accept; 0b01 => reject; _ => s; } } }",
            "s",
            &HwBudget::default(),
            &[0, 3, 4, 8, 12, 16],
        );
    }

    #[test]
    fn roundtrip_with_splitting() {
        roundtrip_agrees(
            "parser A {
               state s { extract(h, 12);
                 select(h[0:2]) { 0b111 => t; _ => accept; } }
               state t { extract(g, 6); goto accept }
             }",
            "s",
            &HwBudget {
                max_advance: 4,
                max_branch_bits: 8,
            },
            &[0, 11, 12, 13, 18, 24, 30],
        );
    }

    #[test]
    fn roundtrip_multi_scrutinee() {
        roundtrip_agrees(
            "parser A { state s { extract(a, 3); extract(c, 3);
               select(a[0:0], c[2:2]) { (0b1, 0b0) => accept; (_, _) => reject; } } }",
            "s",
            &HwBudget::default(),
            &[5, 6, 7, 12],
        );
    }

    #[test]
    fn back_translation_validates() {
        let a = parse(
            "parser A { state s { extract(h, 8);
               select(h[0:3]) { 0b1111 => s; _ => accept; } } }",
        )
        .unwrap();
        let hw = compile(&a, a.state_by_name("s").unwrap(), &HwBudget::default()).unwrap();
        let (back, start) = back_translate(&hw);
        assert!(leapfrog_p4a::validate::validate(&back).is_ok());
        assert!(back.state_by_name(&start).is_some());
    }

    #[test]
    fn mask_groups_splits_on_signature_changes() {
        let m1: BitVec = "111100".parse().unwrap();
        let m2: BitVec = "001111".parse().unwrap();
        let groups = mask_groups(6, &[&m1, &m2]);
        // Positions 0-1 (m1 only), 2-3 (both), 4-5 (m2 only).
        assert_eq!(groups, vec![(0, 2), (2, 2), (4, 2)]);
    }
}
