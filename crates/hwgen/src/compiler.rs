//! The P4A → hardware-table compiler, modelling parser-gen's pipeline
//! constraints (per-cycle extraction and branch budgets) and its state
//! splitting/merging optimizations.

use std::collections::HashMap;

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{
    clamped_slice_bounds, Automaton, Expr, HeaderId, Op, Pattern, StateId, Target, Transition,
};

use crate::table::{HwParser, HwTarget, TcamEntry};

/// Hardware resource budgets per pipeline cycle.
#[derive(Debug, Clone, Copy)]
pub struct HwBudget {
    /// Maximum bits consumed per cycle (window width).
    pub max_advance: usize,
    /// Maximum bits compared per cycle (TCAM key width).
    pub max_branch_bits: usize,
}

impl Default for HwBudget {
    fn default() -> Self {
        HwBudget {
            max_advance: 256,
            max_branch_bits: 40,
        }
    }
}

/// Why a parser cannot be compiled to the hardware model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A select scrutinee is not a slice of a header extracted in the same
    /// state (the hardware matches only on the current window).
    UnsupportedScrutinee {
        /// Offending state.
        state: String,
    },
    /// A scrutinized field straddles a cycle boundary after splitting.
    FieldStraddlesCycle {
        /// Offending state.
        state: String,
    },
    /// A single select compares more bits than the TCAM key holds.
    BranchBudgetExceeded {
        /// Offending state.
        state: String,
        /// Bits required.
        required: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnsupportedScrutinee { state } => write!(
                f,
                "state {state}: select scrutinee is not a same-state extracted field"
            ),
            CompileError::FieldStraddlesCycle { state } => {
                write!(
                    f,
                    "state {state}: scrutinized field straddles a cycle boundary"
                )
            }
            CompileError::BranchBudgetExceeded { state, required } => {
                write!(f, "state {state}: select needs {required} key bits")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles `aut`, starting from `start`, into a hardware table under the
/// given budgets, then merges behaviourally identical hardware states.
pub fn compile(
    aut: &Automaton,
    start: StateId,
    budget: &HwBudget,
) -> Result<HwParser, CompileError> {
    let mut c = Compiler {
        aut,
        budget,
        advance: Vec::new(),
        entries: Vec::new(),
        entry_state: HashMap::new(),
    };
    let initial = c.compile_state(start)?;
    let mut hw = HwParser {
        advance: c.advance,
        entries: c.entries,
        initial,
    };
    merge_states(&mut hw);
    Ok(hw)
}

struct Compiler<'a> {
    aut: &'a Automaton,
    budget: &'a HwBudget,
    advance: Vec<usize>,
    entries: Vec<TcamEntry>,
    /// Memoizes the hardware entry state of each compiled P4A state.
    entry_state: HashMap<StateId, u16>,
}

/// A scrutinee resolved to a bit range within the state's consumed chunk.
#[derive(Debug, Clone, Copy)]
struct FieldRange {
    start: usize,
    len: usize,
}

impl Compiler<'_> {
    fn fresh_state(&mut self, advance: usize) -> u16 {
        debug_assert!(advance >= 1);
        let s = self.advance.len() as u16;
        self.advance.push(advance);
        s
    }

    fn compile_state(&mut self, q: StateId) -> Result<u16, CompileError> {
        if let Some(&s) = self.entry_state.get(&q) {
            return Ok(s);
        }
        let total = self.aut.op_size(q);
        let w = self.budget.max_advance;

        // Segment the chunk into cycle-sized windows.
        let mut bounds = Vec::new();
        let mut pos = 0;
        while pos < total {
            let seg = w.min(total - pos);
            bounds.push((pos, seg));
            pos += seg;
        }

        // Resolve scrutinees and locate the branch segment.
        let (fields, cases) = self.resolve_transition(q)?;
        let branch_seg = if fields.is_empty() {
            bounds.len() - 1
        } else {
            let seg_of = |bit: usize| bounds.iter().position(|(s, l)| bit >= *s && bit < s + l);
            let first = seg_of(fields[0].start).unwrap();
            for f in &fields {
                let a = seg_of(f.start);
                let b = seg_of(f.start + f.len - 1);
                if a != b || a != Some(first) {
                    return Err(CompileError::FieldStraddlesCycle {
                        state: self.aut.state_name(q).to_string(),
                    });
                }
            }
            // The TCAM key only stores bits some row actually compares:
            // wildcarded fields are free.
            let key_bits: usize = cases
                .iter()
                .map(|(pats, _)| {
                    pats.iter()
                        .zip(&fields)
                        .filter(|(p, _)| matches!(p, Pattern::Exact(_)))
                        .map(|(_, f)| f.len)
                        .sum()
                })
                .max()
                .unwrap_or(0);
            if key_bits > self.budget.max_branch_bits {
                return Err(CompileError::BranchBudgetExceeded {
                    state: self.aut.state_name(q).to_string(),
                    required: key_bits,
                });
            }
            first
        };

        // Allocate the chain of hardware states up to and including the
        // branch segment, registering the entry state for recursion.
        let chain: Vec<u16> = (0..=branch_seg)
            .map(|i| self.fresh_state(bounds[i].1))
            .collect();
        self.entry_state.insert(q, chain[0]);
        for win in chain.windows(2) {
            self.push_passthrough(win[0], bounds[0].1, HwTarget::State(win[1]));
        }
        // Re-fetch per-state widths for the pass-through rows (they were
        // built with the wrong width above if segments differ); rebuild.
        // Simpler: clear and re-add with correct widths.
        self.entries
            .retain(|e| !chain[..chain.len() - 1].contains(&e.state));
        for (i, win) in chain.windows(2).enumerate() {
            self.push_passthrough(win[0], bounds[i].1, HwTarget::State(win[1]));
        }

        // Rows of the branch state.
        let branch_state = *chain.last().unwrap();
        let seg_start = bounds[branch_seg].0;
        let seg_len = bounds[branch_seg].1;
        let tail_segs: Vec<(usize, usize)> = bounds[branch_seg + 1..].to_vec();

        // The continuation of each case: remaining pass-through segments
        // (shared per target), then the target itself.
        let mut tails: HashMap<Target, HwTarget> = HashMap::new();
        let case_list = cases.clone();
        for (_pats, target) in &case_list {
            if tails.contains_key(target) {
                continue;
            }
            let end = self.lower_target(*target)?;
            let mut next = end;
            for (_, len) in tail_segs.iter().rev() {
                let s = self.fresh_state(*len);
                self.push_passthrough(s, *len, next);
                next = HwTarget::State(s);
            }
            tails.insert(*target, next);
        }

        for (pats, target) in &case_list {
            let mut mask = BitVec::zeros(seg_len);
            let mut value = BitVec::zeros(seg_len);
            for (pat, field) in pats.iter().zip(&fields) {
                if let Pattern::Exact(bits) = pat {
                    for i in 0..field.len {
                        let at = field.start - seg_start + i;
                        mask.set(at, true);
                        value.set(at, bits.get(i).unwrap());
                    }
                }
            }
            self.entries.push(TcamEntry {
                state: branch_state,
                mask,
                value,
                next: tails[target],
            });
        }
        // Catch-all reject (select fall-through / totality).
        self.entries.push(TcamEntry {
            state: branch_state,
            mask: BitVec::zeros(seg_len),
            value: BitVec::zeros(seg_len),
            next: HwTarget::Reject,
        });
        Ok(chain[0])
    }

    fn push_passthrough(&mut self, state: u16, width: usize, next: HwTarget) {
        self.entries.push(TcamEntry {
            state,
            mask: BitVec::zeros(width),
            value: BitVec::zeros(width),
            next,
        });
    }

    fn lower_target(&mut self, t: Target) -> Result<HwTarget, CompileError> {
        Ok(match t {
            Target::Accept => HwTarget::Accept,
            Target::Reject => HwTarget::Reject,
            Target::State(q) => HwTarget::State(self.compile_state(q)?),
        })
    }

    /// Resolves the transition of `q` to in-chunk field ranges plus the
    /// case list; a `goto` becomes one all-wildcard case.
    #[allow(clippy::type_complexity)]
    fn resolve_transition(
        &self,
        q: StateId,
    ) -> Result<(Vec<FieldRange>, Vec<(Vec<Pattern>, Target)>), CompileError> {
        match &self.aut.state(q).trans {
            Transition::Goto(t) => Ok((Vec::new(), vec![(Vec::new(), *t)])),
            Transition::Select { exprs, cases } => {
                let fields: Vec<FieldRange> = exprs
                    .iter()
                    .map(|e| {
                        self.resolve_field(q, e)
                            .ok_or_else(|| CompileError::UnsupportedScrutinee {
                                state: self.aut.state_name(q).to_string(),
                            })
                    })
                    .collect::<Result<_, _>>()?;
                Ok((
                    fields,
                    cases.iter().map(|c| (c.pats.clone(), c.target)).collect(),
                ))
            }
        }
    }

    /// Resolves a scrutinee expression to a chunk bit range: it must be a
    /// (possibly sliced) header extracted in this state, untouched by
    /// later assignments.
    fn resolve_field(&self, q: StateId, e: &Expr) -> Option<FieldRange> {
        fn header_range(aut: &Automaton, e: &Expr) -> Option<(HeaderId, usize, usize)> {
            match e {
                Expr::Hdr(h) => Some((*h, 0, aut.header_size(*h))),
                Expr::Slice(inner, n1, n2) => {
                    let (h, off, len) = header_range(aut, inner)?;
                    let (s, l) = clamped_slice_bounds(len, *n1, *n2);
                    if l == 0 {
                        return None;
                    }
                    Some((h, off + s, l))
                }
                _ => None,
            }
        }
        let (h, off, len) = header_range(self.aut, e)?;
        let mut cursor = 0;
        let mut at = None;
        for op in &self.aut.state(q).ops {
            match op {
                Op::Extract(h2) => {
                    if *h2 == h {
                        at = Some(cursor);
                    }
                    cursor += self.aut.header_size(*h2);
                }
                Op::Assign(h2, _) if *h2 == h => {
                    at = None; // overwritten after extraction
                }
                Op::Assign(_, _) => {}
            }
        }
        at.map(|base| FieldRange {
            start: base + off,
            len,
        })
    }
}

/// Merges hardware states with identical behaviour (same advance, same row
/// list), iterating to a fixpoint — parser-gen's state-merge optimization.
pub fn merge_states(hw: &mut HwParser) {
    loop {
        // Signature: advance + ordered rows (mask, value, next).
        let mut sig_to_state: HashMap<String, u16> = HashMap::new();
        let mut remap: HashMap<u16, u16> = HashMap::new();
        for s in 0..hw.num_states() as u16 {
            let rows: Vec<String> = hw
                .rows_of(s)
                .map(|e| format!("{}|{}|{:?}", e.mask, e.value, e.next))
                .collect();
            let sig = format!("{}#{}", hw.advance[s as usize], rows.join(";"));
            match sig_to_state.get(&sig) {
                Some(&canon) => {
                    remap.insert(s, canon);
                }
                None => {
                    sig_to_state.insert(sig, s);
                }
            }
        }
        if remap.is_empty() {
            return;
        }
        // Redirect and drop merged states' rows.
        hw.entries.retain(|e| !remap.contains_key(&e.state));
        for e in &mut hw.entries {
            if let HwTarget::State(s) = e.next {
                if let Some(&c) = remap.get(&s) {
                    e.next = HwTarget::State(c);
                }
            }
        }
        if let Some(&c) = remap.get(&hw.initial) {
            hw.initial = c;
        }
        // Note: merged state slots stay allocated (their advance entries
        // are unused); compaction is cosmetic and skipped.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::surface::parse;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn compiles_simple_branching_parser() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let hw = compile(&a, a.state_by_name("s").unwrap(), &HwBudget::default()).unwrap();
        assert!(hw.accepts(&bv("1011")));
        assert!(!hw.accepts(&bv("0011")));
        assert!(!hw.accepts(&bv("101"))); // truncated
        assert!(!hw.accepts(&bv("10111"))); // overlong
    }

    #[test]
    fn splits_wide_states() {
        // 12-bit state with a 3-bit budget: must split into 4 cycles.
        let a = parse("parser A { state s { extract(h, 12); goto accept } }").unwrap();
        let budget = HwBudget {
            max_advance: 3,
            max_branch_bits: 8,
        };
        let hw = compile(&a, a.state_by_name("s").unwrap(), &budget).unwrap();
        assert!(hw.advance.iter().all(|&a| a <= 3));
        assert!(hw.accepts(&BitVec::zeros(12)));
        assert!(!hw.accepts(&BitVec::zeros(11)));
        assert!(!hw.accepts(&BitVec::zeros(13)));
    }

    #[test]
    fn split_with_early_branch_field() {
        // The branch field is in the first cycle, the state is split, and
        // the two branches need different continuations.
        let a = parse(
            "parser A {
               state s { extract(h, 8);
                 select(h[0:0]) { 0b1 => accept; _ => t; } }
               state t { extract(g, 4); goto accept }
             }",
        )
        .unwrap();
        let budget = HwBudget {
            max_advance: 4,
            max_branch_bits: 8,
        };
        let hw = compile(&a, a.state_by_name("s").unwrap(), &budget).unwrap();
        // h[0]=1: accept after 8 bits.
        assert!(hw.accepts(&bv("10000000")));
        // h[0]=0: needs 4 more bits.
        assert!(!hw.accepts(&bv("00000000")));
        assert!(hw.accepts(&bv("000000001111")));
    }

    #[test]
    fn loops_compile_via_memoization() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:0]) { 0b0 => s; 0b1 => accept; } } }",
        )
        .unwrap();
        let hw = compile(&a, a.state_by_name("s").unwrap(), &HwBudget::default()).unwrap();
        assert!(hw.accepts(&bv("1000")));
        assert!(hw.accepts(&bv("00001000")));
        assert!(!hw.accepts(&bv("0000")));
    }

    #[test]
    fn rejects_unsupported_scrutinee() {
        // Select on a header extracted in a *previous* state.
        let a = parse(
            "parser A {
               state s { extract(h, 4); goto t }
               state t { extract(g, 4);
                 select(h) { 0b1111 => accept; _ => reject; } }
             }",
        )
        .unwrap();
        let e = compile(&a, a.state_by_name("s").unwrap(), &HwBudget::default()).unwrap_err();
        assert!(matches!(e, CompileError::UnsupportedScrutinee { .. }));
    }

    #[test]
    fn merging_collapses_identical_states() {
        // Two distinct P4A states with identical behaviour.
        let a = parse(
            "parser A {
               state s { extract(h, 2);
                 select(h[0:0]) { 0b0 => t1; 0b1 => t2; } }
               state t1 { extract(g, 4); goto accept }
               state t2 { extract(k, 4); goto accept }
             }",
        )
        .unwrap();
        let hw = compile(&a, a.state_by_name("s").unwrap(), &HwBudget::default()).unwrap();
        let live: std::collections::HashSet<u16> = hw.entries.iter().map(|e| e.state).collect();
        // t1 and t2 collapse into one live hardware state (plus s).
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn budget_violation_reported() {
        let a = parse(
            "parser A { state s { extract(h, 64);
               select(h) { _ => accept; } } }",
        )
        .unwrap();
        let budget = HwBudget {
            max_advance: 64,
            max_branch_bits: 16,
        };
        // An all-wildcard select compares 0 bits — fine. Use exact pattern.
        let b = parse(
            "parser B { state s { extract(h, 64);
               select(h) { 64w1 => accept; _ => reject; } } }",
        )
        .unwrap();
        assert!(compile(&a, a.state_by_name("s").unwrap(), &budget).is_ok());
        let e = compile(&b, b.state_by_name("s").unwrap(), &budget).unwrap_err();
        assert!(matches!(
            e,
            CompileError::BranchBudgetExceeded { required: 64, .. }
        ));
    }
}
