//! The hardware table representation and its interpreter (Figure 8's rows).

use leapfrog_bitvec::BitVec;

/// A hardware next-state: another table state or a terminal decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwTarget {
    /// Jump to a hardware state.
    State(u16),
    /// Accept the packet (must coincide with the end of input).
    Accept,
    /// Reject the packet.
    Reject,
}

/// One prioritized TCAM row: matches the current state and a masked view
/// of the `advance`-bit window the cycle consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcamEntry {
    /// The hardware state this row belongs to.
    pub state: u16,
    /// Bit mask over the consumed window (1 = compare this bit).
    pub mask: BitVec,
    /// Expected values at masked positions (unmasked bits ignored).
    pub value: BitVec,
    /// Where to go on a match.
    pub next: HwTarget,
}

impl TcamEntry {
    /// Whether a window matches this row.
    pub fn matches(&self, window: &BitVec) -> bool {
        debug_assert_eq!(window.len(), self.mask.len());
        (0..self.mask.len())
            .all(|i| !self.mask.get(i).unwrap() || window.get(i) == self.value.get(i))
    }
}

/// A compiled hardware parser: per-state advance amounts and a prioritized
/// rule table.
#[derive(Debug, Clone)]
pub struct HwParser {
    /// Number of bits each hardware state consumes per cycle.
    pub advance: Vec<usize>,
    /// The rule table; within a state, earlier rows win.
    pub entries: Vec<TcamEntry>,
    /// The initial hardware state.
    pub initial: u16,
}

impl HwParser {
    /// The number of hardware states.
    pub fn num_states(&self) -> usize {
        self.advance.len()
    }

    /// The rows of a state, in priority order.
    pub fn rows_of(&self, state: u16) -> impl Iterator<Item = &TcamEntry> {
        self.entries.iter().filter(move |e| e.state == state)
    }

    /// Runs the hardware pipeline on a packet: consume `advance[s]` bits
    /// per cycle, first matching row picks the successor; no match, or
    /// input exhausted mid-window, rejects. Accept requires landing on
    /// [`HwTarget::Accept`] exactly at the end of input.
    pub fn accepts(&self, packet: &BitVec) -> bool {
        let mut state = self.initial;
        let mut pos = 0usize;
        loop {
            let adv = self.advance[state as usize];
            if pos + adv > packet.len() {
                return false; // truncated mid-cycle
            }
            let window = packet.subrange(pos, adv);
            pos += adv;
            let Some(row) = self.rows_of(state).find(|e| e.matches(&window)) else {
                return false;
            };
            match row.next {
                HwTarget::Accept => return pos == packet.len(),
                HwTarget::Reject => return false,
                HwTarget::State(s) => state = s,
            }
        }
    }

    /// Renders the table in the style of Figure 8.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "Match: (state={}, mask={}, value={})  Next-State: {:?}  Adv: {}",
                e.state, e.mask, e.value, e.next, self.advance[e.state as usize]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    /// A tiny hand-written table: state 0 consumes 4 bits, accepts another
    /// 4-bit state when the first two bits are 10.
    fn sample() -> HwParser {
        HwParser {
            advance: vec![4, 4],
            initial: 0,
            entries: vec![
                TcamEntry {
                    state: 0,
                    mask: bv("1100"),
                    value: bv("1000"),
                    next: HwTarget::State(1),
                },
                TcamEntry {
                    state: 0,
                    mask: bv("0000"),
                    value: bv("0000"),
                    next: HwTarget::Reject,
                },
                TcamEntry {
                    state: 1,
                    mask: bv("0000"),
                    value: bv("0000"),
                    next: HwTarget::Accept,
                },
            ],
        }
    }

    #[test]
    fn matching_respects_mask_and_priority() {
        let hw = sample();
        assert!(hw.accepts(&bv("10110101"))); // 10.. then anything
        assert!(!hw.accepts(&bv("01110101"))); // first row misses, reject row wins
        assert!(!hw.accepts(&bv("1011"))); // truncated: accept needs 8 bits
        assert!(!hw.accepts(&bv("101101011"))); // trailing bit after accept
    }

    #[test]
    fn entry_matches_is_bitwise() {
        let e = TcamEntry {
            state: 0,
            mask: bv("1010"),
            value: bv("1000"),
            next: HwTarget::Accept,
        };
        assert!(e.matches(&bv("1100")));
        assert!(e.matches(&bv("1001"))); // unmasked bits free
        assert!(!e.matches(&bv("0000")));
    }

    #[test]
    fn render_lists_every_entry() {
        let hw = sample();
        let text = hw.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("Adv: 4"));
    }
}
