//! Weakest preconditions over template-guarded configuration relations
//! (paper, §4.3), generalized to *leaps* (§5.2, Theorem 5.7).
//!
//! Given a successor relation `ψ = t₁ ∧ t₂ ⇒ φ` and a predecessor template
//! pair `(t₁', t₂')`, [`wp`] computes the relation `t₁' ∧ t₂' ⇒ φ'` such
//! that two configurations matching `(t₁', t₂')` step (by one leap — the
//! `♯` of Definition 5.3 — or one bit when leaps are disabled) into
//! configurations related by `ψ`, for every choice of the consumed packet
//! bits. The consumed bits are a fresh universally quantified packet
//! variable `x` of the leap's width.
//!
//! Each side is processed independently (`WP<` / `WP>`, Lemma 4.8):
//!
//! * while the side is *buffering* (`n + k < ‖op(q)‖`), the post-state
//!   buffer is the pre-state buffer extended with `x`:
//!   `φ[buf ≔ buf ++ x]`;
//! * at a *transition boundary* (`n + k = ‖op(q)‖`), the operation block is
//!   executed symbolically on the full buffer `buf ++ x` — extracts become
//!   slices, assignments substitute — and the formula is guarded by the
//!   first-match condition under which the `select` reaches the successor
//!   state: `cond ⇒ φ[h ≔ store(h), buf ≔ ε]`;
//! * `accept`/`reject` step to `reject` with an unchanged store.
//!
//! Returns `None` when the successor guard is unreachable from the
//! predecessor pair (the conjunct would be vacuously true).

use leapfrog_p4a::ast::{
    clamped_slice_bounds, Automaton, Expr, HeaderId, Op, Pattern, StateId, Target, Transition,
};

use crate::confrel::{BitExpr, ConfRel, ExprCtx, Pure, Side, VarId};
use crate::templates::{leap_size, Template, TemplatePair};

/// Computes the weakest precondition of `psi` along one leap from `pred`.
///
/// Returns `None` when `psi.guard` is not a possible successor of `pred`
/// (including the case where the required `select` branch is statically
/// impossible), in which case the precondition is vacuously true.
pub fn wp(aut: &Automaton, psi: &ConfRel, pred: &TemplatePair, leaps: bool) -> Option<ConfRel> {
    let k = leap_size(aut, pred, leaps);
    let mut vars = psi.vars.clone();
    let x = BitExpr::Var(VarId(vars.len() as u32));
    vars.push(k);

    // Pass 1: right side. Left buffer references in `phi` are still
    // post-state (the successor guard's length); right references become
    // pre-state.
    let ctx1 = ExprCtx {
        aut,
        left_buf: psi.guard.left.buf_len,
        right_buf: pred.right.buf_len,
        var_widths: &vars,
    };
    let phi_r = wp_side(
        aut,
        &psi.phi,
        Side::Right,
        pred.right,
        psi.guard.right,
        &x,
        k,
        &ctx1,
    )?;

    // Pass 2: left side. Everything is pre-state afterwards.
    let ctx2 = ExprCtx {
        aut,
        left_buf: pred.left.buf_len,
        right_buf: pred.right.buf_len,
        var_widths: &vars,
    };
    let phi_lr = wp_side(
        aut,
        &phi_r,
        Side::Left,
        pred.left,
        psi.guard.left,
        &x,
        k,
        &ctx2,
    )?;

    Some(ConfRel {
        guard: *pred,
        vars,
        phi: phi_lr,
    })
}

/// Computes the weakest preconditions of `psi` over every predecessor in
/// `preds` (typically the reachable template pairs; Theorem 5.2).
pub fn wp_all(aut: &Automaton, psi: &ConfRel, preds: &[TemplatePair], leaps: bool) -> Vec<ConfRel> {
    preds
        .iter()
        .filter_map(|p| wp(aut, psi, p, leaps))
        .collect()
}

/// One-sided weakest precondition (`WP<` or `WP>`, Lemma 4.8, lifted to a
/// `k`-bit leap).
#[allow(clippy::too_many_arguments)]
fn wp_side(
    aut: &Automaton,
    phi: &Pure,
    side: Side,
    pred: Template,
    succ: Template,
    x: &BitExpr,
    k: usize,
    ctx: &ExprCtx<'_>,
) -> Option<Pure> {
    match pred.target {
        Target::Accept | Target::Reject => {
            // Any k ≥ 1 steps land in reject with the store unchanged.
            if succ != Template::reject() {
                return None;
            }
            let identity = |h: HeaderId| BitExpr::Hdr(side, h);
            Some(phi.subst_side(side, &BitExpr::empty(), &identity, ctx))
        }
        Target::State(q) => {
            let rem = aut.op_size(q) - pred.buf_len;
            debug_assert!(k <= rem, "leap exceeds the side's remaining bits");
            if k < rem {
                // Still buffering: the state is unchanged, the buffer grows.
                if succ.target != pred.target || succ.buf_len != pred.buf_len + k {
                    return None;
                }
                let buf = BitExpr::concat(BitExpr::Buf(side), x.clone());
                let identity = |h: HeaderId| BitExpr::Hdr(side, h);
                Some(phi.subst_side(side, &buf, &identity, ctx))
            } else {
                // Transition boundary: run the operation block symbolically
                // on the full buffer, then constrain the select outcome.
                if succ.buf_len != 0 {
                    return None;
                }
                let full = BitExpr::concat(BitExpr::Buf(side), x.clone());
                let store = symbolic_ops(aut, q, side, &full, ctx);
                let cond = branch_condition(aut, q, &store, succ.target, ctx);
                if cond == Pure::ff() {
                    return None;
                }
                let lookup = |h: HeaderId| store[h.0 as usize].clone();
                let substituted = phi.subst_side(side, &BitExpr::empty(), &lookup, ctx);
                Some(Pure::implies(cond, substituted))
            }
        }
    }
}

/// Symbolically executes `op(q)` on the buffer expression `full`,
/// returning the post-state value of every header as an expression over
/// the pre-state store and `full`.
pub fn symbolic_ops(
    aut: &Automaton,
    q: StateId,
    side: Side,
    full: &BitExpr,
    ctx: &ExprCtx<'_>,
) -> Vec<BitExpr> {
    let mut store: Vec<BitExpr> = aut.header_ids().map(|h| BitExpr::Hdr(side, h)).collect();
    let mut cursor = 0;
    for op in &aut.state(q).ops {
        match op {
            Op::Extract(h) => {
                let sz = aut.header_size(*h);
                store[h.0 as usize] = BitExpr::slice(full.clone(), cursor, sz, ctx);
                cursor += sz;
            }
            Op::Assign(h, e) => {
                store[h.0 as usize] = conv_expr(aut, e, &store, ctx);
            }
        }
    }
    debug_assert_eq!(cursor, aut.op_size(q));
    store
}

/// Converts a P4A store expression into a [`BitExpr`] over a symbolic
/// store, resolving the surface language's clamped slices to exact slices
/// (widths are static).
pub fn conv_expr(aut: &Automaton, e: &Expr, store: &[BitExpr], ctx: &ExprCtx<'_>) -> BitExpr {
    match e {
        Expr::Hdr(h) => store[h.0 as usize].clone(),
        Expr::Lit(bv) => BitExpr::Lit(bv.clone()),
        Expr::Slice(inner, n1, n2) => {
            let (start, len) = clamped_slice_bounds(inner.width(aut), *n1, *n2);
            BitExpr::slice(conv_expr(aut, inner, store, ctx), start, len, ctx)
        }
        Expr::Concat(a, b) => {
            BitExpr::concat(conv_expr(aut, a, store, ctx), conv_expr(aut, b, store, ctx))
        }
    }
}

/// The condition under which `tz(q)`, evaluated on the symbolic store,
/// transitions to `target` — first-match semantics with a `reject`
/// fall-through (Definition 3.3).
pub fn branch_condition(
    aut: &Automaton,
    q: StateId,
    store: &[BitExpr],
    target: Target,
    ctx: &ExprCtx<'_>,
) -> Pure {
    match &aut.state(q).trans {
        Transition::Goto(t) => Pure::Const(*t == target),
        Transition::Select { exprs, cases } => {
            let scrutinees: Vec<BitExpr> = exprs
                .iter()
                .map(|e| conv_expr(aut, e, store, ctx))
                .collect();
            let case_conds: Vec<Pure> = cases
                .iter()
                .map(|case| {
                    Pure::and_all(case.pats.iter().zip(&scrutinees).map(|(p, v)| match p {
                        Pattern::Exact(bv) => Pure::eq(v.clone(), BitExpr::Lit(bv.clone())),
                        Pattern::Wildcard => Pure::tt(),
                    }))
                })
                .collect();
            let mut disjuncts = Vec::new();
            for (j, case) in cases.iter().enumerate() {
                if case.target == target {
                    let earlier = Pure::and_all(case_conds[..j].iter().cloned().map(Pure::not));
                    disjuncts.push(Pure::and(case_conds[j].clone(), earlier));
                }
            }
            if target == Target::Reject {
                disjuncts.push(Pure::and_all(case_conds.iter().cloned().map(Pure::not)));
            }
            Pure::or_all(disjuncts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::leap_size;
    use leapfrog_bitvec::BitVec;
    use leapfrog_p4a::builder::Builder;
    use leapfrog_p4a::semantics::{Config, Store};
    use leapfrog_p4a::sum::sum;

    /// A small sum automaton: left parser reads 3 bits and accepts iff the
    /// first is 1; right parser reads 1 bit then 2 bits, accepting iff the
    /// first is 1. The two are language-equivalent.
    fn fixture() -> (Automaton, StateId, StateId) {
        let mut bl = Builder::new();
        let h = bl.header("h", 3);
        let l0 = bl.state("l0");
        bl.define(
            l0,
            vec![bl.extract(h)],
            bl.select1(Expr::slice(Expr::hdr(h), 0, 0), vec![("1", Target::Accept)]),
        );
        let left = bl.build().unwrap();

        let mut br = Builder::new();
        let a = br.header("a", 1);
        let b2 = br.header("b", 2);
        let r0 = br.state("r0");
        let r1 = br.state("r1");
        br.define(r0, vec![br.extract(a)], br.goto(Target::State(r1)));
        br.define(
            r1,
            vec![br.extract(b2)],
            br.select1(Expr::hdr(a), vec![("1", Target::Accept)]),
        );
        let right = br.build().unwrap();

        let s = sum(&left, &right);
        let l = s.left_state(left.state_by_name("l0").unwrap());
        let r = s.right_state(right.state_by_name("r0").unwrap());
        (s.automaton, l, r)
    }

    fn state_t(q: StateId, n: usize) -> Template {
        Template {
            target: Target::State(q),
            buf_len: n,
        }
    }

    /// Exhaustive check of the Theorem 5.7 equivalence for a given
    /// predecessor pair and successor relation: for all stores drawn from a
    /// small pool, buffers, and leap words `w`,
    /// `(∀w. (δ*(c1,w), δ*(c2,w)) ⊨ ψ)  ⇔  (c1,c2) ⊨ wp(ψ, pred)`.
    fn check_wp_equivalence(aut: &Automaton, psi: &ConfRel, pred: &TemplatePair, leaps: bool) {
        let k = leap_size(aut, pred, leaps);
        let precondition = wp(aut, psi, pred, leaps);
        let mut seed = 0xfeedu64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..6 {
            let mk = |t: Template, rng: &mut dyn FnMut() -> u64| Config {
                target: t.target,
                store: Store::random(aut, &mut *rng),
                buf: BitVec::random_with(t.buf_len, &mut *rng),
            };
            let c1 = mk(pred.left, &mut rng);
            let c2 = mk(pred.right, &mut rng);
            // LHS: all k-bit words lead into ψ.
            let mut lhs = true;
            for w in 0u64..(1u64 << k) {
                let word = BitVec::from_u64(w, k);
                let d1 = c1.step_word(aut, &word);
                let d2 = c2.step_word(aut, &word);
                if !psi.holds(&d1, &d2) {
                    lhs = false;
                    break;
                }
            }
            // RHS: the WP formula holds at (c1, c2); a `None` WP is ⊤.
            let rhs = precondition
                .as_ref()
                .map(|p| p.holds(&c1, &c2))
                .unwrap_or(true);
            assert_eq!(
                lhs,
                rhs,
                "WP mismatch at pred {} for psi {}",
                pred.display(aut),
                psi.display(aut)
            );
        }
    }

    #[test]
    fn wp_buffering_step() {
        let (aut, l, r) = fixture();
        // Successor: left has 2 buffered, right transitioned into r1 after
        // its 1-bit state — with leaps from (l,0)/(r,0), leap = min(3,1)=1.
        let pred = TemplatePair::new(state_t(l, 0), state_t(r, 0));
        let k = leap_size(&aut, &pred, true);
        assert_eq!(k, 1);
        // All successor guards: left buffering to (l,1); right transitions.
        let r1 = aut.state_by_name("r.r1").unwrap();
        let succ = TemplatePair::new(state_t(l, 1), state_t(r1, 0));
        let psi = ConfRel::trivial(succ);
        let got = wp(&aut, &psi, &pred, true).expect("reachable successor");
        assert_eq!(got.guard, pred);
        assert_eq!(got.vars, vec![1]);
        check_wp_equivalence(&aut, &psi, &pred, true);
    }

    #[test]
    fn wp_equivalence_buffer_contents() {
        let (aut, l, r) = fixture();
        let r1 = aut.state_by_name("r.r1").unwrap();
        // ψ relates left buffer (1 bit so far) to the right store's `a`.
        let a = aut.header_by_name("r.a").unwrap();
        let psi = ConfRel {
            guard: TemplatePair::new(state_t(l, 1), state_t(r1, 0)),
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Hdr(Side::Right, a)),
        };
        let pred = TemplatePair::new(state_t(l, 0), state_t(r, 0));
        check_wp_equivalence(&aut, &psi, &pred, true);
    }

    #[test]
    fn wp_transition_step_with_select() {
        let (aut, l, _r) = fixture();
        let r1 = aut.state_by_name("r.r1").unwrap();
        // Pred: left 2 buffered (1 remaining), right r1 with 1 buffered
        // (1 remaining). Leap 1; both sides transition.
        let pred = TemplatePair::new(state_t(l, 2), state_t(r1, 1));
        for succ in [
            TemplatePair::new(Template::accept(), Template::accept()),
            TemplatePair::new(Template::accept(), Template::reject()),
            TemplatePair::new(Template::reject(), Template::accept()),
            TemplatePair::new(Template::reject(), Template::reject()),
        ] {
            let psi = ConfRel::forbidden(succ);
            check_wp_equivalence(&aut, &psi, &pred, true);
        }
    }

    #[test]
    fn wp_respects_store_relations_across_transition() {
        let (aut, l, _r) = fixture();
        let r1 = aut.state_by_name("r.r1").unwrap();
        let h = aut.header_by_name("l.h").unwrap();
        let a = aut.header_by_name("r.a").unwrap();
        // ψ: after both transition to accept, h[0;1] = a.
        let psi = ConfRel {
            guard: TemplatePair::new(Template::accept(), Template::accept()),
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Slice(Box::new(BitExpr::Hdr(Side::Left, h)), 0, 1),
                BitExpr::Hdr(Side::Right, a),
            ),
        };
        let pred = TemplatePair::new(state_t(l, 2), state_t(r1, 1));
        check_wp_equivalence(&aut, &psi, &pred, true);
    }

    #[test]
    fn wp_none_for_unreachable_successor() {
        let (aut, l, r) = fixture();
        // From (l,0)/(r,0) with leap 1, left cannot transition yet.
        let pred = TemplatePair::new(state_t(l, 0), state_t(r, 0));
        let succ = TemplatePair::new(Template::accept(), Template::accept());
        assert!(wp(&aut, &ConfRel::trivial(succ), &pred, true).is_none());
    }

    #[test]
    fn wp_without_leaps_steps_one_bit() {
        let (aut, l, r) = fixture();
        let pred = TemplatePair::new(state_t(l, 0), state_t(r, 0));
        assert_eq!(leap_size(&aut, &pred, false), 1);
        let r1 = aut.state_by_name("r.r1").unwrap();
        let succ = TemplatePair::new(state_t(l, 1), state_t(r1, 0));
        let psi = ConfRel::trivial(succ);
        check_wp_equivalence(&aut, &psi, &pred, false);
    }

    #[test]
    fn wp_from_accept_pair() {
        let (aut, _, _) = fixture();
        let pred = TemplatePair::new(Template::accept(), Template::accept());
        let succ = TemplatePair::new(Template::reject(), Template::reject());
        let psi = ConfRel::trivial(succ);
        let got = wp(&aut, &psi, &pred, true).expect("accept steps to reject");
        assert_eq!(got.guard, pred);
        check_wp_equivalence(&aut, &psi, &pred, true);
        // Accept cannot step to accept.
        let bad = TemplatePair::new(Template::accept(), Template::accept());
        assert!(wp(&aut, &ConfRel::trivial(bad), &pred, true).is_none());
    }

    #[test]
    fn wp_mixed_accept_and_state_with_leap() {
        let (aut, l, _) = fixture();
        // Left at (l,0) (3 remaining), right accepted: leap = 3.
        let pred = TemplatePair::new(state_t(l, 0), Template::accept());
        assert_eq!(leap_size(&aut, &pred, true), 3);
        for succ_l in [Template::accept(), Template::reject()] {
            let succ = TemplatePair::new(succ_l, Template::reject());
            let psi = ConfRel::forbidden(succ);
            check_wp_equivalence(&aut, &psi, &pred, true);
        }
    }

    #[test]
    fn symbolic_ops_extract_and_assign() {
        // One state: extract a(2), extract b(2), out := b ++ a[0:0].
        let mut bld = Builder::new();
        let a = bld.header("a", 2);
        let b = bld.header("b", 2);
        let out = bld.header("out", 3);
        let q = bld.state("q");
        bld.define(
            q,
            vec![
                bld.extract(a),
                bld.extract(b),
                bld.assign(
                    out,
                    Expr::concat(Expr::hdr(b), Expr::slice(Expr::hdr(a), 0, 0)),
                ),
            ],
            bld.goto(Target::Accept),
        );
        let aut = bld.build().unwrap();
        let vars = vec![4usize];
        let ctx = ExprCtx {
            aut: &aut,
            left_buf: 0,
            right_buf: 0,
            var_widths: &vars,
        };
        let full = BitExpr::Var(VarId(0));
        let store = symbolic_ops(&aut, StateId(0), Side::Left, &full, &ctx);
        // a = full[0;2], b = full[2;2], out = full[2;2] ++ full[0;1].
        assert_eq!(
            store[a.0 as usize],
            BitExpr::Slice(Box::new(full.clone()), 0, 2)
        );
        assert_eq!(
            store[b.0 as usize],
            BitExpr::Slice(Box::new(full.clone()), 2, 2)
        );
        match &store[out.0 as usize] {
            BitExpr::Concat(l, r) => {
                assert_eq!(**l, BitExpr::Slice(Box::new(full.clone()), 2, 2));
                assert_eq!(**r, BitExpr::Slice(Box::new(full.clone()), 0, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_condition_first_match() {
        // select(h) { 00 => accept; _ => q } — the q branch requires ¬(h=00).
        let mut bld = Builder::new();
        let h = bld.header("h", 2);
        let q = bld.state("q");
        bld.define(
            q,
            vec![bld.extract(h)],
            bld.select1(
                Expr::hdr(h),
                vec![("00", Target::Accept), ("_", Target::State(q))],
            ),
        );
        let aut = bld.build().unwrap();
        let ctx = ExprCtx {
            aut: &aut,
            left_buf: 0,
            right_buf: 0,
            var_widths: &[],
        };
        let store: Vec<BitExpr> = vec![BitExpr::Hdr(Side::Left, h)];
        let acc = branch_condition(&aut, q, &store, Target::Accept, &ctx);
        assert_eq!(
            acc,
            Pure::Eq(
                BitExpr::Hdr(Side::Left, h),
                BitExpr::Lit("00".parse().unwrap())
            )
        );
        let back = branch_condition(&aut, q, &store, Target::State(q), &ctx);
        assert_eq!(
            back,
            Pure::Not(Box::new(Pure::Eq(
                BitExpr::Hdr(Side::Left, h),
                BitExpr::Lit("00".parse().unwrap())
            )))
        );
        // The wildcard makes reject unreachable via fall-through.
        let rej = branch_condition(&aut, q, &store, Target::Reject, &ctx);
        assert_eq!(rej, Pure::ff());
    }
}
