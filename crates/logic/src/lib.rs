//! The symbolic configuration-relation logic of Leapfrog (paper, §4–§6).
//!
//! Language equivalence of P4 automata is established by computing a
//! *symbolic bisimulation*: a formula over pairs of configurations that is
//! closed under the step function. This crate provides every ingredient of
//! that computation except the top-level worklist (which lives in the
//! `leapfrog` crate):
//!
//! * [`confrel`] — the formula language of Figure 3: bitvector expressions
//!   over the two buffers and stores, state and buffer-length assertions in
//!   *template-guarded* normal form (Definition 4.7), plus packet variables;
//! * [`templates`] — templates `⟨q, n⟩`, leap sizes (Definition 5.3) and
//!   template successors (the abstract interpretation `σ` of §5.1);
//! * [`reach`] — the reachable-template-pair analysis `reach_φ` (§5.1),
//!   with or without leaps (§5.3);
//! * [`mod@wp`] — weakest preconditions `WP<`/`WP>` over template-guarded
//!   formulas (§4.3), generalized to leaps (Theorem 5.7): symbolic
//!   execution of operation blocks and first-match select conditions;
//! * [`lower`] — the compilation chain
//!   `ConfRel → ConfRelSimp → FOL(Conf) → FOL(BV)` (§6.2): template
//!   filtering, store elimination, and the final entailment query
//!   discharged through [`leapfrog_smt`];
//! * [`mod@store`] — the guard-indexed [`RelationStore`]: stage-1 template
//!   filtering as an index lookup instead of a per-query O(|R|) scan, with
//!   `Arc`-shared entries for the parallel frontier.

pub mod confrel;
pub mod incremental;
pub mod lower;
pub mod reach;
pub mod store;
pub mod templates;
pub mod wp;

pub use confrel::{BitExpr, ConfRel, Pure, Side, VarId};
pub use incremental::{GuardSession, SessionPool};
pub use lower::{entails, entails_filtered, EntailmentQuery};
pub use reach::reachable_pairs;
pub use store::RelationStore;
pub use templates::{leap_size, successor_pairs, Template, TemplatePair};
pub use wp::wp;
