//! Reachable template pairs: the abstract-interpretation pruning of §5.1,
//! combined with leaps per §5.3.
//!
//! Computing the precise set of reachable configuration pairs is as hard as
//! equivalence checking itself; instead the analysis tracks only template
//! pairs, applying the successor abstraction `σ` until a fixpoint. The
//! worklist algorithm then only generates initial conditions and weakest
//! preconditions for reachable pairs, which the paper reports as essential
//! ("it did not finish without reachable state pruning").

use std::collections::BTreeSet;

use leapfrog_p4a::ast::Automaton;

use crate::templates::{successor_pairs, TemplatePair};

/// Computes the set of template pairs reachable from `roots` under the
/// leap-successor abstraction (or bit-level successors when `leaps` is
/// false). The result is ordered deterministically.
pub fn reachable_pairs(aut: &Automaton, roots: &[TemplatePair], leaps: bool) -> Vec<TemplatePair> {
    let mut seen: BTreeSet<TemplatePair> = roots.iter().copied().collect();
    let mut work: Vec<TemplatePair> = roots.to_vec();
    while let Some(p) = work.pop() {
        for s in successor_pairs(aut, &p, leaps) {
            if seen.insert(s) {
                work.push(s);
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Template;
    use leapfrog_p4a::ast::{Expr, Target};
    use leapfrog_p4a::builder::Builder;
    use leapfrog_p4a::sum::sum;

    /// Left: one 4-bit state, accept if 0xF. Right: two 2-bit states.
    fn fixture() -> (Automaton, TemplatePair) {
        let mut bl = Builder::new();
        let h = bl.header("h", 4);
        let l0 = bl.state("l0");
        bl.define(
            l0,
            vec![bl.extract(h)],
            bl.select1(Expr::hdr(h), vec![("1111", Target::Accept)]),
        );
        let left = bl.build().unwrap();

        let mut br = Builder::new();
        let a = br.header("a", 2);
        let b2 = br.header("b", 2);
        let r0 = br.state("r0");
        let r1 = br.state("r1");
        br.define(r0, vec![br.extract(a)], br.goto(Target::State(r1)));
        br.define(
            r1,
            vec![br.extract(b2)],
            br.select1(
                Expr::concat(Expr::hdr(a), Expr::hdr(b2)),
                vec![("1111", Target::Accept)],
            ),
        );
        let right = br.build().unwrap();
        let s = sum(&left, &right);
        let root = TemplatePair::new(
            Template::start(s.left_state(left.state_by_name("l0").unwrap())),
            Template::start(s.right_state(right.state_by_name("r0").unwrap())),
        );
        (s.automaton, root)
    }

    #[test]
    fn leaps_skip_buffering_pairs() {
        let (aut, root) = fixture();
        let reach = reachable_pairs(&aut, &[root], true);
        // With leaps, the first joint transition is at bit 2 (right's r0
        // completes): (l0,0)/(r0,0) → (l0,2)/(r1,0) → transitions at bit 4.
        assert!(reach.contains(&root));
        let l0 = aut.state_by_name("l.l0").unwrap();
        let r1 = aut.state_by_name("r.r1").unwrap();
        let mid = TemplatePair::new(
            Template {
                target: Target::State(l0),
                buf_len: 2,
            },
            Template::start(r1),
        );
        assert!(reach.contains(&mid));
        // The pure-buffering pair (l0,1)/(r0,1) is skipped by leaps…
        let skipped = TemplatePair::new(
            Template {
                target: Target::State(l0),
                buf_len: 1,
            },
            Template {
                target: Target::State(aut.state_by_name("r.r0").unwrap()),
                buf_len: 1,
            },
        );
        assert!(!reach.contains(&skipped));
        // …but visited without leaps.
        let reach_slow = reachable_pairs(&aut, &[root], false);
        assert!(reach_slow.contains(&skipped));
        assert!(reach_slow.len() > reach.len());
    }

    #[test]
    fn terminal_pairs_loop_on_reject() {
        let (aut, root) = fixture();
        let reach = reachable_pairs(&aut, &[root], true);
        let rr = TemplatePair::new(Template::reject(), Template::reject());
        assert!(reach.contains(&rr));
        // reject/reject is a fixpoint.
        assert_eq!(successor_pairs(&aut, &rr, true), vec![rr]);
    }

    #[test]
    fn deterministic_order() {
        let (aut, root) = fixture();
        let a = reachable_pairs(&aut, &[root], true);
        let b = reachable_pairs(&aut, &[root], true);
        assert_eq!(a, b);
    }
}
