//! The lowering chain `ConfRel → ConfRelSimp → FOL(Conf) → FOL(BV)`
//! (paper, §6.2) and the entailment check it feeds (§6.3).
//!
//! An entailment `⋀ᵢ (tᵢ ⇒ ψᵢ) ⊨ (t ⇒ ψ)` between template-guarded
//! relations is decided in three verified-in-the-paper stages:
//!
//! 1. **Template filtering** (`ConfRelSimp`): guards are mutually
//!    exclusive — a configuration pair matches exactly one template pair —
//!    so premises with a guard other than the conclusion's are vacuous and
//!    are discarded.
//! 2. **FOL(Conf)**: state and buffer-length assertions disappear; what
//!    remains is a first-order formula over the two buffers (with widths
//!    fixed by the guard) and the two stores.
//! 3. **Store elimination** (`FOL(BV)`): the finite-map store becomes one
//!    bitvector variable per (side, header); each premise's packet
//!    variables are universally quantified, the conclusion's are left free
//!    (free variables of a validity query are universal).
//!
//! The final formula `(⋀ᵢ ∀x⃗ᵢ. ψᵢ) ⇒ ψ` is passed to
//! [`leapfrog_smt::check_valid`] (or an [`SmtSolver`] for statistics and
//! SMT-LIB dumping).

use std::collections::HashMap;

use leapfrog_p4a::ast::{Automaton, HeaderId};
use leapfrog_smt::{BvVar, CheckResult, Declarations, Formula, SmtSolver, Term};

use crate::confrel::{BitExpr, ConfRel, Pure, Side};

/// A fully lowered entailment query: the `FOL(BV)` validity problem plus
/// its variable table. Useful for inspection, SMT-LIB dumping and tests.
#[derive(Debug, Clone)]
pub struct EntailmentQuery {
    /// Variable declarations for the query.
    pub decls: Declarations,
    /// The validity goal `(⋀ᵢ ∀x⃗ᵢ. ψᵢ) ⇒ ψ`.
    pub goal: Formula,
    /// How many premises survived template filtering.
    pub filtered_premises: usize,
    /// How each configuration-level object maps onto `FOL(BV)` variables —
    /// the inverse of store elimination, needed to lift countermodels back
    /// into concrete stores and packets (the counterexample engine).
    pub vars: LoweredVars,
}

/// The variable mapping produced by store elimination (stage 3): which
/// `FOL(BV)` variable stands for each buffer, header, and conclusion
/// packet variable. Premise packet variables are universally quantified
/// inside the goal and never appear in countermodels, so they are not
/// tracked here.
#[derive(Debug, Clone, Default)]
pub struct LoweredVars {
    /// The left/right buffer variables, when the guard gives them nonzero
    /// width and the formula mentions them.
    pub bufs: [Option<BvVar>; 2],
    /// One variable per `(side, header)` pair mentioned by the formulas.
    pub headers: Vec<((Side, HeaderId), BvVar)>,
    /// The conclusion's packet variables `y_j`, in [`ConfRel::vars`] order.
    /// These stay free in the validity goal, so an invalidity countermodel
    /// assigns them the concrete packet bits of the refutation.
    pub conclusion_vars: Vec<BvVar>,
}

/// Decides `⋀ premises ⊨ conclusion` using a stateful solver (records
/// statistics, honours `LEAPFROG_DUMP_SMT`).
pub fn entails(
    aut: &Automaton,
    premises: &[ConfRel],
    conclusion: &ConfRel,
    solver: &mut SmtSolver,
) -> bool {
    let q = lower(aut, premises, conclusion);
    matches!(solver.check_valid(&q.decls, &q.goal), CheckResult::Valid)
}

/// Decides `⋀ premises ⊨ conclusion` statelessly.
pub fn entails_stateless(aut: &Automaton, premises: &[ConfRel], conclusion: &ConfRel) -> bool {
    let q = lower(aut, premises, conclusion);
    matches!(
        leapfrog_smt::check_valid(&q.decls, &q.goal),
        CheckResult::Valid
    )
}

/// Decides `⋀ premises ⊨ conclusion` for premises that are *already*
/// guard-filtered (stage 1 done by the caller — e.g. fetched from a
/// [`crate::store::RelationStore`] in O(matching) instead of O(|R|)).
pub fn entails_filtered(
    aut: &Automaton,
    relevant: &[&ConfRel],
    conclusion: &ConfRel,
    solver: &mut SmtSolver,
) -> bool {
    let q = lower_filtered(aut, relevant, conclusion);
    matches!(solver.check_valid(&q.decls, &q.goal), CheckResult::Valid)
}

/// Runs the full lowering chain, producing the `FOL(BV)` query.
pub fn lower(aut: &Automaton, premises: &[ConfRel], conclusion: &ConfRel) -> EntailmentQuery {
    // Stage 1: template filtering.
    let relevant: Vec<&ConfRel> = premises
        .iter()
        .filter(|p| p.guard == conclusion.guard)
        .collect();
    lower_filtered(aut, &relevant, conclusion)
}

/// Stages 2+3 of the lowering chain for premises already filtered to the
/// conclusion's guard. The pre-filtered entry point of the guard-indexed
/// pipeline: callers holding a [`crate::store::RelationStore`] skip the
/// per-query O(|R|) scan entirely.
pub fn lower_filtered(
    aut: &Automaton,
    relevant: &[&ConfRel],
    conclusion: &ConfRel,
) -> EntailmentQuery {
    debug_assert!(
        relevant.iter().all(|p| p.guard == conclusion.guard),
        "lower_filtered requires stage-1 filtered premises"
    );

    // Stage 2 + 3: build the FOL(BV) signature for this guard.
    let mut decls = Declarations::new();
    let mut env = LowerEnv {
        buf: [None, None],
        headers: HashMap::new(),
        vars: Vec::new(),
        guard_left: conclusion.guard.left.buf_len,
        guard_right: conclusion.guard.right.buf_len,
    };

    // Premises: each gets fresh universally quantified packet variables.
    let mut premise_formulas = Vec::new();
    for (i, p) in relevant.iter().enumerate() {
        let xs: Vec<BvVar> = p
            .vars
            .iter()
            .enumerate()
            .map(|(j, w)| decls.declare(format!("x{i}_{j}"), *w))
            .collect();
        env.vars = xs.clone();
        let body = lower_pure(aut, &p.phi, &mut decls, &mut env);
        let quantified: Vec<BvVar> = xs.into_iter().filter(|v| decls.width(*v) > 0).collect();
        premise_formulas.push(Formula::forall(quantified, body));
    }

    // Conclusion: its packet variables stay free (validity quantifies them
    // universally at the top level).
    let ys: Vec<BvVar> = conclusion
        .vars
        .iter()
        .enumerate()
        .map(|(j, w)| decls.declare(format!("y{j}"), *w))
        .collect();
    env.vars = ys.clone();
    let concl = lower_pure(aut, &conclusion.phi, &mut decls, &mut env);

    let goal = Formula::implies(Formula::and_all(premise_formulas), concl);
    let vars = LoweredVars {
        bufs: env.buf,
        headers: env.headers.iter().map(|(k, v)| (*k, *v)).collect(),
        conclusion_vars: ys,
    };
    EntailmentQuery {
        decls,
        goal,
        filtered_premises: relevant.len(),
        vars,
    }
}

pub(crate) struct LowerEnv {
    /// Lazily declared buffer variables (left, right).
    pub(crate) buf: [Option<BvVar>; 2],
    /// Lazily declared store variables, keyed by (side, header).
    pub(crate) headers: HashMap<(Side, HeaderId), BvVar>,
    /// The current formula's packet variables.
    pub(crate) vars: Vec<BvVar>,
    pub(crate) guard_left: usize,
    pub(crate) guard_right: usize,
}

impl LowerEnv {
    fn buf_var(&mut self, decls: &mut Declarations, side: Side, width: usize) -> BvVar {
        let idx = match side {
            Side::Left => 0,
            Side::Right => 1,
        };
        if let Some(v) = self.buf[idx] {
            return v;
        }
        let v = decls.declare(format!("buf{}", side.symbol()), width);
        self.buf[idx] = Some(v);
        v
    }

    fn header_var(
        &mut self,
        decls: &mut Declarations,
        aut: &Automaton,
        side: Side,
        h: HeaderId,
    ) -> BvVar {
        if let Some(v) = self.headers.get(&(side, h)) {
            return *v;
        }
        let v = decls.declare(
            format!("{}{}", aut.header_name(h), side.symbol()),
            aut.header_size(h),
        );
        self.headers.insert((side, h), v);
        v
    }
}

pub(crate) fn lower_pure(
    aut: &Automaton,
    p: &Pure,
    decls: &mut Declarations,
    env: &mut LowerEnv,
) -> Formula {
    match p {
        Pure::Const(b) => Formula::Const(*b),
        Pure::Eq(a, b) => Formula::eq(
            lower_expr(aut, a, decls, env),
            lower_expr(aut, b, decls, env),
        ),
        Pure::Not(q) => Formula::not(lower_pure(aut, q, decls, env)),
        Pure::And(a, b) => Formula::and(
            lower_pure(aut, a, decls, env),
            lower_pure(aut, b, decls, env),
        ),
        Pure::Or(a, b) => Formula::or(
            lower_pure(aut, a, decls, env),
            lower_pure(aut, b, decls, env),
        ),
        Pure::Implies(a, b) => Formula::implies(
            lower_pure(aut, a, decls, env),
            lower_pure(aut, b, decls, env),
        ),
    }
}

fn lower_expr(aut: &Automaton, e: &BitExpr, decls: &mut Declarations, env: &mut LowerEnv) -> Term {
    match e {
        BitExpr::Lit(bv) => Term::lit(bv.clone()),
        BitExpr::Buf(side) => {
            let width = match side {
                Side::Left => env.guard_left,
                Side::Right => env.guard_right,
            };
            if width == 0 {
                Term::empty()
            } else {
                Term::var(env.buf_var(decls, *side, width))
            }
        }
        BitExpr::Hdr(side, h) => {
            if aut.header_size(*h) == 0 {
                Term::empty()
            } else {
                Term::var(env.header_var(decls, aut, *side, *h))
            }
        }
        BitExpr::Var(v) => {
            let bv = env.vars[v.0 as usize];
            if decls.width(bv) == 0 {
                Term::empty()
            } else {
                Term::var(bv)
            }
        }
        BitExpr::Slice(inner, start, len) => {
            Term::slice(lower_expr(aut, inner, decls, env), *start, *len)
        }
        BitExpr::Concat(a, b) => Term::concat(
            lower_expr(aut, a, decls, env),
            lower_expr(aut, b, decls, env),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confrel::VarId;
    use crate::templates::{Template, TemplatePair};
    use leapfrog_bitvec::BitVec;
    use leapfrog_p4a::ast::{StateId, Target};
    use leapfrog_p4a::builder::Builder;

    fn aut() -> Automaton {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let g = b.header("g", 4);
        let q = b.state("q");
        b.define(q, vec![b.extract(h), b.extract(g)], b.goto(Target::Accept));
        b.build().unwrap()
    }

    fn guard(lbuf: usize, rbuf: usize) -> TemplatePair {
        TemplatePair::new(
            Template {
                target: Target::State(StateId(0)),
                buf_len: lbuf,
            },
            Template {
                target: Target::State(StateId(0)),
                buf_len: rbuf,
            },
        )
    }

    fn buf_eq_rel(g: TemplatePair) -> ConfRel {
        ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        }
    }

    #[test]
    fn premise_entails_itself() {
        let a = aut();
        let rel = buf_eq_rel(guard(3, 3));
        assert!(entails_stateless(&a, std::slice::from_ref(&rel), &rel));
    }

    #[test]
    fn buffer_equality_entails_slice_equality() {
        let a = aut();
        let g = guard(3, 3);
        let premise = buf_eq_rel(g);
        let conclusion = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 1, 2),
                BitExpr::Slice(Box::new(BitExpr::Buf(Side::Right)), 1, 2),
            ),
        };
        assert!(entails_stateless(&a, &[premise], &conclusion));
        // But not the converse.
        let premise2 = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 1, 2),
                BitExpr::Slice(Box::new(BitExpr::Buf(Side::Right)), 1, 2),
            ),
        };
        assert!(!entails_stateless(
            &a,
            std::slice::from_ref(&premise2),
            &buf_eq_rel(g)
        ));
    }

    #[test]
    fn template_filtering_drops_other_guards() {
        let a = aut();
        // A premise at a different guard must not help.
        let premise = buf_eq_rel(guard(2, 2));
        let conclusion = buf_eq_rel(guard(3, 3));
        let q = lower(&a, std::slice::from_ref(&premise), &conclusion);
        assert_eq!(q.filtered_premises, 0);
        assert!(!entails_stateless(&a, &[premise], &conclusion));
    }

    #[test]
    fn false_premise_entails_anything() {
        let a = aut();
        let g = guard(1, 1);
        let premise = ConfRel::forbidden(g);
        let conclusion = buf_eq_rel(g);
        assert!(entails_stateless(&a, &[premise], &conclusion));
    }

    #[test]
    fn quantified_premise_cancellation() {
        // (∀x. buf< ++ x = buf> ++ x) entails buf< = buf>.
        let a = aut();
        let g = guard(2, 2);
        let premise = ConfRel {
            guard: g,
            vars: vec![3],
            phi: Pure::eq(
                BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
            ),
        };
        assert!(entails_stateless(&a, &[premise], &buf_eq_rel(g)));
    }

    #[test]
    fn conclusion_variables_are_universal() {
        // Conclusion ∀y. y = 0 must be invalid even with a true premise.
        let a = aut();
        let g = guard(1, 1);
        let premise = ConfRel::trivial(g);
        let conclusion = ConfRel {
            guard: g,
            vars: vec![2],
            phi: Pure::eq(BitExpr::Var(VarId(0)), BitExpr::Lit(BitVec::zeros(2))),
        };
        assert!(!entails_stateless(&a, &[premise], &conclusion));
    }

    #[test]
    fn store_relations_lower_correctly() {
        // h< = g> as premise entails h<[0;2] = g>[0;2].
        let a = aut();
        let h = a.header_by_name("h").unwrap();
        let gh = a.header_by_name("g").unwrap();
        let g = guard(1, 1);
        let premise = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, gh)),
        };
        let conclusion = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Slice(Box::new(BitExpr::Hdr(Side::Left, h)), 0, 2),
                BitExpr::Slice(Box::new(BitExpr::Hdr(Side::Right, gh)), 0, 2),
            ),
        };
        assert!(entails_stateless(
            &a,
            std::slice::from_ref(&premise),
            &conclusion
        ));
        // Same-named header on opposite sides are distinct variables:
        // h< = g> does not entail h> = g>.
        let wrong = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Hdr(Side::Right, h), BitExpr::Hdr(Side::Right, gh)),
        };
        assert!(!entails_stateless(&a, &[premise], &wrong));
    }

    #[test]
    fn zero_width_buffer_lowers_to_empty() {
        let a = aut();
        let g = guard(0, 0);
        // buf< = buf> at width 0 is trivially true.
        let conclusion = buf_eq_rel(g);
        assert!(entails_stateless(&a, &[], &conclusion));
    }

    #[test]
    fn query_is_dumpable_as_smtlib() {
        let a = aut();
        let g = guard(2, 2);
        let premise = ConfRel {
            guard: g,
            vars: vec![1],
            phi: Pure::eq(
                BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
            ),
        };
        let q = lower(&a, &[premise], &buf_eq_rel(g));
        let text = leapfrog_smt::smtlib::validity_query(&q.decls, &q.goal);
        assert!(text.contains("(forall ((x0_0 (_ BitVec 1)))"));
        assert!(text.contains("declare-const buf<"));
        let opens = text.chars().filter(|&c| c == '(').count();
        let closes = text.chars().filter(|&c| c == ')').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn multiple_premises_combine() {
        let a = aut();
        let h = a.header_by_name("h").unwrap();
        let gh = a.header_by_name("g").unwrap();
        let g = guard(1, 1);
        let p1 = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, h)),
        };
        let p2 = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Hdr(Side::Right, h), BitExpr::Hdr(Side::Right, gh)),
        };
        let conclusion = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, gh)),
        };
        assert!(entails_stateless(
            &a,
            &[p1.clone(), p2.clone()],
            &conclusion
        ));
        assert!(!entails_stateless(&a, &[p1], &conclusion));
        assert!(!entails_stateless(&a, &[p2], &conclusion));
    }
}
