//! The guard-indexed relation store.
//!
//! Algorithm 1 keeps the growing relation `R` and, at every frontier pop,
//! decides `⋀R ⊨ ψ`. Stage-1 template filtering (§6.2) makes that
//! entailment depend *only* on the premises whose guard equals `ψ`'s —
//! guards are mutually exclusive, so every other premise is vacuous and is
//! discarded before lowering. A flat `Vec<ConfRel>` therefore pays an
//! O(|R|) scan per pop just to throw most of `R` away.
//!
//! [`RelationStore`] replaces the flat vector: relations are kept in
//! insertion order (so the certificate's `R` is byte-identical to the
//! historical behaviour) *and* indexed by [`TemplatePair`] guard, so the
//! premise set for an entailment check is fetched in O(matching). Entries
//! are `Arc`-shared: the provenance table, the dedup map, and the store
//! reference the same allocation, and the store can be borrowed immutably
//! by worker threads during a parallel frontier batch.

use std::collections::HashMap;
use std::sync::Arc;

use crate::confrel::ConfRel;
use crate::templates::TemplatePair;

/// The relation `R`, ordered by insertion and indexed by guard.
#[derive(Debug, Clone, Default)]
pub struct RelationStore {
    rels: Vec<Arc<ConfRel>>,
    by_guard: HashMap<TemplatePair, Vec<u32>>,
}

impl RelationStore {
    /// An empty store.
    pub fn new() -> RelationStore {
        RelationStore::default()
    }

    /// Number of relations stored.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Appends a relation (insertion order is preserved by [`Self::iter`]
    /// and [`Self::to_vec`]).
    pub fn push(&mut self, rel: Arc<ConfRel>) {
        let idx = self.rels.len() as u32;
        self.by_guard.entry(rel.guard).or_default().push(idx);
        self.rels.push(rel);
    }

    /// The premises whose guard equals `guard`, in insertion order — the
    /// exact set stage-1 template filtering would keep from a linear scan.
    pub fn matching(&self, guard: TemplatePair) -> Vec<&ConfRel> {
        match self.by_guard.get(&guard) {
            Some(ids) => ids.iter().map(|&i| &*self.rels[i as usize]).collect(),
            None => Vec::new(),
        }
    }

    /// How many premises match `guard`, without materializing them.
    pub fn matching_count(&self, guard: TemplatePair) -> usize {
        self.by_guard.get(&guard).map_or(0, Vec::len)
    }

    /// Iterates over all relations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &ConfRel> {
        self.rels.iter().map(|r| &**r)
    }

    /// Clones the relations out, in insertion order (certificate emission).
    pub fn to_vec(&self) -> Vec<ConfRel> {
        self.rels.iter().map(|r| (**r).clone()).collect()
    }

    /// Number of distinct guards currently indexed.
    pub fn guard_count(&self) -> usize {
        self.by_guard.len()
    }
}

impl FromIterator<ConfRel> for RelationStore {
    fn from_iter<T: IntoIterator<Item = ConfRel>>(iter: T) -> Self {
        let mut store = RelationStore::new();
        for rel in iter {
            store.push(Arc::new(rel));
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confrel::{BitExpr, Pure, Side};
    use crate::templates::Template;
    use leapfrog_p4a::ast::{StateId, Target};

    fn guard(n: usize) -> TemplatePair {
        TemplatePair::new(
            Template {
                target: Target::State(StateId(0)),
                buf_len: n,
            },
            Template {
                target: Target::State(StateId(0)),
                buf_len: n,
            },
        )
    }

    fn rel(n: usize, phi: Pure) -> ConfRel {
        ConfRel {
            guard: guard(n),
            vars: vec![],
            phi,
        }
    }

    #[test]
    fn matching_returns_only_same_guard_in_insertion_order() {
        let mut s = RelationStore::new();
        let a = rel(1, Pure::ff());
        let b = rel(2, Pure::tt());
        let c = rel(
            1,
            Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        );
        s.push(Arc::new(a.clone()));
        s.push(Arc::new(b.clone()));
        s.push(Arc::new(c.clone()));
        assert_eq!(s.len(), 3);
        assert_eq!(s.guard_count(), 2);
        let m = s.matching(guard(1));
        assert_eq!(m.len(), 2);
        assert_eq!(*m[0], a);
        assert_eq!(*m[1], c);
        assert_eq!(s.matching_count(guard(2)), 1);
        assert_eq!(s.matching_count(guard(3)), 0);
        assert!(s.matching(guard(3)).is_empty());
    }

    #[test]
    fn matching_equals_linear_scan_filter() {
        // The index must agree with the historical linear filter on an
        // arbitrary interleaving of guards.
        let rels: Vec<ConfRel> = (0..20)
            .map(|i| rel(i % 4, if i % 2 == 0 { Pure::tt() } else { Pure::ff() }))
            .collect();
        let store: RelationStore = rels.iter().cloned().collect();
        for g in 0..5 {
            let linear: Vec<&ConfRel> = rels.iter().filter(|r| r.guard == guard(g)).collect();
            let indexed = store.matching(guard(g));
            assert_eq!(linear.len(), indexed.len());
            for (l, i) in linear.iter().zip(indexed.iter()) {
                assert_eq!(**l, **i);
            }
        }
    }

    #[test]
    fn to_vec_preserves_insertion_order() {
        let rels: Vec<ConfRel> = (0..7).map(|i| rel(i % 3, Pure::tt())).collect();
        let store: RelationStore = rels.iter().cloned().collect();
        assert_eq!(store.to_vec(), rels);
        let collected: Vec<ConfRel> = store.iter().cloned().collect();
        assert_eq!(collected, rels);
    }
}
