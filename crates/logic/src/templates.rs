//! Templates, leap sizes and template successors (paper, Definitions 4.7
//! and 5.3, and the abstract interpretation `σ` of §5.1).
//!
//! A template `⟨q, n⟩` abstracts a configuration by its control location and
//! buffer length. The step function's effect on templates is deterministic
//! in the buffer length and, at transition boundaries, branches over the
//! transition block's possible targets — this is the abstraction `σ` used
//! for reachability pruning.

use leapfrog_p4a::ast::{Automaton, Target};

/// A template `⟨q, n⟩`: control location plus buffer length, with
/// `n < ‖op(q)‖` for proper states and `n = 0` otherwise (Definition 4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Template {
    /// The control location.
    pub target: Target,
    /// The buffer length.
    pub buf_len: usize,
}

impl Template {
    /// The template of an initial configuration at state `q`.
    pub fn start(q: leapfrog_p4a::ast::StateId) -> Template {
        Template {
            target: Target::State(q),
            buf_len: 0,
        }
    }

    /// The `accept` template `⟨accept, 0⟩`.
    pub fn accept() -> Template {
        Template {
            target: Target::Accept,
            buf_len: 0,
        }
    }

    /// The `reject` template `⟨reject, 0⟩`.
    pub fn reject() -> Template {
        Template {
            target: Target::Reject,
            buf_len: 0,
        }
    }

    /// Whether this is the accepting template (Lemma 4.10's `t_accept`).
    pub fn is_accepting(&self) -> bool {
        self.target == Target::Accept
    }

    /// Bits remaining until this template's state transitions: for a proper
    /// state, `‖op(q)‖ - n`; for `accept`/`reject`, 1 (they step every bit).
    pub fn remaining(&self, aut: &Automaton) -> usize {
        match self.target {
            Target::State(q) => aut.op_size(q) - self.buf_len,
            Target::Accept | Target::Reject => 1,
        }
    }

    /// The successor templates after consuming `k` bits, `k ≤ remaining`.
    /// Deterministic while buffering; branches over transition targets at
    /// the boundary.
    pub fn successors(&self, aut: &Automaton, k: usize) -> Vec<Template> {
        debug_assert!(k >= 1);
        match self.target {
            Target::Accept | Target::Reject => vec![Template::reject()],
            Target::State(q) => {
                let rem = aut.op_size(q) - self.buf_len;
                debug_assert!(k <= rem, "leap {k} exceeds remaining {rem}");
                if k < rem {
                    vec![Template {
                        target: self.target,
                        buf_len: self.buf_len + k,
                    }]
                } else {
                    aut.state(q)
                        .trans
                        .targets()
                        .into_iter()
                        .map(|t| Template {
                            target: t,
                            buf_len: 0,
                        })
                        .collect()
                }
            }
        }
    }

    /// Renders the template with state names.
    pub fn display(&self, aut: &Automaton) -> String {
        format!("⟨{}, {}⟩", aut.target_name(self.target), self.buf_len)
    }
}

/// A pair of templates, abstracting a pair of configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplatePair {
    /// The left template.
    pub left: Template,
    /// The right template.
    pub right: Template,
}

impl TemplatePair {
    /// Constructs a pair.
    pub fn new(left: Template, right: Template) -> TemplatePair {
        TemplatePair { left, right }
    }

    /// Renders the pair with state names.
    pub fn display(&self, aut: &Automaton) -> String {
        format!("{} / {}", self.left.display(aut), self.right.display(aut))
    }
}

/// The leap size `♯(c1, c2)` of Definition 5.3, which depends only on the
/// templates. With `leaps` disabled this is the bit-by-bit step size 1.
pub fn leap_size(aut: &Automaton, pair: &TemplatePair, leaps: bool) -> usize {
    if !leaps {
        return 1;
    }
    match (pair.left.target, pair.right.target) {
        (Target::State(_), Target::State(_)) => {
            pair.left.remaining(aut).min(pair.right.remaining(aut))
        }
        (Target::State(_), _) => pair.left.remaining(aut),
        (_, Target::State(_)) => pair.right.remaining(aut),
        _ => 1,
    }
}

/// The successor pairs of `pair` after one leap (or one bit when `leaps` is
/// false): the product of per-side successors.
pub fn successor_pairs(aut: &Automaton, pair: &TemplatePair, leaps: bool) -> Vec<TemplatePair> {
    let k = leap_size(aut, pair, leaps);
    let ls = pair.left.successors(aut, k.min(pair.left.remaining(aut)));
    let rs = pair.right.successors(aut, k.min(pair.right.remaining(aut)));
    let mut out = Vec::with_capacity(ls.len() * rs.len());
    for l in &ls {
        for r in &rs {
            out.push(TemplatePair::new(*l, *r));
        }
    }
    out
}

/// All templates of an automaton (finite: `Σ_q ‖op(q)‖` plus two).
pub fn all_templates(aut: &Automaton) -> Vec<Template> {
    let mut out = Vec::new();
    for q in aut.state_ids() {
        for n in 0..aut.op_size(q) {
            out.push(Template {
                target: Target::State(q),
                buf_len: n,
            });
        }
    }
    out.push(Template::accept());
    out.push(Template::reject());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::ast::{Expr, Pattern};
    use leapfrog_p4a::builder::Builder;

    fn two_state() -> Automaton {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let g = b.header("g", 2);
        let q1 = b.state("q1");
        let q2 = b.state("q2");
        b.define(
            q1,
            vec![b.extract(h)],
            b.select(
                vec![Expr::hdr(h)],
                vec![
                    (vec![Pattern::exact_str("0000")], Target::State(q2)),
                    (vec![Pattern::Wildcard], Target::Accept),
                ],
            ),
        );
        b.define(q2, vec![b.extract(g)], b.goto(Target::Accept));
        b.build().unwrap()
    }

    #[test]
    fn remaining_and_successors_buffering() {
        let aut = two_state();
        let q1 = aut.state_by_name("q1").unwrap();
        let t = Template {
            target: Target::State(q1),
            buf_len: 1,
        };
        assert_eq!(t.remaining(&aut), 3);
        assert_eq!(
            t.successors(&aut, 1),
            vec![Template {
                target: Target::State(q1),
                buf_len: 2
            }]
        );
    }

    #[test]
    fn successors_at_boundary_branch_over_targets() {
        let aut = two_state();
        let q1 = aut.state_by_name("q1").unwrap();
        let q2 = aut.state_by_name("q2").unwrap();
        let t = Template {
            target: Target::State(q1),
            buf_len: 3,
        };
        let succs = t.successors(&aut, 1);
        assert!(succs.contains(&Template::start(q2)));
        assert!(succs.contains(&Template::accept()));
        assert_eq!(succs.len(), 2); // exhaustive select: no reject successor
    }

    #[test]
    fn accept_steps_to_reject() {
        let aut = two_state();
        assert_eq!(
            Template::accept().successors(&aut, 1),
            vec![Template::reject()]
        );
        assert_eq!(
            Template::reject().successors(&aut, 1),
            vec![Template::reject()]
        );
    }

    #[test]
    fn leap_size_cases() {
        let aut = two_state();
        let q1 = aut.state_by_name("q1").unwrap();
        let q2 = aut.state_by_name("q2").unwrap();
        let s = |q, n| Template {
            target: Target::State(q),
            buf_len: n,
        };
        // Both states: min of remainders.
        let p = TemplatePair::new(s(q1, 1), s(q2, 0));
        assert_eq!(leap_size(&aut, &p, true), 2); // min(3, 2)
                                                  // One state, one accept: the state's remainder.
        let p = TemplatePair::new(s(q1, 0), Template::accept());
        assert_eq!(leap_size(&aut, &p, true), 4);
        // Both pseudo-states: 1.
        let p = TemplatePair::new(Template::accept(), Template::reject());
        assert_eq!(leap_size(&aut, &p, true), 1);
        // Leaps disabled: always 1.
        let p = TemplatePair::new(s(q1, 0), s(q2, 0));
        assert_eq!(leap_size(&aut, &p, false), 1);
    }

    #[test]
    fn successor_pairs_product() {
        let aut = two_state();
        let q1 = aut.state_by_name("q1").unwrap();
        let s = |q, n| Template {
            target: Target::State(q),
            buf_len: n,
        };
        // Left q1 with 3 buffered (1 remaining), right accept: leap 1;
        // left branches two ways, right goes to reject.
        let p = TemplatePair::new(s(q1, 3), Template::accept());
        let succs = successor_pairs(&aut, &p, true);
        assert_eq!(succs.len(), 2);
        assert!(succs.iter().all(|sp| sp.right == Template::reject()));
    }

    #[test]
    fn all_templates_counts() {
        let aut = two_state();
        // q1 has 4 templates (n = 0..3), q2 has 2, plus accept and reject.
        assert_eq!(all_templates(&aut).len(), 4 + 2 + 2);
    }
}
