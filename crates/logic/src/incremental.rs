//! Per-guard incremental entailment sessions.
//!
//! Algorithm 1 decides `⋀R ⊨ ψ` once per frontier pop, and after stage-1
//! template filtering the premise set is exactly `R`'s same-guard slice —
//! which only ever *grows*. The one-shot pipeline
//! ([`crate::lower::entails_filtered`]) re-lowers, re-blasts and re-solves
//! that entire premise set for every query; a [`GuardSession`] keeps one
//! persistent [`BlastContext`] per guard instead:
//!
//! * **Premises are asserted once.** New same-guard relations are lowered
//!   and their seed instantiations asserted permanently when they first
//!   appear; earlier premises' clauses (and every clause the CDCL solver
//!   has learnt about them) carry over to all later queries.
//! * **Conclusions are activation-gated.** Each query blasts only its own
//!   `¬ψ`, gated behind a fresh activation literal; the solver runs under
//!   that assumption and the literal is retired afterwards, so per-query
//!   clauses never pollute later queries.
//! * **CEGAR instantiations persist.** A quantifier instantiation
//!   discovered while refuting one candidate model is an instance of a
//!   true premise, so it is asserted permanently and never re-discovered.
//! * **Model validation is variable-indexed and batched.** The session
//!   keeps one [`RefinementOracle`] alive across queries: each `∀`-premise
//!   is indexed by the support variables it constrains, so a candidate
//!   model only re-validates the blocks whose support valuation changed
//!   since their last clean validation, and all violated blocks of a round
//!   refine the context in a single batched assert.
//! * **Contexts are clause-budgeted.** Activation-retired per-query
//!   clauses accumulate in the CDCL solver forever; when the retired count
//!   exceeds `gc_ratio ×` the live (permanent) count, the session
//!   transparently rebuilds a fresh [`BlastContext`] from its persisted
//!   permanent-formula list — premise seeds *and* every CEGAR
//!   instantiation discovered so far — so no refinement work is lost.
//!   `Options::session_gc_ratio` / `LEAPFROG_SESSION_GC` configure the
//!   ratio (`0` disables GC).
//!
//! Verdicts are exact booleans (the CEGAR loop validates any candidate
//! model against the *true* `∀`-premises), so sessions are freely mixed
//! with the one-shot pipeline and across worker threads — and GC may fire
//! at any point — without affecting results, only wall-clock time and
//! memory.

use std::collections::HashMap;
use std::time::Instant;

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::Automaton;
use leapfrog_smt::{
    instantiate_forall, BBit, BlastContext, BvVar, Declarations, Formula, InstLedger,
    PortfolioConfig, PortfolioStats, QueryStats, RefinementOracle, SharedBlastCache, SolverStats,
};

use crate::confrel::ConfRel;
use crate::lower::{lower_pure, LowerEnv};
use crate::templates::TemplatePair;

/// Global metric handles for the incremental-session layer. These run
/// alongside the per-session [`QueryStats`]: the session stats feed
/// per-run `RunStats`, the globals feed the daemon's live registry.
mod meters {
    use leapfrog_obs::{LazyCounter, LazyHistogram};

    pub static GUARD_CHECKS: LazyCounter = LazyCounter::new("leapfrog_guard_checks_total");
    pub static CEGAR_ROUNDS: LazyCounter = LazyCounter::new("leapfrog_cegar_rounds_total");
    pub static SESSION_REBUILDS: LazyCounter = LazyCounter::new("leapfrog_session_rebuilds_total");
    pub static SESSION_EVICTIONS: LazyCounter =
        LazyCounter::new("leapfrog_session_evictions_total");
    pub static BLAST_CACHE_HITS: LazyCounter = LazyCounter::new("leapfrog_blast_cache_hits_total");
    pub static BLAST_CACHE_MISSES: LazyCounter =
        LazyCounter::new("leapfrog_blast_cache_misses_total");
    pub static GUARD_CHECK_SECONDS: LazyHistogram =
        LazyHistogram::new("leapfrog_guard_check_seconds");
}

/// Typed configuration for guard sessions and session pools — the knobs a
/// long-lived engine owns, as one value instead of a parameter sprawl.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Clause-budget GC ratio: rebuild the context when retired clauses
    /// exceed `ratio ×` live clauses. `None` disables the GC.
    pub gc_ratio: Option<f64>,
    /// Clause-count floor for the GC: a context holding fewer live clauses
    /// than this never rebuilds, however lopsided its retired/live ratio —
    /// small, cache-served sessions churn through activation-retired
    /// clauses quickly, and rebuilding them buys nothing.
    pub gc_floor: u64,
    /// Cross-session instantiation ledger: `∀`-block validation verdicts
    /// keyed by canonical block identity and support valuation, shared by
    /// every session of an engine (across guards, pools and threads).
    pub ledger: Option<InstLedger>,
    /// CDCL portfolio (lane configurations and racing thresholds) for
    /// every context this session (or pool) creates — including GC-rebuild
    /// replacements. A single-lane portfolio is a plain solver; engines
    /// read the `LEAPFROG_SAT_*` environment once and pass the result
    /// here.
    pub sat: PortfolioConfig,
}

impl Default for SessionConfig {
    /// GC and ledger off; solver knobs from the `LEAPFROG_SAT_*`
    /// environment (standalone sessions mirror what a fresh
    /// [`BlastContext::new`] would do).
    fn default() -> SessionConfig {
        SessionConfig {
            gc_ratio: None,
            gc_floor: 0,
            ledger: None,
            sat: PortfolioConfig::from_env(),
        }
    }
}

impl SessionConfig {
    /// GC and ledger both off — the standalone-session default.
    pub fn new() -> SessionConfig {
        SessionConfig::default()
    }
}

/// A persistent entailment context for one template-pair guard.
pub struct GuardSession {
    decls: Declarations,
    env: LowerEnv,
    ctx: BlastContext,
    /// Premises synced so far (a prefix of the store's same-guard slice).
    premise_count: usize,
    /// The variable-indexed validator over the persistent `∀`-premises.
    oracle: RefinementOracle,
    /// Every permanently asserted formula, in assertion order: premise
    /// seed instantiations and CEGAR refinements. A GC rebuild replays
    /// this list into a fresh context, so refinement work survives.
    permanent: Vec<Formula>,
    /// Root clauses contributed by permanent asserts in the current
    /// context (measured via [`BlastContext::clauses_added`] deltas).
    live_clauses: u64,
    /// GC budget and cross-session ledger (see [`SessionConfig`]).
    cfg: SessionConfig,
    /// Set when the permanent constraints became unsatisfiable at the
    /// root: the premises entail everything.
    poisoned: bool,
    /// Queries answered (used to freshen conclusion variable names).
    checks: u64,
    stats: QueryStats,
    /// CDCL counters no longer reachable through the live context: the
    /// solvers GC rebuilds dropped, plus the oracle's short-lived
    /// validation solves. `stats.sat` is always `sat_retired` + the live
    /// context's counters, so totals survive rebuilds.
    sat_retired: SolverStats,
    /// Portfolio racing counters of retired contexts and oracle solves —
    /// the racing-side mirror of `sat_retired`.
    portfolio_retired: PortfolioStats,
}

impl GuardSession {
    /// A fresh session for a guard, with clause-budget GC disabled.
    pub fn new(guard: TemplatePair) -> GuardSession {
        GuardSession::with_gc(guard, None)
    }

    /// A fresh session for a guard. `gc_ratio` bounds context growth:
    /// when the clauses retired by finished queries exceed `ratio ×` the
    /// live (permanent) clauses, the context is rebuilt from the persisted
    /// permanent list. `None` disables the GC. (Compat shim over
    /// [`GuardSession::with_config`] with no floor and no ledger.)
    pub fn with_gc(guard: TemplatePair, gc_ratio: Option<f64>) -> GuardSession {
        GuardSession::with_config(
            guard,
            SessionConfig {
                gc_ratio,
                ..SessionConfig::default()
            },
        )
    }

    /// A fresh session for a guard under a full [`SessionConfig`].
    pub fn with_config(guard: TemplatePair, cfg: SessionConfig) -> GuardSession {
        GuardSession {
            decls: Declarations::new(),
            env: LowerEnv {
                buf: [None, None],
                headers: HashMap::new(),
                vars: Vec::new(),
                guard_left: guard.left.buf_len,
                guard_right: guard.right.buf_len,
            },
            ctx: BlastContext::with_portfolio(cfg.sat.clone()),
            premise_count: 0,
            oracle: RefinementOracle::with_portfolio(cfg.sat.clone()),
            permanent: Vec::new(),
            live_clauses: 0,
            cfg,
            poisoned: false,
            checks: 0,
            stats: QueryStats::default(),
            sat_retired: SolverStats::default(),
            portfolio_retired: PortfolioStats::default(),
        }
    }

    /// Query statistics for this session (one entry per [`Self::check`]).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Clauses retired by finished queries in the current context:
    /// everything added at the root that is not a permanent assert
    /// (activation-gated conclusion CNF plus the retire clauses).
    fn retired_clauses(&self) -> u64 {
        self.ctx.clauses_added().saturating_sub(self.live_clauses)
    }

    /// Rebuilds the context from the permanent-formula list when the
    /// retired-clause budget is exhausted. CEGAR instantiations are part
    /// of the list, so no refinement work is re-discovered. Contexts whose
    /// live-clause count is under [`SessionConfig::gc_floor`] never
    /// rebuild: their absolute size is already bounded by the floor, and
    /// on small cache-served rows the default ratio otherwise triggers
    /// rebuilds that cost more than the clauses they reclaim.
    fn maybe_gc(&mut self, cache: &SharedBlastCache) {
        let Some(ratio) = self.cfg.gc_ratio else {
            return;
        };
        if self.poisoned {
            return;
        }
        if self.live_clauses < self.cfg.gc_floor {
            return;
        }
        if (self.retired_clauses() as f64) <= ratio * self.live_clauses.max(1) as f64 {
            return;
        }
        self.sat_retired.absorb(&self.ctx.solver().stats());
        self.portfolio_retired.absorb(&self.ctx.portfolio_stats());
        self.ctx = BlastContext::with_portfolio(self.cfg.sat.clone());
        self.live_clauses = 0;
        self.stats.session_rebuilds += 1;
        meters::SESSION_REBUILDS.inc();
        let permanent = std::mem::take(&mut self.permanent);
        for f in &permanent {
            if !self.replay_assert(f, cache) {
                self.poisoned = true;
            }
        }
        self.permanent = permanent;
    }

    /// Decides `⋀ premises ⊨ conclusion`. `premises` must be the current
    /// same-guard slice of the relation store, in insertion order; it may
    /// only have grown since the previous call (new premises are synced
    /// into the persistent context incrementally).
    pub fn check(
        &mut self,
        aut: &Automaton,
        premises: &[&ConfRel],
        conclusion: &ConfRel,
        cache: &SharedBlastCache,
    ) -> bool {
        let start = Instant::now();
        let _span = leapfrog_obs::trace::span(leapfrog_obs::Phase::GuardEntailment);
        self.stats.queries += 1;
        meters::GUARD_CHECKS.inc();
        self.maybe_gc(cache);
        // Hard assert: the permanent context cannot un-assert clauses, so
        // a shrinking slice would leave stale premises asserted and make
        // later "entailed" verdicts unsound. The relation store's
        // same-guard slice is append-only, so this never fires for the
        // checker; it guards future callers.
        assert!(
            premises.len() >= self.premise_count,
            "a guard session's premise slice only grows ({} < {})",
            premises.len(),
            self.premise_count
        );

        // Sync newly appeared premises: lower, remember the ∀, and assert
        // the all-zeros seed instantiation permanently.
        for (i, p) in premises.iter().enumerate().skip(self.premise_count) {
            let xs: Vec<BvVar> = p
                .vars
                .iter()
                .enumerate()
                .map(|(j, w)| self.decls.declare(format!("x{i}_{j}"), *w))
                .collect();
            self.env.vars = xs.clone();
            let body = lower_pure(aut, &p.phi, &mut self.decls, &mut self.env);
            let quantified: Vec<BvVar> = xs
                .into_iter()
                .filter(|v| self.decls.width(*v) > 0)
                .collect();
            let seed: Vec<BitVec> = quantified
                .iter()
                .map(|x| BitVec::zeros(self.decls.width(*x)))
                .collect();
            let inst = instantiate_forall(&body, &quantified, &seed);
            if !self.assert_permanent(inst, cache) {
                self.poisoned = true;
            }
            if !quantified.is_empty() {
                self.oracle.add_block(quantified, body);
            }
        }
        self.premise_count = premises.len();
        if self.poisoned {
            self.sync_sat_stats();
            let elapsed = start.elapsed();
            meters::GUARD_CHECK_SECONDS.record(elapsed);
            self.stats.durations.push(elapsed);
            return true;
        }

        // Blast this query's ¬ψ behind a fresh activation literal.
        let k = self.checks;
        self.checks += 1;
        let ys: Vec<BvVar> = conclusion
            .vars
            .iter()
            .enumerate()
            .map(|(j, w)| self.decls.declare(format!("c{k}y{j}"), *w))
            .collect();
        self.env.vars = ys;
        let concl = lower_pure(aut, &conclusion.phi, &mut self.decls, &mut self.env);
        let negated = Formula::not(concl);
        let act = self.ctx.fresh_activation_lit();
        match self.ctx.blast_formula(&self.decls, &negated) {
            BBit::Const(false) => {
                // ¬ψ is contradictory on its own: ψ holds outright.
                self.sync_sat_stats();
                let elapsed = start.elapsed();
                meters::GUARD_CHECK_SECONDS.record(elapsed);
                self.stats.durations.push(elapsed);
                return true;
            }
            BBit::Const(true) => {
                // ¬ψ is trivially true (ψ = ⊥): entailed only if the
                // premises are unsatisfiable, which the CEGAR loop below
                // decides.
            }
            BBit::Lit(root) => {
                if !self.ctx.add_clause_raw(&[!act, root]) {
                    self.poisoned = true;
                    self.sync_sat_stats();
                    let elapsed = start.elapsed();
                    meters::GUARD_CHECK_SECONDS.record(elapsed);
                    self.stats.durations.push(elapsed);
                    return true;
                }
            }
        }

        // CEGAR under the activation assumption: candidate models must
        // survive every true ∀-premise. The oracle skips blocks whose
        // support is unchanged since their last clean validation and
        // batches all of a round's violations into one permanent assert.
        let verdict = loop {
            let _round_span = leapfrog_obs::trace::span(leapfrog_obs::Phase::CegarRound);
            match self.ctx.solve_with(&self.decls, &[act]) {
                None => break true,
                Some(model) => {
                    self.stats.cegar_rounds += 1;
                    meters::CEGAR_ROUNDS.inc();
                    self.stats.blocks_considered += self.oracle.len() as u64;
                    let round =
                        self.oracle
                            .validate_with(&self.decls, &model, self.cfg.ledger.as_ref());
                    self.stats.blocks_validated += round.validated;
                    self.stats.inst_ledger_hits += round.ledger_hits;
                    self.sat_retired.absorb(&round.sat);
                    self.portfolio_retired.absorb(&round.portfolio);
                    match round.refinement {
                        None => break false,
                        Some(batch) => {
                            if !self.assert_permanent(batch, cache) {
                                self.poisoned = true;
                                break true;
                            }
                        }
                    }
                }
            }
        };
        // Retire the activation literal: this query's clauses go vacuous.
        self.ctx.add_clause_raw(&[!act]);
        self.stats.live_clauses_peak = self
            .stats
            .live_clauses_peak
            .max(self.ctx.num_clauses() as u64);
        self.sync_sat_stats();
        let elapsed = start.elapsed();
        meters::GUARD_CHECK_SECONDS.record(elapsed);
        self.stats.durations.push(elapsed);
        verdict
    }

    /// Refreshes the session's solver-counter aggregate: the counters of
    /// every context this session has retired plus the live context's.
    fn sync_sat_stats(&mut self) {
        let mut sat = self.sat_retired;
        sat.absorb(&self.ctx.solver().stats());
        self.stats.sat = sat;
        let mut portfolio = self.portfolio_retired.clone();
        portfolio.absorb(&self.ctx.portfolio_stats());
        self.stats.portfolio = portfolio;
    }

    /// Asserts `f` permanently: it joins the persisted list replayed by GC
    /// rebuilds, and its clauses count as live.
    fn assert_permanent(&mut self, f: Formula, cache: &SharedBlastCache) -> bool {
        let ok = self.replay_assert(&f, cache);
        self.permanent.push(f);
        ok
    }

    /// Asserts a formula into the current context, attributing its clauses
    /// to the live (permanent) budget.
    fn replay_assert(&mut self, f: &Formula, cache: &SharedBlastCache) -> bool {
        let before = self.ctx.clauses_added();
        let (ok, hit) = self.ctx.assert_formula_cached(&self.decls, f, cache);
        if hit {
            self.stats.blast_cache_hits += 1;
            meters::BLAST_CACHE_HITS.inc();
        } else {
            self.stats.blast_cache_misses += 1;
            meters::BLAST_CACHE_MISSES.inc();
        }
        self.live_clauses += self.ctx.clauses_added() - before;
        ok
    }
}

/// A per-thread map of guard sessions plus merged statistics, used by the
/// checker for its main loop and for each persistent worker slot. An
/// engine keeps pools warm across queries: the sessions (premise clauses,
/// learnt CDCL state, CEGAR instantiations) survive from one check of a
/// parser pair to the next.
#[derive(Default)]
pub struct SessionPool {
    sessions: HashMap<TemplatePair, GuardSession>,
    cfg: SessionConfig,
    /// Monotone use counter driving the LRU order of [`Self::prune_lru`].
    tick: u64,
    /// Last-use tick per resident guard session.
    last_used: HashMap<TemplatePair, u64>,
    /// Statistics of pruned sessions: absorbed on eviction so the pool's
    /// totals stay monotone across [`Self::prune_lru`] calls (the engine
    /// reports per-run deltas against a baseline snapshot).
    retired: QueryStats,
}

impl SessionPool {
    /// An empty pool with clause-budget GC disabled.
    pub fn new() -> SessionPool {
        SessionPool::default()
    }

    /// An empty pool whose sessions rebuild their contexts when retired
    /// clauses exceed `ratio ×` the live clauses (`None` disables GC).
    pub fn with_gc(gc_ratio: Option<f64>) -> SessionPool {
        SessionPool::with_config(SessionConfig {
            gc_ratio,
            ..SessionConfig::default()
        })
    }

    /// An empty pool whose sessions are created under `cfg`.
    pub fn with_config(cfg: SessionConfig) -> SessionPool {
        SessionPool {
            cfg,
            ..SessionPool::default()
        }
    }

    /// Number of warm guard sessions currently held.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the pool holds no sessions yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Checks out the guard's session as an explicit handle, creating the
    /// session on first use. The lease borrows the pool, so the session is
    /// structurally returned when the lease drops — the checkout/return
    /// protocol a long-lived engine needs to thread one pool through many
    /// queries without dangling sessions.
    pub fn lease(&mut self, guard: TemplatePair) -> SessionLease<'_> {
        let cfg = self.cfg.clone();
        self.tick += 1;
        self.last_used.insert(guard, self.tick);
        let session = self
            .sessions
            .entry(guard)
            .or_insert_with(|| GuardSession::with_config(guard, cfg));
        SessionLease { session }
    }

    /// Evicts least-recently-used guard sessions until at most
    /// `max_sessions` remain, returning how many were dropped. The pruned
    /// sessions' statistics are preserved in the pool totals; a later
    /// check of a pruned guard simply rebuilds its context from scratch
    /// (and from the shared blast cache), so verdicts never change — the
    /// eviction hook a capacity-bounded engine drives between runs.
    pub fn prune_lru(&mut self, max_sessions: usize) -> usize {
        let mut evicted = 0;
        while self.sessions.len() > max_sessions {
            let victim = *self
                .sessions
                .keys()
                .min_by_key(|g| (self.last_used.get(g).copied().unwrap_or(0), **g))
                .expect("non-empty above");
            if let Some(session) = self.sessions.remove(&victim) {
                self.retired.absorb(session.stats());
            }
            self.last_used.remove(&victim);
            evicted += 1;
        }
        meters::SESSION_EVICTIONS.add(evicted as u64);
        evicted
    }

    /// Decides `⋀ premises ⊨ conclusion` through the guard's session,
    /// creating it on first use.
    pub fn check(
        &mut self,
        aut: &Automaton,
        premises: &[&ConfRel],
        conclusion: &ConfRel,
        cache: &SharedBlastCache,
    ) -> bool {
        self.lease(conclusion.guard)
            .check(aut, premises, conclusion, cache)
    }

    /// Merged statistics across the pool's sessions, in guard order (the
    /// deterministic order the checker absorbs them in), including the
    /// preserved statistics of sessions pruned by [`Self::prune_lru`].
    pub fn stats(&self) -> QueryStats {
        let mut guards: Vec<&TemplatePair> = self.sessions.keys().collect();
        guards.sort();
        let mut out = self.retired.clone();
        for g in guards {
            out.absorb(self.sessions[g].stats());
        }
        out
    }
}

/// A checked-out guard session: the explicit handle type through which an
/// engine (or the checker's merge loop) talks to one guard's persistent
/// solver context. Dropping the lease returns the session to its pool.
pub struct SessionLease<'p> {
    session: &'p mut GuardSession,
}

impl SessionLease<'_> {
    /// Decides `⋀ premises ⊨ conclusion` in the leased session (see
    /// [`GuardSession::check`] for the premise-slice contract).
    pub fn check(
        &mut self,
        aut: &Automaton,
        premises: &[&ConfRel],
        conclusion: &ConfRel,
        cache: &SharedBlastCache,
    ) -> bool {
        self.session.check(aut, premises, conclusion, cache)
    }

    /// The leased session's query statistics.
    pub fn stats(&self) -> &QueryStats {
        self.session.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confrel::{BitExpr, Pure, Side, VarId};
    use crate::lower::entails_stateless;
    use crate::templates::Template;
    use leapfrog_p4a::ast::{StateId, Target};
    use leapfrog_p4a::builder::Builder;

    fn aut() -> Automaton {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let g = b.header("g", 4);
        let q = b.state("q");
        b.define(q, vec![b.extract(h), b.extract(g)], b.goto(Target::Accept));
        b.build().unwrap()
    }

    fn guard(lbuf: usize, rbuf: usize) -> TemplatePair {
        TemplatePair::new(
            Template {
                target: Target::State(StateId(0)),
                buf_len: lbuf,
            },
            Template {
                target: Target::State(StateId(0)),
                buf_len: rbuf,
            },
        )
    }

    fn buf_eq_rel(g: TemplatePair) -> ConfRel {
        ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        }
    }

    #[test]
    fn session_agrees_with_one_shot_pipeline() {
        // A growing premise sequence with varied shapes: every (prefix,
        // conclusion) verdict must match the stateless pipeline.
        let a = aut();
        let g = guard(3, 3);
        let h = a.header_by_name("h").unwrap();
        let gh = a.header_by_name("g").unwrap();
        let premises = [
            ConfRel {
                guard: g,
                vars: vec![2],
                phi: Pure::eq(
                    BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                    BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
                ),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, gh)),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Right, h), BitExpr::Hdr(Side::Right, gh)),
            },
        ];
        let conclusions = vec![
            buf_eq_rel(g),
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(
                    BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 1, 2),
                    BitExpr::Slice(Box::new(BitExpr::Buf(Side::Right)), 1, 2),
                ),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, h)),
            },
            ConfRel::forbidden(g),
            ConfRel {
                guard: g,
                vars: vec![2],
                phi: Pure::eq(BitExpr::Var(VarId(0)), BitExpr::Lit(BitVec::zeros(2))),
            },
        ];
        let cache = SharedBlastCache::new();
        let mut session = GuardSession::new(g);
        for upto in 0..=premises.len() {
            let slice: Vec<&ConfRel> = premises[..upto].iter().collect();
            for concl in &conclusions {
                let expected = entails_stateless(&a, &premises[..upto], concl);
                let got = session.check(&a, &slice, concl, &cache);
                assert_eq!(
                    got,
                    expected,
                    "prefix {upto}, conclusion {}",
                    concl.display(&a)
                );
            }
        }
        assert!(session.stats().queries > 0);
    }

    #[test]
    fn gc_forced_session_agrees_and_rebuilds() {
        // An aggressive GC ratio forces context rebuilds between queries;
        // every verdict must still match the stateless pipeline, and the
        // rebuild counter must record the churn.
        let a = aut();
        let g = guard(3, 3);
        let h = a.header_by_name("h").unwrap();
        let gh = a.header_by_name("g").unwrap();
        let premises = [
            ConfRel {
                guard: g,
                vars: vec![2],
                phi: Pure::eq(
                    BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                    BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
                ),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, gh)),
            },
        ];
        let conclusions = vec![
            buf_eq_rel(g),
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, h)),
            },
            ConfRel::forbidden(g),
        ];
        let cache = SharedBlastCache::new();
        let mut session = GuardSession::with_gc(g, Some(0.001));
        for upto in 0..=premises.len() {
            let slice: Vec<&ConfRel> = premises[..upto].iter().collect();
            for concl in &conclusions {
                let expected = entails_stateless(&a, &premises[..upto], concl);
                let got = session.check(&a, &slice, concl, &cache);
                assert_eq!(got, expected, "prefix {upto}: {}", concl.display(&a));
            }
        }
        assert!(
            session.stats().session_rebuilds > 0,
            "a near-zero GC ratio must force rebuilds: {:?}",
            session.stats()
        );
        assert!(session.stats().live_clauses_peak > 0);
    }

    #[test]
    fn gc_floor_suppresses_rebuilds_below_the_threshold() {
        // Same aggressive ratio as the forced-GC test, but with a floor
        // far above anything this small session will ever hold live: no
        // rebuild may fire, and every verdict must still match the
        // stateless pipeline.
        let a = aut();
        let g = guard(3, 3);
        let h = a.header_by_name("h").unwrap();
        let gh = a.header_by_name("g").unwrap();
        let premises = [
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, gh)),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Right, h), BitExpr::Hdr(Side::Right, gh)),
            },
        ];
        let conclusions = vec![
            buf_eq_rel(g),
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, h)),
            },
            ConfRel::forbidden(g),
        ];
        let cache = SharedBlastCache::new();
        let mut session = GuardSession::with_config(
            g,
            SessionConfig {
                gc_ratio: Some(0.001),
                gc_floor: 1_000_000,
                ..SessionConfig::default()
            },
        );
        for upto in 0..=premises.len() {
            let slice: Vec<&ConfRel> = premises[..upto].iter().collect();
            for concl in &conclusions {
                let expected = entails_stateless(&a, &premises[..upto], concl);
                let got = session.check(&a, &slice, concl, &cache);
                assert_eq!(got, expected, "prefix {upto}: {}", concl.display(&a));
            }
        }
        assert_eq!(
            session.stats().session_rebuilds,
            0,
            "the floor must suppress every rebuild: {:?}",
            session.stats()
        );
    }

    #[test]
    fn sessions_sharing_a_ledger_replay_validations() {
        // Two sessions of the same guard shape (the worker-pool scenario):
        // the second session's CEGAR validations replay from the shared
        // ledger, with identical verdicts throughout.
        let a = aut();
        let g = guard(3, 3);
        let premises = [ConfRel {
            guard: g,
            vars: vec![2],
            phi: Pure::eq(
                BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
            ),
        }];
        let conclusions = [buf_eq_rel(g), ConfRel::forbidden(g)];
        let cache = SharedBlastCache::new();
        let ledger = leapfrog_smt::InstLedger::new();
        let cfg = SessionConfig {
            ledger: Some(ledger.clone()),
            ..SessionConfig::default()
        };
        let slice: Vec<&ConfRel> = premises.iter().collect();
        let run = |cfg: SessionConfig| -> (Vec<bool>, u64) {
            let mut session = GuardSession::with_config(g, cfg);
            let verdicts = conclusions
                .iter()
                .map(|c| session.check(&a, &slice, c, &cache))
                .collect();
            (verdicts, session.stats().inst_ledger_hits)
        };
        let (v1, hits1) = run(cfg.clone());
        let (v2, hits2) = run(cfg);
        let (v3, _) = run(SessionConfig::default());
        assert_eq!(v1, v2, "ledger replay must not change verdicts");
        assert_eq!(v1, v3, "ledger on/off must agree");
        assert!(!ledger.is_empty(), "validations must be recorded");
        assert!(
            hits2 > hits1,
            "the second session must replay from the ledger: {hits1} -> {hits2}"
        );
    }

    #[test]
    fn poisoned_session_entails_everything() {
        // A ⊥ premise makes every later conclusion entailed.
        let a = aut();
        let g = guard(1, 1);
        let premises = [ConfRel::forbidden(g)];
        let slice: Vec<&ConfRel> = premises.iter().collect();
        let cache = SharedBlastCache::new();
        let mut session = GuardSession::new(g);
        assert!(session.check(&a, &slice, &buf_eq_rel(g), &cache));
        let impossible = ConfRel {
            guard: g,
            vars: vec![2],
            phi: Pure::eq(BitExpr::Var(VarId(0)), BitExpr::Lit(BitVec::zeros(2))),
        };
        assert!(session.check(&a, &slice, &impossible, &cache));
    }

    #[test]
    fn prune_lru_drops_cold_sessions_and_keeps_stats() {
        let a = aut();
        let g1 = guard(1, 1);
        let g2 = guard(2, 2);
        let g3 = guard(3, 3);
        let cache = SharedBlastCache::new();
        let mut pool = SessionPool::new();
        assert!(pool.check(&a, &[], &ConfRel::trivial(g1), &cache));
        assert!(pool.check(&a, &[], &ConfRel::trivial(g2), &cache));
        assert!(pool.check(&a, &[], &ConfRel::trivial(g3), &cache));
        // Re-touch g1 so g2 is the LRU victim.
        assert!(pool.check(&a, &[], &ConfRel::trivial(g1), &cache));
        let before = pool.stats();
        assert_eq!(pool.prune_lru(2), 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(
            pool.stats().queries,
            before.queries,
            "pruned sessions' statistics must be preserved"
        );
        // A pruned guard rebuilds transparently with the same verdicts.
        assert!(pool.check(&a, &[], &ConfRel::trivial(g2), &cache));
        assert!(!pool.check(&a, &[], &ConfRel::forbidden(g2), &cache));
        assert_eq!(pool.prune_lru(0), 3, "prune to zero drops everything");
        assert!(pool.is_empty());
        assert_eq!(pool.stats().queries, before.queries + 2);
    }

    #[test]
    fn pool_routes_by_guard() {
        let a = aut();
        let g1 = guard(1, 1);
        let g2 = guard(2, 2);
        let cache = SharedBlastCache::new();
        let mut pool = SessionPool::new();
        // Tautological conclusion holds with no premises at both guards.
        assert!(pool.check(&a, &[], &ConfRel::trivial(g1), &cache));
        assert!(pool.check(&a, &[], &ConfRel::trivial(g2), &cache));
        // ⊥ conclusion does not.
        assert!(!pool.check(&a, &[], &ConfRel::forbidden(g1), &cache));
        let stats = pool.stats();
        assert_eq!(stats.queries, 3);
    }
}
