//! Per-guard incremental entailment sessions.
//!
//! Algorithm 1 decides `⋀R ⊨ ψ` once per frontier pop, and after stage-1
//! template filtering the premise set is exactly `R`'s same-guard slice —
//! which only ever *grows*. The one-shot pipeline
//! ([`crate::lower::entails_filtered`]) re-lowers, re-blasts and re-solves
//! that entire premise set for every query; a [`GuardSession`] keeps one
//! persistent [`BlastContext`] per guard instead:
//!
//! * **Premises are asserted once.** New same-guard relations are lowered
//!   and their seed instantiations asserted permanently when they first
//!   appear; earlier premises' clauses (and every clause the CDCL solver
//!   has learnt about them) carry over to all later queries.
//! * **Conclusions are activation-gated.** Each query blasts only its own
//!   `¬ψ`, gated behind a fresh activation literal; the solver runs under
//!   that assumption and the literal is retired afterwards, so per-query
//!   clauses never pollute later queries.
//! * **CEGAR instantiations persist.** A quantifier instantiation
//!   discovered while refuting one candidate model is an instance of a
//!   true premise, so it is asserted permanently and never re-discovered.
//!
//! Verdicts are exact booleans (the CEGAR loop validates any candidate
//! model against the *true* `∀`-premises), so sessions are freely mixed
//! with the one-shot pipeline and across worker threads without affecting
//! results — only wall-clock time.

use std::collections::HashMap;
use std::time::Instant;

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::Automaton;
use leapfrog_smt::{
    instantiate_forall, violates_forall, BBit, BlastContext, BvVar, Declarations, Formula,
    QueryStats, SharedBlastCache,
};

use crate::confrel::ConfRel;
use crate::lower::{lower_pure, LowerEnv};
use crate::templates::TemplatePair;

/// A persistent entailment context for one template-pair guard.
pub struct GuardSession {
    decls: Declarations,
    env: LowerEnv,
    ctx: BlastContext,
    /// Premises synced so far (a prefix of the store's same-guard slice).
    premise_count: usize,
    /// The persistent `∀`-premises for CEGAR refinement.
    foralls: Vec<(Vec<BvVar>, Formula)>,
    /// Set when the permanent constraints became unsatisfiable at the
    /// root: the premises entail everything.
    poisoned: bool,
    /// Queries answered (used to freshen conclusion variable names).
    checks: u64,
    stats: QueryStats,
}

impl GuardSession {
    /// A fresh session for a guard.
    pub fn new(guard: TemplatePair) -> GuardSession {
        GuardSession {
            decls: Declarations::new(),
            env: LowerEnv {
                buf: [None, None],
                headers: HashMap::new(),
                vars: Vec::new(),
                guard_left: guard.left.buf_len,
                guard_right: guard.right.buf_len,
            },
            ctx: BlastContext::new(),
            premise_count: 0,
            foralls: Vec::new(),
            poisoned: false,
            checks: 0,
            stats: QueryStats::default(),
        }
    }

    /// Query statistics for this session (one entry per [`Self::check`]).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Decides `⋀ premises ⊨ conclusion`. `premises` must be the current
    /// same-guard slice of the relation store, in insertion order; it may
    /// only have grown since the previous call (new premises are synced
    /// into the persistent context incrementally).
    pub fn check(
        &mut self,
        aut: &Automaton,
        premises: &[&ConfRel],
        conclusion: &ConfRel,
        cache: &SharedBlastCache,
    ) -> bool {
        let start = Instant::now();
        self.stats.queries += 1;
        // Hard assert: the permanent context cannot un-assert clauses, so
        // a shrinking slice would leave stale premises asserted and make
        // later "entailed" verdicts unsound. The relation store's
        // same-guard slice is append-only, so this never fires for the
        // checker; it guards future callers.
        assert!(
            premises.len() >= self.premise_count,
            "a guard session's premise slice only grows ({} < {})",
            premises.len(),
            self.premise_count
        );

        // Sync newly appeared premises: lower, remember the ∀, and assert
        // the all-zeros seed instantiation permanently.
        for (i, p) in premises.iter().enumerate().skip(self.premise_count) {
            let xs: Vec<BvVar> = p
                .vars
                .iter()
                .enumerate()
                .map(|(j, w)| self.decls.declare(format!("x{i}_{j}"), *w))
                .collect();
            self.env.vars = xs.clone();
            let body = lower_pure(aut, &p.phi, &mut self.decls, &mut self.env);
            let quantified: Vec<BvVar> = xs
                .into_iter()
                .filter(|v| self.decls.width(*v) > 0)
                .collect();
            let seed: Vec<BitVec> = quantified
                .iter()
                .map(|x| BitVec::zeros(self.decls.width(*x)))
                .collect();
            let inst = instantiate_forall(&body, &quantified, &seed);
            if !self.assert_permanent(&inst, cache) {
                self.poisoned = true;
            }
            if !quantified.is_empty() {
                self.foralls.push((quantified, body));
            }
        }
        self.premise_count = premises.len();
        if self.poisoned {
            self.stats.durations.push(start.elapsed());
            return true;
        }

        // Blast this query's ¬ψ behind a fresh activation literal.
        let k = self.checks;
        self.checks += 1;
        let ys: Vec<BvVar> = conclusion
            .vars
            .iter()
            .enumerate()
            .map(|(j, w)| self.decls.declare(format!("c{k}y{j}"), *w))
            .collect();
        self.env.vars = ys;
        let concl = lower_pure(aut, &conclusion.phi, &mut self.decls, &mut self.env);
        let negated = Formula::not(concl);
        let act = self.ctx.fresh_activation_lit();
        match self.ctx.blast_formula(&self.decls, &negated) {
            BBit::Const(false) => {
                // ¬ψ is contradictory on its own: ψ holds outright.
                self.stats.durations.push(start.elapsed());
                return true;
            }
            BBit::Const(true) => {
                // ¬ψ is trivially true (ψ = ⊥): entailed only if the
                // premises are unsatisfiable, which the CEGAR loop below
                // decides.
            }
            BBit::Lit(root) => {
                if !self.ctx.add_clause_raw(&[!act, root]) {
                    self.poisoned = true;
                    self.stats.durations.push(start.elapsed());
                    return true;
                }
            }
        }

        // CEGAR under the activation assumption: candidate models must
        // survive every true ∀-premise; genuine violations refine the
        // permanent instantiation set.
        let verdict = loop {
            match self.ctx.solve_with(&self.decls, &[act]) {
                None => break true,
                Some(model) => {
                    self.stats.cegar_rounds += 1;
                    let mut refined = false;
                    let mut conflict = false;
                    for (xs, body) in &self.foralls {
                        if let Some(witness) = violates_forall(&self.decls, &model, xs, body) {
                            let inst = instantiate_forall(body, xs, &witness);
                            let (ok, hit) =
                                self.ctx.assert_formula_cached(&self.decls, &inst, cache);
                            if hit {
                                self.stats.blast_cache_hits += 1;
                            } else {
                                self.stats.blast_cache_misses += 1;
                            }
                            if !ok {
                                conflict = true;
                            }
                            refined = true;
                        }
                    }
                    if conflict {
                        self.poisoned = true;
                        break true;
                    }
                    if !refined {
                        break false;
                    }
                }
            }
        };
        // Retire the activation literal: this query's clauses go vacuous.
        self.ctx.add_clause_raw(&[!act]);
        self.stats.durations.push(start.elapsed());
        verdict
    }

    fn assert_permanent(&mut self, f: &Formula, cache: &SharedBlastCache) -> bool {
        let (ok, hit) = self.ctx.assert_formula_cached(&self.decls, f, cache);
        if hit {
            self.stats.blast_cache_hits += 1;
        } else {
            self.stats.blast_cache_misses += 1;
        }
        ok
    }
}

/// A per-thread map of guard sessions plus merged statistics, used by the
/// checker for its main loop and for each persistent worker slot.
#[derive(Default)]
pub struct SessionPool {
    sessions: HashMap<TemplatePair, GuardSession>,
}

impl SessionPool {
    /// An empty pool.
    pub fn new() -> SessionPool {
        SessionPool::default()
    }

    /// Decides `⋀ premises ⊨ conclusion` through the guard's session,
    /// creating it on first use.
    pub fn check(
        &mut self,
        aut: &Automaton,
        premises: &[&ConfRel],
        conclusion: &ConfRel,
        cache: &SharedBlastCache,
    ) -> bool {
        self.sessions
            .entry(conclusion.guard)
            .or_insert_with(|| GuardSession::new(conclusion.guard))
            .check(aut, premises, conclusion, cache)
    }

    /// Merged statistics across the pool's sessions, in guard order (the
    /// deterministic order the checker absorbs them in).
    pub fn stats(&self) -> QueryStats {
        let mut guards: Vec<&TemplatePair> = self.sessions.keys().collect();
        guards.sort();
        let mut out = QueryStats::default();
        for g in guards {
            out.absorb(self.sessions[g].stats());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confrel::{BitExpr, Pure, Side, VarId};
    use crate::lower::entails_stateless;
    use crate::templates::Template;
    use leapfrog_p4a::ast::{StateId, Target};
    use leapfrog_p4a::builder::Builder;

    fn aut() -> Automaton {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let g = b.header("g", 4);
        let q = b.state("q");
        b.define(q, vec![b.extract(h), b.extract(g)], b.goto(Target::Accept));
        b.build().unwrap()
    }

    fn guard(lbuf: usize, rbuf: usize) -> TemplatePair {
        TemplatePair::new(
            Template {
                target: Target::State(StateId(0)),
                buf_len: lbuf,
            },
            Template {
                target: Target::State(StateId(0)),
                buf_len: rbuf,
            },
        )
    }

    fn buf_eq_rel(g: TemplatePair) -> ConfRel {
        ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        }
    }

    #[test]
    fn session_agrees_with_one_shot_pipeline() {
        // A growing premise sequence with varied shapes: every (prefix,
        // conclusion) verdict must match the stateless pipeline.
        let a = aut();
        let g = guard(3, 3);
        let h = a.header_by_name("h").unwrap();
        let gh = a.header_by_name("g").unwrap();
        let premises = [
            ConfRel {
                guard: g,
                vars: vec![2],
                phi: Pure::eq(
                    BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                    BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
                ),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, gh)),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Right, h), BitExpr::Hdr(Side::Right, gh)),
            },
        ];
        let conclusions = vec![
            buf_eq_rel(g),
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(
                    BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 1, 2),
                    BitExpr::Slice(Box::new(BitExpr::Buf(Side::Right)), 1, 2),
                ),
            },
            ConfRel {
                guard: g,
                vars: vec![],
                phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, h)),
            },
            ConfRel::forbidden(g),
            ConfRel {
                guard: g,
                vars: vec![2],
                phi: Pure::eq(BitExpr::Var(VarId(0)), BitExpr::Lit(BitVec::zeros(2))),
            },
        ];
        let cache = SharedBlastCache::new();
        let mut session = GuardSession::new(g);
        for upto in 0..=premises.len() {
            let slice: Vec<&ConfRel> = premises[..upto].iter().collect();
            for concl in &conclusions {
                let expected = entails_stateless(&a, &premises[..upto], concl);
                let got = session.check(&a, &slice, concl, &cache);
                assert_eq!(
                    got,
                    expected,
                    "prefix {upto}, conclusion {}",
                    concl.display(&a)
                );
            }
        }
        assert!(session.stats().queries > 0);
    }

    #[test]
    fn poisoned_session_entails_everything() {
        // A ⊥ premise makes every later conclusion entailed.
        let a = aut();
        let g = guard(1, 1);
        let premises = [ConfRel::forbidden(g)];
        let slice: Vec<&ConfRel> = premises.iter().collect();
        let cache = SharedBlastCache::new();
        let mut session = GuardSession::new(g);
        assert!(session.check(&a, &slice, &buf_eq_rel(g), &cache));
        let impossible = ConfRel {
            guard: g,
            vars: vec![2],
            phi: Pure::eq(BitExpr::Var(VarId(0)), BitExpr::Lit(BitVec::zeros(2))),
        };
        assert!(session.check(&a, &slice, &impossible, &cache));
    }

    #[test]
    fn pool_routes_by_guard() {
        let a = aut();
        let g1 = guard(1, 1);
        let g2 = guard(2, 2);
        let cache = SharedBlastCache::new();
        let mut pool = SessionPool::new();
        // Tautological conclusion holds with no premises at both guards.
        assert!(pool.check(&a, &[], &ConfRel::trivial(g1), &cache));
        assert!(pool.check(&a, &[], &ConfRel::trivial(g2), &cache));
        // ⊥ conclusion does not.
        assert!(!pool.check(&a, &[], &ConfRel::forbidden(g1), &cache));
        let stats = pool.stats();
        assert_eq!(stats.queries, 3);
    }
}
