//! The configuration-relation formula language (paper, Figure 3), in
//! template-guarded normal form (Definition 4.7).
//!
//! A [`ConfRel`] is `t₁< ∧ t₂> ⇒ φ` with `φ` *pure*: a boolean combination
//! of equalities between bitvector expressions over the two buffers, the
//! two stores, and packet variables introduced by weakest preconditions.
//! Because the guard fixes both buffer lengths, every expression has a
//! static width and all slices are exact — the clamped slicing of the
//! surface language is resolved during symbolic execution.
//!
//! The module also provides the *reference semantics* `J·K` of
//! Definition 4.3, used by property tests to validate the weakest
//! precondition computation and by the certificate checker for spot
//! verification.

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, HeaderId};
use leapfrog_p4a::semantics::Config;

use crate::templates::TemplatePair;

/// Which configuration of the pair an expression refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The `<` (left) configuration.
    Left,
    /// The `>` (right) configuration.
    Right,
}

impl Side {
    /// The paper's superscript notation.
    pub fn symbol(self) -> &'static str {
        match self {
            Side::Left => "<",
            Side::Right => ">",
        }
    }
}

/// A formula-local packet variable, indexed into [`ConfRel::vars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A bitvector expression over a configuration pair (Figure 3: `be`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BitExpr {
    /// A literal.
    Lit(BitVec),
    /// The buffer of one side (`buf<` / `buf>`); its width is the guard's
    /// buffer length for that side.
    Buf(Side),
    /// A header of one side (`h<` / `h>`).
    Hdr(Side, HeaderId),
    /// A packet variable.
    Var(VarId),
    /// Exact slice: `len` bits from `start`.
    Slice(Box<BitExpr>, usize, usize),
    /// Concatenation.
    Concat(Box<BitExpr>, Box<BitExpr>),
}

impl BitExpr {
    /// The empty bitvector.
    pub fn empty() -> BitExpr {
        BitExpr::Lit(BitVec::new())
    }

    /// Smart slice constructor: folds literals, composes nested slices and
    /// pushes through concatenation when widths permit (the paper's
    /// "algebraic simplifications", §6.2 step 1).
    pub fn slice(e: BitExpr, start: usize, len: usize, ctx: &ExprCtx<'_>) -> BitExpr {
        if len == 0 {
            return BitExpr::empty();
        }
        let w = e.width(ctx);
        debug_assert!(
            start + len <= w,
            "slice [{start};{len}] out of bounds for width {w}"
        );
        if start == 0 && len == w {
            return e;
        }
        match e {
            BitExpr::Lit(bv) => BitExpr::Lit(bv.subrange(start, len)),
            BitExpr::Slice(inner, s0, _) => BitExpr::Slice(inner, s0 + start, len),
            BitExpr::Concat(a, b) => {
                let wa = a.width(ctx);
                if start + len <= wa {
                    BitExpr::slice(*a, start, len, ctx)
                } else if start >= wa {
                    BitExpr::slice(*b, start - wa, len, ctx)
                } else {
                    let l = BitExpr::slice(*a, start, wa - start, ctx);
                    let r = BitExpr::slice(*b, 0, len - (wa - start), ctx);
                    BitExpr::concat(l, r)
                }
            }
            other => BitExpr::Slice(Box::new(other), start, len),
        }
    }

    /// Smart concatenation: drops empty sides, fuses literals.
    pub fn concat(a: BitExpr, b: BitExpr) -> BitExpr {
        match (&a, &b) {
            (BitExpr::Lit(x), _) if x.is_empty() => return b,
            (_, BitExpr::Lit(y)) if y.is_empty() => return a,
            (BitExpr::Lit(x), BitExpr::Lit(y)) => return BitExpr::Lit(x.concat(y)),
            _ => {}
        }
        BitExpr::Concat(Box::new(a), Box::new(b))
    }

    /// The static width of the expression in a guard context.
    pub fn width(&self, ctx: &ExprCtx<'_>) -> usize {
        match self {
            BitExpr::Lit(bv) => bv.len(),
            BitExpr::Buf(side) => ctx.buf_len(*side),
            BitExpr::Hdr(_, h) => ctx.aut.header_size(*h),
            BitExpr::Var(v) => ctx.var_widths[v.0 as usize],
            BitExpr::Slice(_, _, len) => *len,
            BitExpr::Concat(a, b) => a.width(ctx) + b.width(ctx),
        }
    }

    /// Evaluates the expression against a configuration pair and a
    /// valuation of the packet variables (`JbeK_B`, Definition 4.3).
    pub fn eval(&self, c1: &Config, c2: &Config, vals: &[BitVec]) -> BitVec {
        match self {
            BitExpr::Lit(bv) => bv.clone(),
            BitExpr::Buf(Side::Left) => c1.buf.clone(),
            BitExpr::Buf(Side::Right) => c2.buf.clone(),
            BitExpr::Hdr(Side::Left, h) => c1.store.get(*h).clone(),
            BitExpr::Hdr(Side::Right, h) => c2.store.get(*h).clone(),
            BitExpr::Var(v) => vals[v.0 as usize].clone(),
            BitExpr::Slice(e, start, len) => e.eval(c1, c2, vals).subrange(*start, *len),
            BitExpr::Concat(a, b) => a.eval(c1, c2, vals).concat(&b.eval(c1, c2, vals)),
        }
    }

    /// Substitutes buffers and headers of one side (used by `WP≶`).
    /// `buf` replaces `Buf(side)`; `store[h]` replaces `Hdr(side, h)`.
    pub fn subst_side(
        &self,
        side: Side,
        buf: &BitExpr,
        store: &dyn Fn(HeaderId) -> BitExpr,
        ctx: &ExprCtx<'_>,
    ) -> BitExpr {
        match self {
            BitExpr::Lit(_) | BitExpr::Var(_) => self.clone(),
            BitExpr::Buf(s) => {
                if *s == side {
                    buf.clone()
                } else {
                    self.clone()
                }
            }
            BitExpr::Hdr(s, h) => {
                if *s == side {
                    store(*h)
                } else {
                    self.clone()
                }
            }
            BitExpr::Slice(e, start, len) => {
                BitExpr::slice(e.subst_side(side, buf, store, ctx), *start, *len, ctx)
            }
            BitExpr::Concat(a, b) => BitExpr::concat(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
        }
    }
}

/// Width context for expressions: the automaton (header sizes), the
/// buffer lengths of both sides, and the packet-variable widths.
///
/// Note: when substituting during `WP`, expressions temporarily mix
/// pre-state buffers with post-state formulas; callers construct the
/// context matching the expression being measured.
#[derive(Debug, Clone, Copy)]
pub struct ExprCtx<'a> {
    /// The (sum) automaton.
    pub aut: &'a Automaton,
    /// Width of `buf<`.
    pub left_buf: usize,
    /// Width of `buf>`.
    pub right_buf: usize,
    /// Widths of packet variables.
    pub var_widths: &'a [usize],
}

impl<'a> ExprCtx<'a> {
    /// The buffer width of a side.
    pub fn buf_len(&self, side: Side) -> usize {
        match side {
            Side::Left => self.left_buf,
            Side::Right => self.right_buf,
        }
    }
}

/// A pure formula (no state or buffer-length assertions; Definition 4.7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pure {
    /// `⊤` or `⊥`.
    Const(bool),
    /// Bitvector equality.
    Eq(BitExpr, BitExpr),
    /// Negation.
    Not(Box<Pure>),
    /// Conjunction.
    And(Box<Pure>, Box<Pure>),
    /// Disjunction.
    Or(Box<Pure>, Box<Pure>),
    /// Implication.
    Implies(Box<Pure>, Box<Pure>),
}

impl Pure {
    /// `⊤`.
    pub fn tt() -> Pure {
        Pure::Const(true)
    }

    /// `⊥`.
    pub fn ff() -> Pure {
        Pure::Const(false)
    }

    /// Equality with constant folding.
    pub fn eq(a: BitExpr, b: BitExpr) -> Pure {
        if let (BitExpr::Lit(x), BitExpr::Lit(y)) = (&a, &b) {
            return Pure::Const(x == y);
        }
        if a == b {
            return Pure::tt();
        }
        Pure::Eq(a, b)
    }

    /// Negation with simplification.
    #[allow(clippy::should_implement_trait)] // DSL-style smart constructor
    pub fn not(p: Pure) -> Pure {
        match p {
            Pure::Const(b) => Pure::Const(!b),
            Pure::Not(inner) => *inner,
            other => Pure::Not(Box::new(other)),
        }
    }

    /// Conjunction with simplification.
    pub fn and(a: Pure, b: Pure) -> Pure {
        match (&a, &b) {
            (Pure::Const(false), _) | (_, Pure::Const(false)) => Pure::ff(),
            (Pure::Const(true), _) => b,
            (_, Pure::Const(true)) => a,
            _ => Pure::And(Box::new(a), Box::new(b)),
        }
    }

    /// Conjunction of many formulas.
    pub fn and_all(ps: impl IntoIterator<Item = Pure>) -> Pure {
        ps.into_iter().fold(Pure::tt(), Pure::and)
    }

    /// Disjunction with simplification.
    pub fn or(a: Pure, b: Pure) -> Pure {
        match (&a, &b) {
            (Pure::Const(true), _) | (_, Pure::Const(true)) => Pure::tt(),
            (Pure::Const(false), _) => b,
            (_, Pure::Const(false)) => a,
            _ => Pure::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction of many formulas.
    pub fn or_all(ps: impl IntoIterator<Item = Pure>) -> Pure {
        ps.into_iter().fold(Pure::ff(), Pure::or)
    }

    /// Implication with simplification.
    pub fn implies(a: Pure, b: Pure) -> Pure {
        match (&a, &b) {
            (Pure::Const(false), _) => Pure::tt(),
            (Pure::Const(true), _) => b,
            (_, Pure::Const(true)) => Pure::tt(),
            (_, Pure::Const(false)) => Pure::not(a),
            _ => Pure::Implies(Box::new(a), Box::new(b)),
        }
    }

    /// Evaluates against a configuration pair and valuation.
    pub fn eval(&self, c1: &Config, c2: &Config, vals: &[BitVec]) -> bool {
        match self {
            Pure::Const(b) => *b,
            Pure::Eq(a, b) => a.eval(c1, c2, vals) == b.eval(c1, c2, vals),
            Pure::Not(p) => !p.eval(c1, c2, vals),
            Pure::And(a, b) => a.eval(c1, c2, vals) && b.eval(c1, c2, vals),
            Pure::Or(a, b) => a.eval(c1, c2, vals) || b.eval(c1, c2, vals),
            Pure::Implies(a, b) => !a.eval(c1, c2, vals) || b.eval(c1, c2, vals),
        }
    }

    /// Structural size (diagnostics; the paper tracks formula growth).
    pub fn size(&self) -> usize {
        match self {
            Pure::Const(_) => 1,
            Pure::Eq(_, _) => 1,
            Pure::Not(p) => 1 + p.size(),
            Pure::And(a, b) | Pure::Or(a, b) | Pure::Implies(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Applies a side substitution through the formula.
    pub fn subst_side(
        &self,
        side: Side,
        buf: &BitExpr,
        store: &dyn Fn(HeaderId) -> BitExpr,
        ctx: &ExprCtx<'_>,
    ) -> Pure {
        match self {
            Pure::Const(_) => self.clone(),
            Pure::Eq(a, b) => Pure::eq(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
            Pure::Not(p) => Pure::not(p.subst_side(side, buf, store, ctx)),
            Pure::And(a, b) => Pure::and(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
            Pure::Or(a, b) => Pure::or(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
            Pure::Implies(a, b) => Pure::implies(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
        }
    }
}

/// A template-guarded configuration relation `t₁< ∧ t₂> ⇒ φ`
/// (Definition 4.7), with the packet variables it quantifies over.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfRel {
    /// The guard templates.
    pub guard: TemplatePair,
    /// Widths of the packet variables `x₀, x₁, …` appearing in `phi`.
    pub vars: Vec<usize>,
    /// The pure body.
    pub phi: Pure,
}

impl ConfRel {
    /// The relation `t₁ ∧ t₂ ⇒ ⊤` (no constraint beyond the guard).
    pub fn trivial(guard: TemplatePair) -> ConfRel {
        ConfRel {
            guard,
            vars: Vec::new(),
            phi: Pure::tt(),
        }
    }

    /// The relation `t₁ ∧ t₂ ⇒ ⊥` (the guard combination is forbidden;
    /// used for the initial relation of Lemma 4.10).
    pub fn forbidden(guard: TemplatePair) -> ConfRel {
        ConfRel {
            guard,
            vars: Vec::new(),
            phi: Pure::ff(),
        }
    }

    /// Whether a configuration pair matches the guard.
    pub fn guard_matches(&self, c1: &Config, c2: &Config) -> bool {
        c1.target == self.guard.left.target
            && c1.buf.len() == self.guard.left.buf_len
            && c2.target == self.guard.right.target
            && c2.buf.len() == self.guard.right.buf_len
    }

    /// The reference semantics `J·K_L` (Definition 4.3): the pair is related
    /// iff the guard fails to match, or `phi` holds under *all* valuations.
    /// Enumeration of valuations is exponential in the variable widths; use
    /// only for small formulas (tests, spot checks).
    pub fn holds(&self, c1: &Config, c2: &Config) -> bool {
        if !self.guard_matches(c1, c2) {
            return true;
        }
        let total: usize = self.vars.iter().sum();
        assert!(total <= 16, "valuation enumeration limited to 16 bits");
        let mut vals: Vec<BitVec> = self.vars.iter().map(|w| BitVec::zeros(*w)).collect();
        for assignment in 0u64..(1u64 << total) {
            let mut offset = 0;
            for (i, w) in self.vars.iter().enumerate() {
                let mut bv = BitVec::zeros(*w);
                for bit in 0..*w {
                    if (assignment >> (offset + bit)) & 1 == 1 {
                        bv.set(bit, true);
                    }
                }
                vals[i] = bv;
                offset += w;
            }
            if !self.phi.eval(c1, c2, &vals) {
                return false;
            }
        }
        true
    }

    /// A width context for this relation's body.
    pub fn ctx<'a>(&'a self, aut: &'a Automaton) -> ExprCtx<'a> {
        ExprCtx {
            aut,
            left_buf: self.guard.left.buf_len,
            right_buf: self.guard.right.buf_len,
            var_widths: &self.vars,
        }
    }

    /// Renders the relation with names for diagnostics.
    pub fn display(&self, aut: &Automaton) -> String {
        format!(
            "{} ⇒ {}",
            self.guard.display(aut),
            display_pure(&self.phi, aut)
        )
    }
}

fn display_pure(p: &Pure, aut: &Automaton) -> String {
    match p {
        Pure::Const(true) => "⊤".into(),
        Pure::Const(false) => "⊥".into(),
        Pure::Eq(a, b) => format!("{} = {}", display_expr(a, aut), display_expr(b, aut)),
        Pure::Not(p) => format!("¬({})", display_pure(p, aut)),
        Pure::And(a, b) => format!("({} ∧ {})", display_pure(a, aut), display_pure(b, aut)),
        Pure::Or(a, b) => format!("({} ∨ {})", display_pure(a, aut), display_pure(b, aut)),
        Pure::Implies(a, b) => {
            format!("({} ⇒ {})", display_pure(a, aut), display_pure(b, aut))
        }
    }
}

fn display_expr(e: &BitExpr, aut: &Automaton) -> String {
    match e {
        BitExpr::Lit(bv) => format!("0b{bv}"),
        BitExpr::Buf(s) => format!("buf{}", s.symbol()),
        BitExpr::Hdr(s, h) => format!("{}{}", aut.header_name(*h), s.symbol()),
        BitExpr::Var(v) => format!("x{}", v.0),
        BitExpr::Slice(e, start, len) => {
            format!("{}[{start};{len}]", display_expr(e, aut))
        }
        BitExpr::Concat(a, b) => {
            format!("({} ++ {})", display_expr(a, aut), display_expr(b, aut))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Template;
    use leapfrog_p4a::ast::{StateId, Target};
    use leapfrog_p4a::builder::Builder;
    use leapfrog_p4a::semantics::Store;

    fn aut() -> Automaton {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let g = b.header("g", 4);
        let q = b.state("q");
        b.define(q, vec![b.extract(h), b.extract(g)], b.goto(Target::Accept));
        b.build().unwrap()
    }

    fn config(aut: &Automaton, buf: &str) -> Config {
        Config {
            target: Target::State(StateId(0)),
            store: Store::zeros(aut),
            buf: buf.parse().unwrap(),
        }
    }

    #[test]
    fn eval_buffer_and_header() {
        let a = aut();
        let mut c1 = config(&a, "101");
        let c2 = config(&a, "01");
        let h = a.header_by_name("h").unwrap();
        c1.store.set(h, "1100".parse().unwrap());
        let e = BitExpr::Concat(
            Box::new(BitExpr::Buf(Side::Left)),
            Box::new(BitExpr::Hdr(Side::Left, h)),
        );
        assert_eq!(e.eval(&c1, &c2, &[]).to_string(), "1011100");
        assert_eq!(
            BitExpr::Buf(Side::Right).eval(&c1, &c2, &[]).to_string(),
            "01"
        );
    }

    #[test]
    fn smart_slice_through_concat() {
        let a = aut();
        let ctx = ExprCtx {
            aut: &a,
            left_buf: 3,
            right_buf: 2,
            var_widths: &[],
        };
        let e = BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right));
        // Bits [3;2] live entirely in the right buffer.
        let s = BitExpr::slice(e, 3, 2, &ctx);
        assert_eq!(s, BitExpr::Buf(Side::Right));
    }

    #[test]
    fn smart_slice_straddles() {
        let a = aut();
        let ctx = ExprCtx {
            aut: &a,
            left_buf: 3,
            right_buf: 2,
            var_widths: &[],
        };
        let e = BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right));
        let s = BitExpr::slice(e, 2, 2, &ctx);
        match s {
            BitExpr::Concat(l, r) => {
                assert_eq!(*l, BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 2, 1));
                assert_eq!(
                    *r,
                    BitExpr::Slice(Box::new(BitExpr::Buf(Side::Right)), 0, 1)
                );
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn guard_gates_holds() {
        let a = aut();
        let c1 = config(&a, "101");
        let c2 = config(&a, "01");
        let guard = TemplatePair::new(
            Template {
                target: Target::State(StateId(0)),
                buf_len: 3,
            },
            Template {
                target: Target::State(StateId(0)),
                buf_len: 2,
            },
        );
        // buf< [0;2] = buf>  — here "10" vs "01": false under the guard.
        let rel = ConfRel {
            guard,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 0, 2),
                BitExpr::Buf(Side::Right),
            ),
        };
        assert!(!rel.holds(&c1, &c2));
        // A mismatched guard makes the relation vacuously true.
        let c3 = config(&a, "1");
        assert!(rel.holds(&c3, &c2));
    }

    #[test]
    fn holds_quantifies_over_vars() {
        let a = aut();
        let c1 = config(&a, "1");
        let c2 = config(&a, "1");
        let guard = TemplatePair::new(
            Template {
                target: Target::State(StateId(0)),
                buf_len: 1,
            },
            Template {
                target: Target::State(StateId(0)),
                buf_len: 1,
            },
        );
        // ∀x (1 bit): buf< ++ x = buf> ++ x  — true since buffers equal.
        let rel = ConfRel {
            guard,
            vars: vec![1],
            phi: Pure::eq(
                BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
            ),
        };
        assert!(rel.holds(&c1, &c2));
        // ∀x. x = 0 is false (some valuation refutes it).
        let rel2 = ConfRel {
            guard,
            vars: vec![1],
            phi: Pure::eq(BitExpr::Var(VarId(0)), BitExpr::Lit("0".parse().unwrap())),
        };
        assert!(!rel2.holds(&c1, &c2));
    }

    #[test]
    fn pure_constructors_fold() {
        assert_eq!(Pure::and(Pure::tt(), Pure::ff()), Pure::ff());
        assert_eq!(Pure::or(Pure::ff(), Pure::ff()), Pure::ff());
        assert_eq!(Pure::implies(Pure::ff(), Pure::ff()), Pure::tt());
        assert_eq!(
            Pure::eq(
                BitExpr::Lit("10".parse().unwrap()),
                BitExpr::Lit("10".parse().unwrap())
            ),
            Pure::tt()
        );
    }

    #[test]
    fn display_is_readable() {
        let a = aut();
        let guard = TemplatePair::new(
            Template {
                target: Target::State(StateId(0)),
                buf_len: 0,
            },
            Template::accept(),
        );
        let rel = ConfRel::forbidden(guard);
        let s = rel.display(&a);
        assert!(s.contains("⟨q, 0⟩"));
        assert!(s.contains("accept"));
        assert!(s.contains('⊥'));
    }
}
