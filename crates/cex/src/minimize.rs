//! Bit-level delta debugging for witness packets.
//!
//! The packet lifted from a countermodel is as long as the symbolic trace
//! that produced it — often much longer than necessary (e.g. a full MPLS
//! label stack when one label suffices). [`minimize`] shrinks it with the
//! classic ddmin loop (remove ever-smaller contiguous segments while the
//! disagreement persists) and then canonicalizes the survivor by zeroing
//! every bit that is not needed to keep the two parsers disagreeing.
//!
//! [`minimize_chunked`] adds a *leap-aware pre-pass*: the lifted packet is
//! a concatenation of leap-sized chunks (one per weakest-precondition
//! step of the trace), and a redundant leap — a whole MPLS label, a whole
//! option word — usually drops in one aligned deletion. Trying those
//! chunk-aligned deletions to a fixpoint first removes most of the packet
//! in O(chunks) replays, leaving per-bit ddmin only the short remainder.

use leapfrog_bitvec::BitVec;

/// Removes the segment `[start, start+len)` from a packet.
fn without_segment(packet: &BitVec, start: usize, len: usize) -> BitVec {
    let mut out = packet.subrange(0, start);
    let tail_start = start + len;
    out.extend(&packet.subrange(tail_start, packet.len() - tail_start));
    out
}

/// [`minimize`] with a leap-aware pre-pass. `chunks` are the packet's
/// leap-chunk lengths in packet order; they must sum to the packet length
/// for the pre-pass to run (otherwise it falls through to plain ddmin —
/// e.g. for packets found by steered search, which have no leap
/// structure). The pre-pass greedily deletes whole chunks, to a fixpoint,
/// while the disagreement persists; per-bit ddmin then finishes the
/// survivor, so the result is exactly as minimal as [`minimize`]'s.
pub fn minimize_chunked(
    packet: BitVec,
    chunks: &[usize],
    disagrees: &mut dyn FnMut(&BitVec) -> bool,
) -> BitVec {
    debug_assert!(disagrees(&packet), "minimize needs a disagreeing packet");
    let mut current = packet;
    if chunks.len() > 1 && chunks.iter().sum::<usize>() == current.len() {
        let mut chunks = chunks.to_vec();
        loop {
            let mut shrunk = false;
            let mut i = 0;
            while i < chunks.len() {
                let start: usize = chunks[..i].iter().sum();
                let candidate = without_segment(&current, start, chunks[i]);
                if disagrees(&candidate) {
                    current = candidate;
                    chunks.remove(i);
                    shrunk = true;
                } else {
                    i += 1;
                }
            }
            if !shrunk || chunks.len() <= 1 {
                break;
            }
        }
    }
    minimize(current, disagrees)
}

/// Shrinks `packet` while `disagrees` stays true, returning the minimized
/// packet. `disagrees(&packet)` must be true on entry; the result also
/// satisfies it. The loop is the textbook ddmin with a final zeroing pass,
/// so the result is 1-minimal with respect to segment deletion (no single
/// tried segment can be removed) but not globally minimal.
pub fn minimize(packet: BitVec, disagrees: &mut dyn FnMut(&BitVec) -> bool) -> BitVec {
    debug_assert!(disagrees(&packet), "minimize() needs a disagreeing packet");
    let mut current = packet;

    // Phase 1: ddmin segment deletion.
    let mut granularity = 2usize;
    while current.len() >= 2 && granularity <= current.len() {
        let seg = current.len().div_ceil(granularity);
        let mut shrunk = false;
        let mut start = 0;
        while start < current.len() {
            let len = seg.min(current.len() - start);
            let candidate = without_segment(&current, start, len);
            if disagrees(&candidate) {
                current = candidate;
                shrunk = true;
                // Re-try from the same offset at the same granularity.
            } else {
                start += len;
            }
        }
        if shrunk {
            granularity = granularity.saturating_sub(1).max(2);
        } else if seg <= 1 {
            break;
        } else {
            granularity = (granularity * 2).min(current.len());
        }
    }

    // Phase 2: canonicalize by zeroing unneeded bits.
    for i in 0..current.len() {
        if current.get(i) == Some(true) {
            let mut candidate = current.clone();
            candidate.set(i, false);
            if disagrees(&candidate) {
                current = candidate;
            }
        }
    }

    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn shrinks_to_the_needed_window() {
        // Disagreement iff the packet contains "11" somewhere.
        let mut pred =
            |p: &BitVec| (1..p.len()).any(|i| p.get(i - 1) == Some(true) && p.get(i) == Some(true));
        let start = bv("0101101100101");
        assert!(pred(&start));
        let min = minimize(start, &mut pred);
        assert_eq!(min, bv("11"));
    }

    #[test]
    fn zeroes_irrelevant_bits() {
        // Disagreement iff length >= 4 (content irrelevant).
        let mut pred = |p: &BitVec| p.len() >= 4;
        let min = minimize(bv("10111011"), &mut pred);
        assert_eq!(min, bv("0000"));
    }

    #[test]
    fn already_minimal_is_untouched() {
        let mut pred = |p: &BitVec| p == &bv("1");
        assert_eq!(minimize(bv("1"), &mut pred), bv("1"));
    }

    #[test]
    fn empty_packet_stays_empty() {
        let mut pred = |p: &BitVec| p.is_empty();
        assert_eq!(minimize(BitVec::new(), &mut pred), BitVec::new());
    }

    #[test]
    fn chunked_prepass_drops_whole_leaps_first() {
        // Disagreement iff the packet contains "11": chunk-aligned
        // deletion must strip the redundant 4-bit leaps in whole pieces
        // and reach the same minimum as plain ddmin.
        let mut pred =
            |p: &BitVec| (1..p.len()).any(|i| p.get(i - 1) == Some(true) && p.get(i) == Some(true));
        let start = bv("000001000000110000000100");
        let min = minimize_chunked(start, &[4, 4, 4, 4, 4, 4], &mut pred);
        assert_eq!(min, bv("11"));
    }

    #[test]
    fn chunked_agrees_with_plain_on_mismatched_chunks() {
        // Chunk lengths that do not cover the packet skip the pre-pass.
        let mut pred = |p: &BitVec| p.len() >= 4;
        let min = minimize_chunked(bv("10111011"), &[64], &mut pred);
        assert_eq!(min, bv("0000"));
        let mut pred2 = |p: &BitVec| p.len() >= 4;
        let min2 = minimize_chunked(bv("10111011"), &[], &mut pred2);
        assert_eq!(min2, bv("0000"));
    }

    #[test]
    fn chunked_prepass_matches_plain_ddmin_result() {
        // On a chunk-structured disagreement the pre-pass must not change
        // the final minimum, only the path there.
        let mut pred_a = |p: &BitVec| p.len() >= 8 && p.get(0) == Some(true);
        let mut pred_b = |p: &BitVec| p.len() >= 8 && p.get(0) == Some(true);
        let start = bv("1010101010101010");
        let plain = minimize(start.clone(), &mut pred_a);
        let chunked = minimize_chunked(start, &[8, 8], &mut pred_b);
        assert_eq!(plain, chunked);
    }
}
