//! The witness pipeline: lift a countermodel into concrete initial stores
//! and a packet, confirm the disagreement by explicit replay, fall back to
//! steered packet search when lifting alone is inconclusive, and minimize.
//!
//! # How lifting works
//!
//! A refuted query is an entailment `φ ⊨ ρ` whose lowering left the
//! conclusion's packet variables *free*; the countermodel therefore
//! assigns concrete bitvectors to
//!
//! * one variable per `(side, header)` pair — the initial stores, because
//!   the violated relation `ρ` sits at the root guard `⟨q₁,0⟩ / ⟨q₂,0⟩`
//!   where the store *is* the initial store; and
//! * the packet variables `x₀ … xₙ` that successive weakest preconditions
//!   appended while deriving `ρ` from an initial conjunct — each `xᵢ` is
//!   one leap's worth of packet bits, appended in wp order, so the
//!   concrete packet is their concatenation in *reverse* index order
//!   (the last-appended variable is the first chunk consumed).
//!
//! The provenance chain `ρ = wp(wp(…wp(ψ₀)…))` recorded by the checker
//! tells the engine where the packet variables stop and the initial
//! conjunct `ψ₀`'s own variables begin, and doubles as the symbolic trace
//! reported in the witness.

use std::sync::Arc;

use leapfrog_bitvec::BitVec;
use leapfrog_logic::confrel::{ConfRel, Pure, Side};
use leapfrog_logic::lower::LoweredVars;
use leapfrog_logic::templates::TemplatePair;
use leapfrog_p4a::ast::{Automaton, StateId, Target};
use leapfrog_p4a::semantics::{Config, Store};
use leapfrog_p4a::walk::{accepting_walk_packet, random_walk_packet, Rng};
use leapfrog_smt::{Declarations, Model};

use crate::minimize::minimize_chunked;
use crate::witness::{Disagreement, Refutation, Witness};

/// How many fallback search attempts (per strategy, per side) are made
/// before declaring a refutation unconfirmed.
const SEARCH_ATTEMPTS: usize = 64;

/// Builds a refutation from a failed `Close`/early-stop query.
///
/// * `aut` — the sum automaton the check ran over.
/// * `chain` — the provenance chain of the violated relation: `chain[0]`
///   is the violated relation itself (its guard is the root pair), each
///   subsequent element is the relation it was derived from by `wp`, and
///   the last element is the initial conjunct. The links are `Arc`-shared
///   with the checker's provenance table — building a witness never deep-
///   copies the relations.
/// * `decls`, `lowered`, `model` — the violated entailment query's
///   variable table, store-elimination mapping, and countermodel.
/// * `diagnostic` — the human-readable symbolic report, preserved verbatim
///   when the witness cannot be confirmed.
pub fn build_witness(
    aut: &Automaton,
    chain: &[Arc<ConfRel>],
    decls: &Declarations,
    lowered: &LoweredVars,
    model: &Model,
    diagnostic: String,
) -> Refutation {
    let unconfirmed = |reason: &str| Refutation::Unconfirmed {
        reason: reason.to_string(),
        report: diagnostic.clone(),
    };

    let Some(rho) = chain.first() else {
        return unconfirmed("empty provenance chain");
    };
    let init = chain.last().expect("chain has a first element");

    // The root guard must be a start pair: two proper states with empty
    // buffers (always true for the queries the checker poses).
    let (ql, qr) = match (rho.guard.left.target, rho.guard.right.target) {
        (Target::State(l), Target::State(r))
            if rho.guard.left.buf_len == 0 && rho.guard.right.buf_len == 0 =>
        {
            (l, r)
        }
        _ => return unconfirmed("violated relation is not guarded by a start pair"),
    };

    if lowered.conclusion_vars.len() != rho.vars.len() {
        return unconfirmed("countermodel variable table does not match the relation");
    }

    // Lift the stores: every (side, header) variable the formulas mention
    // gets its model value; unmentioned headers are unconstrained, and the
    // all-zeros completion is as good as any.
    let mut left_store = Store::zeros(aut);
    let mut right_store = Store::zeros(aut);
    for ((side, h), var) in &lowered.headers {
        let value = model.value_or_zeros(decls, *var);
        if value.len() != aut.header_size(*h) {
            return unconfirmed("countermodel width mismatch on a header variable");
        }
        match side {
            Side::Left => left_store.set(*h, value),
            Side::Right => right_store.set(*h, value),
        }
    }

    // Lift the packet: wp-appended variables, last appended first.
    let init_len = init.vars.len();
    if init_len > rho.vars.len() {
        return unconfirmed("initial conjunct has more variables than the violated relation");
    }
    // Each wp-appended variable is one leap's worth of bits, so the chunk
    // lengths (in packet order) double as the leap boundaries the
    // minimizer's chunk-aligned pre-pass deletes along.
    let mut packet = BitVec::new();
    let mut leap_chunks: Vec<usize> = Vec::with_capacity(rho.vars.len() - init_len);
    for j in (init_len..rho.vars.len()).rev() {
        packet.extend(&model.value_or_zeros(decls, lowered.conclusion_vars[j]));
        leap_chunks.push(rho.vars[j]);
    }
    let init_vals: Vec<BitVec> = (0..init_len)
        .map(|j| model.value_or_zeros(decls, lowered.conclusion_vars[j]))
        .collect();

    let trace: Vec<TemplatePair> = chain.iter().map(|c| c.guard).collect();

    // Confirm: replay through the explicit semantics and classify.
    let c1 = Config::with_store(ql, left_store.clone());
    let c2 = Config::with_store(qr, right_store.clone());
    let d1 = c1.step_word(aut, &packet);
    let d2 = c2.step_word(aut, &packet);

    // What counts as a confirmed disagreement depends on the *violated
    // initial conjunct*. A standard forbidden conjunct (`φ₀ = ⊥`, the
    // acceptance-compatibility relation of language equivalence) is
    // refuted by an acceptance disagreement; a caller-supplied relational
    // conjunct is refuted only by landing in its guard with its store
    // condition false — a bare acceptance mismatch may be something the
    // relational property explicitly permits, so it must not be presented
    // as the counterexample.
    let standard_conjunct = init.phi == Pure::ff();
    let disagreement = if standard_conjunct {
        if d1.is_accepting() != d2.is_accepting() {
            Some(Disagreement::Acceptance {
                left_accepts: d1.is_accepting(),
                right_accepts: d2.is_accepting(),
            })
        } else {
            None
        }
    } else if init.guard_matches(&d1, &d2) && !init.phi.eval(&d1, &d2, &init_vals) {
        Some(Disagreement::InitRelation {
            relation: (**init).clone(),
            vals: init_vals.clone(),
        })
    } else {
        None
    };

    let (packet, leap_chunks, disagreement) = match disagreement {
        Some(d) => (packet, leap_chunks, d),
        None if standard_conjunct => {
            // Lifting was inconclusive (e.g. an unconstrained variable was
            // completed with zeros and the run strayed off the symbolic
            // trace). Search for an acceptance disagreement explicitly,
            // steering walks from both sides' initial configurations.
            match search_disagreement(aut, ql, qr, &left_store, &right_store) {
                Some(found) => {
                    let e1 = Config::with_store(ql, left_store.clone()).step_word(aut, &found);
                    let e2 = Config::with_store(qr, right_store.clone()).step_word(aut, &found);
                    // A searched packet has no leap structure to exploit.
                    (
                        found,
                        Vec::new(),
                        Disagreement::Acceptance {
                            left_accepts: e1.is_accepting(),
                            right_accepts: e2.is_accepting(),
                        },
                    )
                }
                None => {
                    return unconfirmed(
                        "replay agreed on the lifted packet and steered search \
                         found no disagreement",
                    )
                }
            }
        }
        None => {
            // No sound generic search exists for an arbitrary relational
            // conjunct; better an honest Unconfirmed than a witness that
            // demonstrates a permitted disagreement.
            return unconfirmed(
                "replay did not violate the relational initial conjunct on \
                 the lifted packet",
            );
        }
    };

    // Minimize while preserving the confirmed disagreement.
    let original_bits = packet.len();
    let scratch = Witness::new(
        aut.clone(),
        ql,
        qr,
        left_store.clone(),
        right_store.clone(),
        packet.clone(),
        trace.clone(),
        disagreement.clone(),
        original_bits,
    );
    let minimized = minimize_chunked(packet, &leap_chunks, &mut |p| scratch.packet_disagrees(p));

    // Re-derive the recorded verdicts for the minimized packet.
    let disagreement = match disagreement {
        Disagreement::Acceptance { .. } => {
            let (m1, m2) = scratch.replay_packet(&minimized);
            Disagreement::Acceptance {
                left_accepts: m1.is_accepting(),
                right_accepts: m2.is_accepting(),
            }
        }
        other => other,
    };

    let witness = Witness::new(
        aut.clone(),
        ql,
        qr,
        left_store,
        right_store,
        minimized,
        trace,
        disagreement,
        original_bits,
    );
    debug_assert!(witness.check(), "minimized witness must re-validate");
    Refutation::Witness(Box::new(witness))
}

/// Searches for a packet on which the two runs disagree on acceptance,
/// reusing the suite's steering machinery: accepting-steered walks from
/// each side (a packet accepted by one side often strays the other into
/// reject) plus plain random walks, all replayed from the lifted stores.
pub fn search_disagreement(
    aut: &Automaton,
    ql: StateId,
    qr: StateId,
    left_store: &Store,
    right_store: &Store,
) -> Option<BitVec> {
    let mut rng = Rng::new(0x5eed_cafe);
    let disagrees = |packet: &BitVec| {
        let a = Config::with_store(ql, left_store.clone()).accepts_chunked(aut, packet);
        let b = Config::with_store(qr, right_store.clone()).accepts_chunked(aut, packet);
        a != b
    };
    for attempt in 0..SEARCH_ATTEMPTS {
        let max_states = 2 + attempt % 14;
        for (start, store) in [(ql, left_store), (qr, right_store)] {
            let steered = accepting_walk_packet(aut, start, store.clone(), max_states, &mut rng);
            if disagrees(&steered) {
                return Some(steered);
            }
            let random = random_walk_packet(aut, start, max_states, &mut rng);
            if disagrees(&random) {
                return Some(random);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::sum::sum;
    use leapfrog_p4a::surface::parse;

    #[test]
    fn search_finds_acceptance_disagreement() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let s = sum(&a, &b);
        let ql = s.left_state(a.state_by_name("s").unwrap());
        let qr = s.right_state(b.state_by_name("s").unwrap());
        let zl = Store::zeros(&s.automaton);
        let zr = Store::zeros(&s.automaton);
        let found = search_disagreement(&s.automaton, ql, qr, &zl, &zr)
            .expect("the parsers disagree on 2-bit packets");
        let la = Config::with_store(ql, zl).accepts_chunked(&s.automaton, &found);
        let ra = Config::with_store(qr, zr).accepts_chunked(&s.automaton, &found);
        assert_ne!(la, ra);
    }
}
