//! The counterexample witness engine.
//!
//! Leapfrog's symbolic checker proves parser *equivalence*; this crate
//! closes the trust loop for the opposite verdict. When the worklist
//! refutes a query, the CEGAR solver has already computed a full
//! countermodel — an assignment to the initial stores of both automata and
//! to the packet variables introduced by weakest preconditions. The engine
//!
//! 1. **lifts** that model into concrete initial [`Store`]s and a concrete
//!    input packet ([`engine::build_witness`]),
//! 2. **confirms** the refutation by replaying the packet through the
//!    explicit semantics of §4 from both initial configurations and
//!    checking that the parsers genuinely disagree — on acceptance, or on
//!    the violated relational condition,
//! 3. falls back to steered packet **search** (reusing the workload
//!    walker in [`leapfrog_p4a::walk`]) when the zero-completion of
//!    unconstrained model variables strays off the symbolic trace, and
//! 4. **minimizes** the confirmed packet: a leap-aware pre-pass deletes
//!    whole packet chunks along the trace's leap boundaries
//!    ([`minimize::minimize_chunked`]), then bit-level delta debugging
//!    ([`minimize::minimize`]) finishes the survivor, zeroing irrelevant
//!    bits for a canonical result.
//!
//! The product is a structured [`Witness`] — stores, packet, symbolic
//! trace, disagreement — that is self-contained (it owns the sum
//! automaton), independently re-checkable ([`Witness::check`]), and
//! pretty-printable. `leapfrog::Outcome::NotEquivalent` carries a
//! [`Refutation`]: a confirmed witness, or an `Unconfirmed` diagnostic in
//! the rare case lifting fails.
//!
//! [`Store`]: leapfrog_p4a::semantics::Store

pub mod engine;
pub mod minimize;
pub mod witness;

pub use engine::{build_witness, search_disagreement};
pub use minimize::{minimize, minimize_chunked};
pub use witness::{Disagreement, Refutation, Witness};
