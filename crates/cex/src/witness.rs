//! Witness and refutation types: the structured result of a refuted
//! equivalence query, replayable against the explicit semantics.

use std::fmt;

use leapfrog_bitvec::BitVec;
use leapfrog_logic::confrel::ConfRel;
use leapfrog_logic::templates::TemplatePair;
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::semantics::{Config, Store};

/// How the two parsers concretely disagree on the witness packet.
#[derive(Debug, Clone)]
pub enum Disagreement {
    /// One side accepts the packet, the other does not — the language
    /// equivalence refutation.
    Acceptance {
        /// Whether the left parser accepts.
        left_accepts: bool,
        /// Whether the right parser accepts.
        right_accepts: bool,
    },
    /// Both runs land in the guard of a caller-supplied initial-relation
    /// conjunct whose store condition fails — the relational-property
    /// refutation (external filtering / store correspondence, §7.1).
    InitRelation {
        /// The violated initial conjunct.
        relation: ConfRel,
        /// Concrete values for the conjunct's packet variables, lifted from
        /// the countermodel.
        vals: Vec<BitVec>,
    },
}

/// A concrete, confirmed, minimized counterexample to an equivalence (or
/// relational) query: initial stores for both sides, a distinguishing
/// packet, the symbolic trace that produced it, and the observed
/// disagreement.
///
/// The witness owns a copy of the sum automaton so it can be replayed —
/// and re-checked by third parties — without any reference back to the
/// checker that produced it.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The sum automaton both runs execute in.
    aut: Automaton,
    /// Start state of the left run (a left-injected state of the sum).
    pub left_start: StateId,
    /// Start state of the right run.
    pub right_start: StateId,
    /// Initial store of the left run, lifted from the countermodel.
    pub left_store: Store,
    /// Initial store of the right run.
    pub right_store: Store,
    /// The minimized distinguishing packet.
    pub packet: BitVec,
    /// The template-pair trace of the refuted relation, from the root
    /// guard down to the violated initial conjunct. (The minimized packet
    /// may legitimately take a shorter path.)
    pub trace: Vec<TemplatePair>,
    /// What the replay observes.
    pub disagreement: Disagreement,
    /// The packet length before minimization.
    pub original_bits: usize,
}

impl Witness {
    /// Creates a witness. `disagreement` should already describe what
    /// replaying `packet` observes; [`Witness::check`] re-validates it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        aut: Automaton,
        left_start: StateId,
        right_start: StateId,
        left_store: Store,
        right_store: Store,
        packet: BitVec,
        trace: Vec<TemplatePair>,
        disagreement: Disagreement,
        original_bits: usize,
    ) -> Witness {
        Witness {
            aut,
            left_start,
            right_start,
            left_store,
            right_store,
            packet,
            trace,
            disagreement,
            original_bits,
        }
    }

    /// The sum automaton the witness replays in.
    pub fn automaton(&self) -> &Automaton {
        &self.aut
    }

    /// Replays the packet through the explicit bit-by-bit semantics from
    /// both initial configurations, returning the final configurations.
    pub fn replay(&self) -> (Config, Config) {
        self.replay_packet(&self.packet)
    }

    /// Replays an arbitrary packet from the witness's initial
    /// configurations (used during minimization).
    pub fn replay_packet(&self, packet: &BitVec) -> (Config, Config) {
        let c1 = Config::with_store(self.left_start, self.left_store.clone());
        let c2 = Config::with_store(self.right_start, self.right_store.clone());
        (
            c1.step_word(&self.aut, packet),
            c2.step_word(&self.aut, packet),
        )
    }

    /// Whether replaying `packet` reproduces this witness's kind of
    /// disagreement.
    pub fn packet_disagrees(&self, packet: &BitVec) -> bool {
        let (d1, d2) = self.replay_packet(packet);
        match &self.disagreement {
            Disagreement::Acceptance { .. } => d1.is_accepting() != d2.is_accepting(),
            Disagreement::InitRelation { relation, vals } => {
                relation.guard_matches(&d1, &d2) && !relation.phi.eval(&d1, &d2, vals)
            }
        }
    }

    /// Re-validates the witness from scratch: replaying the packet must
    /// reproduce the recorded disagreement.
    pub fn check(&self) -> bool {
        let (d1, d2) = self.replay();
        match &self.disagreement {
            Disagreement::Acceptance {
                left_accepts,
                right_accepts,
            } => {
                left_accepts != right_accepts
                    && d1.is_accepting() == *left_accepts
                    && d2.is_accepting() == *right_accepts
            }
            Disagreement::InitRelation { relation, vals } => {
                relation.guard_matches(&d1, &d2) && !relation.phi.eval(&d1, &d2, vals)
            }
        }
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample witness (confirmed by explicit replay):")?;
        writeln!(
            f,
            "  packet ({} bits): {}",
            self.packet.len(),
            group_bits(&self.packet)
        )?;
        if self.original_bits > self.packet.len() {
            writeln!(f, "    (minimized from {} bits)", self.original_bits)?;
        }
        writeln!(
            f,
            "  left  run: start {}, store: {}",
            self.aut.state_name(self.left_start),
            render_store(&self.aut, &self.left_store),
        )?;
        writeln!(
            f,
            "  right run: start {}, store: {}",
            self.aut.state_name(self.right_start),
            render_store(&self.aut, &self.right_store),
        )?;
        match &self.disagreement {
            Disagreement::Acceptance {
                left_accepts,
                right_accepts,
            } => {
                writeln!(
                    f,
                    "  disagreement: left {}, right {}",
                    verdict(*left_accepts),
                    verdict(*right_accepts)
                )?;
            }
            Disagreement::InitRelation { relation, .. } => {
                writeln!(
                    f,
                    "  disagreement: initial-relation conjunct violated: {}",
                    relation.display(&self.aut)
                )?;
            }
        }
        if !self.trace.is_empty() {
            write!(f, "  symbolic trace:")?;
            for (i, pair) in self.trace.iter().enumerate() {
                if i % 3 == 0 {
                    write!(f, "\n    ")?;
                } else {
                    write!(f, "  →  ")?;
                }
                write!(f, "{}", pair.display(&self.aut))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn verdict(accepts: bool) -> &'static str {
    if accepts {
        "accepts"
    } else {
        "rejects"
    }
}

/// Renders a packet as 8-bit groups for readability.
fn group_bits(bv: &BitVec) -> String {
    if bv.is_empty() {
        return "ε".into();
    }
    let mut out = String::with_capacity(bv.len() + bv.len() / 8);
    for (i, b) in bv.iter().enumerate() {
        if i > 0 && i % 8 == 0 {
            out.push(' ');
        }
        out.push(if b { '1' } else { '0' });
    }
    out
}

/// Renders the nonzero headers of a store, abbreviating long values.
fn render_store(aut: &Automaton, store: &Store) -> String {
    let mut parts = Vec::new();
    for h in aut.header_ids() {
        let v = store.get(h);
        if v.iter().any(|b| b) {
            let shown = if v.len() > 32 {
                format!("{}…({} bits)", group_bits(&v.subrange(0, 32)), v.len())
            } else {
                group_bits(v)
            };
            parts.push(format!("{} = {}", aut.header_name(h), shown));
        }
    }
    if parts.is_empty() {
        "all zeros".into()
    } else {
        parts.join(", ")
    }
}

/// What a refuted query carries: ideally a confirmed witness; otherwise a
/// diagnostic explaining why lifting or confirmation failed.
#[derive(Debug, Clone)]
pub enum Refutation {
    /// A confirmed (and minimized) counterexample. Boxed: a witness owns a
    /// copy of the sum automaton and dwarfs the other variant.
    Witness(Box<Witness>),
    /// The countermodel could not be lifted into a confirmed concrete
    /// disagreement; the symbolic refutation stands on the soundness of
    /// the decision procedure alone.
    Unconfirmed {
        /// Why lifting or confirmation failed.
        reason: String,
        /// The raw symbolic diagnostic (violated relation + countermodel).
        report: String,
    },
}

impl Refutation {
    /// Whether a confirmed witness is available.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, Refutation::Witness(_))
    }

    /// The confirmed witness, if any.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            Refutation::Witness(w) => Some(w.as_ref()),
            Refutation::Unconfirmed { .. } => None,
        }
    }
}

impl fmt::Display for Refutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refutation::Witness(w) => write!(f, "{w}"),
            Refutation::Unconfirmed { reason, report } => {
                writeln!(f, "refutation (witness unconfirmed: {reason})")?;
                write!(f, "{report}")
            }
        }
    }
}
