//! Packed bitvectors for the Leapfrog reproduction.
//!
//! P4 automata manipulate finite bitstrings: packet data, header contents and
//! parse buffers. This crate provides [`BitVec`], a compact bitvector backed
//! by `u64` blocks, with the exact *clamped* slicing semantics of the paper
//! (Definition 3.1): `w[n1:n2]` is the zero-indexed substring starting at
//! `min(n1, |w| - 1)` and ending at `min(n2, |w| - 1)`, inclusive. Bit `0` is
//! the *leftmost* (first-received) bit, matching string indexing in the
//! paper.
//!
//! # Examples
//!
//! ```
//! use leapfrog_bitvec::BitVec;
//!
//! let w: BitVec = "10110".parse().unwrap();
//! assert_eq!(w.len(), 5);
//! assert_eq!(w.get(0), Some(true));
//! assert_eq!(w.slice(1, 3).to_string(), "011");
//! let v = w.concat(&"01".parse().unwrap());
//! assert_eq!(v.to_string(), "1011001");
//! ```

use std::fmt;
use std::str::FromStr;

const BLOCK_BITS: usize = 64;

/// A finite sequence of bits, bit `0` leftmost.
///
/// Stored MSB-first inside `u64` blocks: bit `i` lives in block `i / 64` at
/// bit position `63 - (i % 64)`. Unused trailing bits of the last block are
/// kept zero, which lets equality and hashing work structurally.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates the empty bitvector `ε`.
    pub fn new() -> Self {
        BitVec {
            blocks: Vec::new(),
            len: 0,
        }
    }

    /// Creates a bitvector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            blocks: vec![0; len.div_ceil(BLOCK_BITS)],
            len,
        }
    }

    /// Creates a bitvector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = BitVec {
            blocks: vec![u64::MAX; len.div_ceil(BLOCK_BITS)],
            len,
        };
        bv.mask_tail();
        bv
    }

    /// Creates a bitvector from a slice of booleans (index 0 leftmost).
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut bv = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            bv.set(i, b);
        }
        bv
    }

    /// Creates a `width`-bit vector holding the low `width` bits of `value`,
    /// most significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width <= 64, "from_u64 width must be <= 64, got {width}");
        let mut bv = BitVec::zeros(width);
        for i in 0..width {
            let bit = (value >> (width - 1 - i)) & 1 == 1;
            bv.set(i, bit);
        }
        bv
    }

    /// Interprets the bitvector as a big-endian unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if the vector is longer than 64 bits.
    pub fn to_u64(&self) -> u64 {
        assert!(
            self.len <= 64,
            "to_u64 requires len <= 64, got {}",
            self.len
        );
        let mut out = 0u64;
        for i in 0..self.len {
            out = (out << 1) | u64::from(self.get(i).unwrap());
        }
        out
    }

    /// The number of bits, `|w|`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this is the empty bitvector `ε`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i`, or `None` if `i >= len`.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        let block = self.blocks[i / BLOCK_BITS];
        Some((block >> (BLOCK_BITS - 1 - (i % BLOCK_BITS))) & 1 == 1)
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        let mask = 1u64 << (BLOCK_BITS - 1 - (i % BLOCK_BITS));
        if value {
            self.blocks[i / BLOCK_BITS] |= mask;
        } else {
            self.blocks[i / BLOCK_BITS] &= !mask;
        }
    }

    /// Appends a single bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(BLOCK_BITS) {
            self.blocks.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }

    /// Removes and returns the last bit, or `None` if empty.
    pub fn pop(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        let b = self.get(self.len - 1).unwrap();
        self.set(self.len - 1, false);
        self.len -= 1;
        self.blocks.truncate(self.len.div_ceil(BLOCK_BITS));
        Some(b)
    }

    /// Concatenation `w ++ x`: `self` followed by `other`.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.extend(other);
        out
    }

    /// Appends all bits of `other` in place.
    pub fn extend(&mut self, other: &BitVec) {
        // Fast path: self ends on a block boundary.
        if self.len.is_multiple_of(BLOCK_BITS) {
            self.blocks.extend_from_slice(&other.blocks);
            self.len += other.len;
            return;
        }
        for i in 0..other.len {
            self.push(other.get(i).unwrap());
        }
    }

    /// The paper's clamped slice `w[n1:n2]` (Definition 3.1): the substring
    /// from `min(n1, |w|-1)` to `min(n2, |w|-1)` inclusive. Returns `ε` when
    /// `self` is empty or the clamped range is reversed.
    pub fn slice(&self, n1: usize, n2: usize) -> BitVec {
        if self.len == 0 {
            return BitVec::new();
        }
        let lo = n1.min(self.len - 1);
        let hi = n2.min(self.len - 1);
        if lo > hi {
            return BitVec::new();
        }
        self.subrange(lo, hi + 1 - lo)
    }

    /// Exact (non-clamped) subrange of `count` bits starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len`.
    pub fn subrange(&self, start: usize, count: usize) -> BitVec {
        assert!(
            start + count <= self.len,
            "subrange [{start}, {start}+{count}) out of range for len {}",
            self.len
        );
        let mut out = BitVec::zeros(count);
        for i in 0..count {
            out.set(i, self.get(start + i).unwrap());
        }
        out
    }

    /// Splits into `(self[0..at], self[at..])`.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_at(&self, at: usize) -> (BitVec, BitVec) {
        (self.subrange(0, at), self.subrange(at, self.len - at))
    }

    /// Iterates over the bits, leftmost first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i).unwrap())
    }

    /// Collects the bits into a `Vec<bool>`.
    pub fn to_bits(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// A uniformly random bitvector of the given length, using the provided
    /// source of random 64-bit words.
    pub fn random_with(len: usize, mut next_u64: impl FnMut() -> u64) -> Self {
        let mut bv = BitVec {
            blocks: (0..len.div_ceil(BLOCK_BITS)).map(|_| next_u64()).collect(),
            len,
        };
        bv.mask_tail();
        bv
    }

    fn mask_tail(&mut self) {
        let rem = self.len % BLOCK_BITS;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX << (BLOCK_BITS - rem);
            }
        }
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(\"{self}\")")
    }
}

/// Error parsing a [`BitVec`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    offending: char,
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bit character {:?}; expected '0' or '1'",
            self.offending
        )
    }
}

impl std::error::Error for ParseBitVecError {}

impl FromStr for BitVec {
    type Err = ParseBitVecError;

    /// Parses a binary string such as `"10110"`. Underscores are ignored, so
    /// `"1011_0110"` is accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bv = BitVec::new();
        for c in s.chars() {
            match c {
                '0' => bv.push(false),
                '1' => bv.push(true),
                '_' => {}
                other => return Err(ParseBitVecError { offending: other }),
            }
        }
        Ok(bv)
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn empty_basics() {
        let e = BitVec::new();
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        assert_eq!(e.get(0), None);
        assert_eq!(e.to_string(), "");
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut w = BitVec::new();
        w.push(true);
        w.push(false);
        w.push(true);
        assert_eq!(w.to_string(), "101");
        assert_eq!(w.pop(), Some(true));
        assert_eq!(w.pop(), Some(false));
        assert_eq!(w.pop(), Some(true));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn pop_clears_tail_bit() {
        let mut w = bv("11");
        w.pop();
        w.push(false);
        assert_eq!(w.to_string(), "10");
    }

    #[test]
    fn from_u64_msb_first() {
        assert_eq!(BitVec::from_u64(0b1011, 4).to_string(), "1011");
        assert_eq!(BitVec::from_u64(1, 8).to_string(), "00000001");
        assert_eq!(BitVec::from_u64(0, 0).to_string(), "");
    }

    #[test]
    fn to_u64_roundtrip() {
        for v in [0u64, 1, 5, 0xff, 0xdead] {
            assert_eq!(BitVec::from_u64(v, 16).to_u64(), v & 0xffff);
        }
    }

    #[test]
    fn concat_matches_string_concat() {
        assert_eq!(bv("10").concat(&bv("0111")).to_string(), "100111");
        assert_eq!(bv("").concat(&bv("01")).to_string(), "01");
        assert_eq!(bv("01").concat(&bv("")).to_string(), "01");
    }

    #[test]
    fn clamped_slice_paper_semantics() {
        let w = bv("10110");
        // In-range inclusive slice.
        assert_eq!(w.slice(1, 3).to_string(), "011");
        // End clamps to |w| - 1.
        assert_eq!(w.slice(3, 100).to_string(), "10");
        // Start clamps to |w| - 1.
        assert_eq!(w.slice(100, 200).to_string(), "0");
        // Reversed after clamping: min(n1,|w|-1) = 4 > min(n2,|w|-1) = 2.
        assert_eq!(w.slice(100, 2).to_string(), "");
        // Slicing the empty vector is empty.
        assert_eq!(BitVec::new().slice(0, 5).to_string(), "");
    }

    #[test]
    fn subrange_exact() {
        let w = bv("10110");
        assert_eq!(w.subrange(0, 5).to_string(), "10110");
        assert_eq!(w.subrange(2, 2).to_string(), "11");
        assert_eq!(w.subrange(5, 0).to_string(), "");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subrange_out_of_range_panics() {
        bv("101").subrange(2, 2);
    }

    #[test]
    fn split_at_partitions() {
        let (a, b) = bv("10110").split_at(2);
        assert_eq!(a.to_string(), "10");
        assert_eq!(b.to_string(), "110");
    }

    #[test]
    fn equality_is_structural_across_block_boundaries() {
        let mut a = BitVec::zeros(130);
        let mut b = BitVec::zeros(130);
        a.set(129, true);
        b.set(129, true);
        assert_eq!(a, b);
        b.set(0, true);
        assert_ne!(a, b);
    }

    #[test]
    fn ones_and_zeros() {
        assert_eq!(BitVec::ones(3).to_string(), "111");
        assert_eq!(BitVec::zeros(3).to_string(), "000");
        let big = BitVec::ones(70);
        assert!(big.iter().all(|b| b));
        assert_eq!(big.len(), 70);
    }

    #[test]
    fn parse_rejects_garbage_and_ignores_underscores() {
        assert!("10x1".parse::<BitVec>().is_err());
        assert_eq!(bv("10_11").to_string(), "1011");
    }

    #[test]
    fn extend_fast_path_on_block_boundary() {
        let mut a = BitVec::from_bits(&[true; 64]);
        a.extend(&bv("01"));
        assert_eq!(a.len(), 66);
        assert_eq!(a.get(64), Some(false));
        assert_eq!(a.get(65), Some(true));
    }

    #[test]
    fn display_debug() {
        assert_eq!(format!("{:?}", bv("10")), "BitVec(\"10\")");
    }

    #[test]
    fn from_iterator_collects() {
        let w: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(w.to_string(), "101");
    }

    #[test]
    fn random_with_has_requested_length() {
        let mut state = 0x12345u64;
        let mut rng = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let w = BitVec::random_with(100, &mut rng);
        assert_eq!(w.len(), 100);
        // Tail bits beyond len must be masked so equality stays structural.
        let mut copy = BitVec::zeros(100);
        for i in 0..100 {
            copy.set(i, w.get(i).unwrap());
        }
        assert_eq!(w, copy);
    }
}
