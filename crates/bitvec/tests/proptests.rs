//! Property-based tests for the bitvector substrate: the algebra the whole
//! stack (semantics, symbolic execution, bit-blasting) relies on.
//!
//! The offline build has no `proptest`, so the properties are exercised by
//! a deterministic self-contained generator: every test draws a few hundred
//! random cases from a fixed-seed RNG, which keeps failures reproducible.

use leapfrog_bitvec::BitVec;

/// Deterministic splitmix-style RNG for reproducible property tests.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z ^ (z >> 33)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn bitvec(&mut self, max_len: usize) -> BitVec {
        let len = self.below(max_len + 1);
        let bits: Vec<bool> = (0..len).map(|_| self.bool()).collect();
        BitVec::from_bits(&bits)
    }
}

const CASES: usize = 256;

#[test]
fn display_parse_roundtrip() {
    let mut rng = Rng::new(0x1bad5eed);
    for _ in 0..CASES {
        let w = rng.bitvec(200);
        let text = w.to_string();
        let back: BitVec = text.parse().unwrap();
        assert_eq!(w, back, "failed for {text:?}");
    }
}

#[test]
fn concat_length_and_content() {
    let mut rng = Rng::new(0xc0ffee);
    for _ in 0..CASES {
        let a = rng.bitvec(150);
        let b = rng.bitvec(150);
        let c = a.concat(&b);
        assert_eq!(c.len(), a.len() + b.len());
        for i in 0..a.len() {
            assert_eq!(c.get(i), a.get(i));
        }
        for i in 0..b.len() {
            assert_eq!(c.get(a.len() + i), b.get(i));
        }
    }
}

#[test]
fn concat_is_associative() {
    let mut rng = Rng::new(0xa550c);
    for _ in 0..CASES {
        let a = rng.bitvec(64);
        let b = rng.bitvec(64);
        let c = rng.bitvec(64);
        assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
    }
}

#[test]
fn split_at_inverts_concat() {
    let mut rng = Rng::new(0x5917);
    for _ in 0..CASES {
        let a = rng.bitvec(100);
        let b = rng.bitvec(100);
        let (x, y) = a.concat(&b).split_at(a.len());
        assert_eq!(x, a);
        assert_eq!(y, b);
    }
}

#[test]
fn subrange_matches_bit_loop() {
    let mut rng = Rng::new(0x5b5b);
    for _ in 0..CASES {
        let w = rng.bitvec(120);
        if w.is_empty() {
            continue;
        }
        let start = rng.below(w.len());
        let len = rng.below(w.len() - start + 1);
        let s = w.subrange(start, len);
        assert_eq!(s.len(), len);
        for i in 0..len {
            assert_eq!(s.get(i), w.get(start + i));
        }
    }
}

#[test]
fn clamped_slice_matches_reference_model() {
    let mut rng = Rng::new(0xc1a3b);
    for _ in 0..CASES {
        let w = rng.bitvec(40);
        let n1 = rng.below(60);
        let n2 = rng.below(60);
        // Reference: Definition 3.1 computed naively over Vec<bool>.
        let bits = w.to_bits();
        let expected: Vec<bool> = if bits.is_empty() {
            Vec::new()
        } else {
            let lo = n1.min(bits.len() - 1);
            let hi = n2.min(bits.len() - 1);
            if lo > hi {
                Vec::new()
            } else {
                bits[lo..=hi].to_vec()
            }
        };
        assert_eq!(w.slice(n1, n2), BitVec::from_bits(&expected));
    }
}

#[test]
fn push_pop_are_inverses() {
    let mut rng = Rng::new(0x9909);
    for _ in 0..CASES {
        let w = rng.bitvec(80);
        let bit = rng.bool();
        let mut v = w.clone();
        v.push(bit);
        assert_eq!(v.len(), w.len() + 1);
        assert_eq!(v.pop(), Some(bit));
        assert_eq!(v, w);
    }
}

#[test]
fn u64_roundtrip() {
    let mut rng = Rng::new(0x64641);
    for _ in 0..CASES {
        let width = rng.below(65);
        let value = rng.next_u64();
        let masked = if width == 0 {
            0
        } else {
            value & (u64::MAX >> (64 - width))
        };
        let w = BitVec::from_u64(masked, width);
        assert_eq!(w.len(), width);
        assert_eq!(w.to_u64(), masked);
    }
}

#[test]
fn equality_agrees_with_bits() {
    let mut rng = Rng::new(0xe4e4);
    for _ in 0..CASES {
        // Short lengths so collisions actually occur.
        let a = rng.bitvec(6);
        let b = rng.bitvec(6);
        assert_eq!(a == b, a.to_bits() == b.to_bits());
    }
}
