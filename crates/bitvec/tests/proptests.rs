//! Property-based tests for the bitvector substrate: the algebra the whole
//! stack (semantics, symbolic execution, bit-blasting) relies on.

use leapfrog_bitvec::BitVec;
use proptest::prelude::*;

fn bitvec(max_len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), 0..=max_len).prop_map(|bits| BitVec::from_bits(&bits))
}

proptest! {
    #[test]
    fn display_parse_roundtrip(w in bitvec(200)) {
        let text = w.to_string();
        let back: BitVec = text.parse().unwrap();
        prop_assert_eq!(w, back);
    }

    #[test]
    fn concat_length_and_content(a in bitvec(150), b in bitvec(150)) {
        let c = a.concat(&b);
        prop_assert_eq!(c.len(), a.len() + b.len());
        for i in 0..a.len() {
            prop_assert_eq!(c.get(i), a.get(i));
        }
        for i in 0..b.len() {
            prop_assert_eq!(c.get(a.len() + i), b.get(i));
        }
    }

    #[test]
    fn concat_is_associative(a in bitvec(64), b in bitvec(64), c in bitvec(64)) {
        prop_assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
    }

    #[test]
    fn split_at_inverts_concat(a in bitvec(100), b in bitvec(100)) {
        let (x, y) = a.concat(&b).split_at(a.len());
        prop_assert_eq!(x, a);
        prop_assert_eq!(y, b);
    }

    #[test]
    fn subrange_matches_bit_loop(w in bitvec(120), start in 0usize..120, len in 0usize..60) {
        prop_assume!(start + len <= w.len());
        let s = w.subrange(start, len);
        prop_assert_eq!(s.len(), len);
        for i in 0..len {
            prop_assert_eq!(s.get(i), w.get(start + i));
        }
    }

    #[test]
    fn clamped_slice_matches_reference_model(w in bitvec(40), n1 in 0usize..60, n2 in 0usize..60) {
        // Reference: Definition 3.1 computed naively over Vec<bool>.
        let bits = w.to_bits();
        let expected: Vec<bool> = if bits.is_empty() {
            Vec::new()
        } else {
            let lo = n1.min(bits.len() - 1);
            let hi = n2.min(bits.len() - 1);
            if lo > hi { Vec::new() } else { bits[lo..=hi].to_vec() }
        };
        prop_assert_eq!(w.slice(n1, n2), BitVec::from_bits(&expected));
    }

    #[test]
    fn push_pop_are_inverses(w in bitvec(80), bit in any::<bool>()) {
        let mut v = w.clone();
        v.push(bit);
        prop_assert_eq!(v.len(), w.len() + 1);
        prop_assert_eq!(v.pop(), Some(bit));
        prop_assert_eq!(v, w);
    }

    #[test]
    fn u64_roundtrip(value in any::<u64>(), width in 0usize..=64) {
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1).wrapping_sub(0) };
        let masked = if width == 0 { 0 } else { masked & (u64::MAX >> (64 - width)) };
        let w = BitVec::from_u64(masked, width);
        prop_assert_eq!(w.len(), width);
        prop_assert_eq!(w.to_u64(), masked);
    }

    #[test]
    fn equality_agrees_with_bits(a in bitvec(90), b in bitvec(90)) {
        prop_assert_eq!(a == b, a.to_bits() == b.to_bits());
    }
}
