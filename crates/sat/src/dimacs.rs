//! Minimal CNF loaders for solver-isolation benchmarking.
//!
//! Two formats are understood:
//!
//! - standard DIMACS CNF (`p cnf <vars> <clauses>` header, clauses as
//!   whitespace-separated 1-based signed literals terminated by `0`);
//! - the engine's blast-cache export
//!   ([`SharedBlastCache::export_text`][cache] in `leapfrog-smt`): a
//!   `# leapfrog-blast-cache v1` header, then per-template `t <vars>
//!   <input_bits> <key>` lines followed by `c <lit>…` clause lines — which
//!   lets captured engine workloads (a persisted `blast_cache.txt`) be
//!   replayed directly against the solver without driving the pipeline.
//!
//! [cache]: https://docs.rs/leapfrog-smt
//!
//! The loaders return plain clause lists; [`Cnf::load_into`] feeds them to
//! a [`Solver`] built with whatever [`crate::SolverConfig`] the caller
//! wants,
//! which is how the `sat_micro` dev binary A/B-tests solver heuristics on
//! identical input.

use crate::{Lit, Solver, Var};

/// A parsed CNF instance.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables (literals index `0..num_vars`).
    pub num_vars: usize,
    /// Clauses over [`Lit`]s with 0-based variables.
    pub clauses: Vec<Vec<Lit>>,
    /// Instance label: the DIMACS filename stem or blast-cache key.
    pub name: String,
}

impl Cnf {
    /// Allocates the instance's variables in `solver` and adds every
    /// clause. Returns `false` if the clause set is unsatisfiable at the
    /// root already (mirroring [`Solver::add_clause`]).
    pub fn load_into(&self, solver: &mut Solver) -> bool {
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        let mut ok = true;
        for clause in &self.clauses {
            let mapped: Vec<Lit> = clause
                .iter()
                .map(|l| Lit::with_polarity(vars[l.var().0 as usize], !l.is_neg()))
                .collect();
            ok &= solver.add_clause(&mapped);
        }
        ok
    }
}

fn parse_signed_lit(tok: &str, num_vars: usize) -> Result<Lit, String> {
    let code: i64 = tok
        .parse()
        .map_err(|_| format!("bad literal token {tok:?}"))?;
    if code == 0 {
        return Err("literal 0 outside clause terminator position".into());
    }
    let var = code.unsigned_abs() - 1;
    if var as usize >= num_vars {
        return Err(format!("literal {code} out of range (vars={num_vars})"));
    }
    let v = Var(var as u32);
    Ok(if code < 0 { Lit::neg(v) } else { Lit::pos(v) })
}

/// Parses standard DIMACS CNF text. Comment lines (`c …`) before the
/// header are skipped; the declared clause count is not enforced (trailing
/// clauses are accepted), matching common solver behavior.
pub fn parse_dimacs(text: &str, name: &str) -> Result<Cnf, String> {
    let mut num_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(format!("unsupported problem line {line:?}"));
            }
            let v: usize = it
                .next()
                .ok_or("missing var count")?
                .parse()
                .map_err(|_| "bad var count".to_string())?;
            let _declared_clauses = it.next();
            num_vars = Some(v);
            continue;
        }
        let nv = num_vars.ok_or("clause before p cnf header")?;
        for tok in line.split_whitespace() {
            if tok == "0" {
                clauses.push(std::mem::take(&mut current));
            } else {
                current.push(parse_signed_lit(tok, nv)?);
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.ok_or("no p cnf header")?,
        clauses,
        name: name.to_string(),
    })
}

/// Parses a blast-cache export (`# leapfrog-blast-cache v1`) into one
/// [`Cnf`] per cached template, named by the template key.
pub fn parse_blast_cache(text: &str) -> Result<Vec<Cnf>, String> {
    let mut out: Vec<Cnf> = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("t ") {
            let mut it = rest.splitn(3, ' ');
            let num_vars: usize = it
                .next()
                .ok_or_else(|| format!("line {}: missing var count", n + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad var count", n + 1))?;
            let _input_bits = it.next();
            let key = it.next().unwrap_or("").to_string();
            out.push(Cnf {
                num_vars,
                clauses: Vec::new(),
                name: key,
            });
        } else if let Some(rest) = line.strip_prefix("c ") {
            let cnf = out
                .last_mut()
                .ok_or_else(|| format!("line {}: clause before any template", n + 1))?;
            let clause: Result<Vec<Lit>, String> = rest
                .split_whitespace()
                .map(|tok| parse_signed_lit(tok, cnf.num_vars))
                .collect();
            cnf.clauses.push(clause?);
        } else {
            return Err(format!("line {}: unrecognized line {line:?}", n + 1));
        }
    }
    Ok(out)
}

/// Detects the format from the content and parses accordingly: blast-cache
/// exports lead with their magic header or a `t ` template line; anything
/// else is treated as DIMACS. Returns one or more instances.
pub fn parse_auto(text: &str, name: &str) -> Result<Vec<Cnf>, String> {
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .unwrap_or("")
        .trim();
    if first.starts_with("# leapfrog-blast-cache") || first.starts_with("t ") {
        parse_blast_cache(text)
    } else {
        parse_dimacs(text, name).map(|c| vec![c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_dimacs_and_solves() {
        let text = "c a comment\np cnf 3 4\n1 2 0\n-1 3 0\n-2 -3 0\n-1 -2 0\n";
        let cnf = parse_dimacs(text, "tiny").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 4);
        let mut s = Solver::new();
        assert!(cnf.load_into(&mut s));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn parses_dimacs_unsat() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let cnf = parse_dimacs(text, "contradiction").unwrap();
        let mut s = Solver::new();
        assert!(!cnf.load_into(&mut s));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn rejects_out_of_range_literal() {
        assert!(parse_dimacs("p cnf 2 1\n3 0\n", "bad").is_err());
        assert!(parse_dimacs("1 0\n", "headerless").is_err());
    }

    #[test]
    fn parses_blast_cache_export() {
        let text = "# leapfrog-blast-cache v1\nt 3 2 key_a\nc 1 -2\nc 2 3\nt 2 1 key_b\nc -1 -2\n";
        let cnfs = parse_blast_cache(text).unwrap();
        assert_eq!(cnfs.len(), 2);
        assert_eq!(cnfs[0].name, "key_a");
        assert_eq!(cnfs[0].num_vars, 3);
        assert_eq!(cnfs[0].clauses.len(), 2);
        assert_eq!(cnfs[1].name, "key_b");
        let mut s = Solver::new();
        assert!(cnfs[0].load_into(&mut s));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn auto_detects_format() {
        assert_eq!(parse_auto("p cnf 1 1\n1 0\n", "d").unwrap().len(), 1);
        assert_eq!(
            parse_auto("# leapfrog-blast-cache v1\nt 1 1 k\nc 1\n", "b")
                .unwrap()
                .len(),
            1
        );
    }
}
