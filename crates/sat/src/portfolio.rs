//! Portfolio racing: the same CNF solved by K differently-configured CDCL
//! lanes on racing threads, first answer wins.
//!
//! # Determinism contract
//!
//! The portfolio is a pure wall-clock optimization — it must never change a
//! byte of what the engine produces. That follows from two rules, both
//! enforced here rather than trusted to callers:
//!
//! 1. **Verdicts are semantic.** Every lane solves the identical clause set
//!    under the identical assumptions, so `Sat`/`Unsat` agree across lanes
//!    by soundness; racing only changes *when* the answer arrives.
//! 2. **The canonical lane is never perturbed.** Lane 0 runs every search
//!    with the canonical configuration to full completion — it is never
//!    handed a stop flag — so its entire evolution (models, learnt clauses,
//!    branching activity, saved phases, restart counters) is byte-for-byte
//!    what a single solver with the portfolio off would have. A faster
//!    `Sat` from another lane stops the remaining losers but still waits
//!    for lane 0, whose assignment is the model handed downstream. A
//!    faster `Unsat` returns to the caller immediately (`Unsat` carries no
//!    model) while lane 0 finishes its own search on a background
//!    *catch-up* thread; every subsequent observation of canonical state —
//!    the next solve, clause or variable insertion, a model or counter
//!    read — first waits for that catch-up to land. Callers therefore see
//!    exactly the verdicts, models and solver statistics of a lone
//!    canonical solver at every lane count; only wall-clock time (and the
//!    portfolio's own racing counters) differ.
//!
//! The raced-`Unsat` latency win is consequently the gap between the
//! winning lane's finish and the caller's next canonical-state access:
//! one-shot harnesses (`sat_micro`) realize the full gap, while persistent
//! guard sessions that immediately retire an activation literal afterwards
//! bound it tightly — they get the early verdict, then pay the remaining
//! canonical search on the next touch.
//!
//! The *win* attribution uses a deterministic tie-break: when several lanes
//! finish within the settle window, the lowest-configured lane index is
//! recorded as the winner.
//!
//! # Lane failure
//!
//! A lane whose search panics posts a poison marker on the race scoreboard
//! instead of a finish, so the coordinator's waits always terminate — a
//! dead lane can lose a race but cannot hang it. The panic is re-raised
//! from [`Portfolio::solve`] (or from whichever later access joins a dead
//! catch-up thread); the portfolio must not be reused after that, since
//! the canonical solver may have died with its lane.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{Lit, SolveResult, Solver, SolverConfig, SolverStats};

/// Upper bound on configured portfolio lanes — keeps per-lane metric names
/// and win histograms fixed-size everywhere downstream.
pub const MAX_PORTFOLIO_LANES: usize = 8;

/// A racing portfolio configuration: the ordered list of lane
/// [`SolverConfig`]s (lane 0 is the canonical one whose models are used
/// downstream) plus the racing thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Per-lane solver configurations. One entry means no racing at all —
    /// the portfolio degenerates to a plain canonical solver.
    pub lanes: Vec<SolverConfig>,
    /// Live-clause floor below which a solve runs on lane 0 alone instead
    /// of spawning race threads: thread startup costs more than small
    /// instances take to solve outright.
    pub min_clauses: usize,
    /// The tie-break settle window: after the first lane finishes, other
    /// lanes get this long to also finish before losers are stopped; the
    /// lowest-indexed finisher inside the window is recorded as the winner.
    pub settle: Duration,
}

/// Default racing floor (live clauses) before threads are spawned.
pub const DEFAULT_PORTFOLIO_MIN_CLAUSES: usize = 1024;
/// Default tie-break settle window.
pub const DEFAULT_PORTFOLIO_SETTLE: Duration = Duration::from_micros(200);

impl PortfolioConfig {
    /// A non-racing portfolio: one canonical lane with the given config.
    pub fn single(cfg: SolverConfig) -> Self {
        PortfolioConfig {
            lanes: vec![cfg],
            min_clauses: DEFAULT_PORTFOLIO_MIN_CLAUSES,
            settle: DEFAULT_PORTFOLIO_SETTLE,
        }
    }

    /// Derives an `n`-lane racing portfolio from a base configuration.
    /// Lane 0 is the base itself (canonical — untouched search trajectory);
    /// the remaining lanes perturb it along independent axes: lane 1 flips
    /// the LBD retention policy, and every further lane gets a distinct
    /// branching seed, alternating phase polarity and a shifted restart
    /// schedule. `n` is clamped to `1..=`[`MAX_PORTFOLIO_LANES`].
    pub fn race(base: SolverConfig, n: usize) -> Self {
        let n = n.clamp(1, MAX_PORTFOLIO_LANES);
        let mut lanes = Vec::with_capacity(n);
        for i in 0..n {
            lanes.push(match i {
                0 => base,
                1 => SolverConfig {
                    lbd: !base.lbd,
                    ..base
                },
                _ => SolverConfig {
                    lbd: if i % 2 == 0 { base.lbd } else { !base.lbd },
                    seed: i as u64,
                    invert_phase: i % 2 == 0,
                    restart_offset: i as u64,
                },
            });
        }
        PortfolioConfig {
            lanes,
            min_clauses: DEFAULT_PORTFOLIO_MIN_CLAUSES,
            settle: DEFAULT_PORTFOLIO_SETTLE,
        }
    }

    /// Reads the portfolio from the environment: `LEAPFROG_SAT_PORTFOLIO=N`
    /// races N derived lanes (`0`, `1` or unset mean off), with the base
    /// configuration from [`SolverConfig::from_env`] and an optional racing
    /// floor from `LEAPFROG_SAT_PORTFOLIO_MIN_CLAUSES`.
    pub fn from_env() -> Self {
        let n = std::env::var("LEAPFROG_SAT_PORTFOLIO")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut cfg = if n >= 2 {
            Self::race(SolverConfig::from_env(), n)
        } else {
            Self::single(SolverConfig::from_env())
        };
        if let Some(floor) = std::env::var("LEAPFROG_SAT_PORTFOLIO_MIN_CLAUSES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.min_clauses = floor;
        }
        cfg
    }

    /// Number of configured lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Whether this configuration ever races (more than one lane).
    pub fn is_racing(&self) -> bool {
        self.lanes.len() > 1
    }
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self::single(SolverConfig::default())
    }
}

/// Aggregated racing statistics: how often the portfolio raced, which lane
/// answered first, and each lane's cumulative solver counters.
#[derive(Debug, Clone, Default)]
pub struct PortfolioStats {
    /// Configured lane count (maximum seen when absorbed across solvers).
    pub lanes: u64,
    /// Solves that actually raced on threads.
    pub races: u64,
    /// Solves answered by lane 0 alone (single lane, small instance, or a
    /// root-level conflict).
    pub solo: u64,
    /// Races won per lane: `wins[i]` counts races whose first finisher
    /// (lowest lane inside the settle window) was lane `i`.
    pub wins: [u64; MAX_PORTFOLIO_LANES],
    /// Per-lane cumulative [`SolverStats`] — lane 0's counters are also
    /// what the portfolio reports as its headline solver statistics.
    pub lane_stats: Vec<SolverStats>,
}

impl PortfolioStats {
    /// Adds another portfolio's counters into this one (lane-wise).
    pub fn absorb(&mut self, other: &PortfolioStats) {
        self.lanes = self.lanes.max(other.lanes);
        self.races += other.races;
        self.solo += other.solo;
        for (a, b) in self.wins.iter_mut().zip(other.wins) {
            *a += b;
        }
        if self.lane_stats.len() < other.lane_stats.len() {
            self.lane_stats
                .resize_with(other.lane_stats.len(), SolverStats::default);
        }
        for (a, b) in self.lane_stats.iter_mut().zip(&other.lane_stats) {
            a.absorb(b);
        }
    }

    /// The counters accumulated since `base` was snapshotted from the same
    /// accumulator (mirrors [`SolverStats::delta_since`]).
    pub fn delta_since(&self, base: &PortfolioStats) -> PortfolioStats {
        let mut wins = [0u64; MAX_PORTFOLIO_LANES];
        for (i, w) in wins.iter_mut().enumerate() {
            *w = self.wins[i] - base.wins[i];
        }
        let lane_stats = self
            .lane_stats
            .iter()
            .enumerate()
            .map(|(i, s)| match base.lane_stats.get(i) {
                Some(b) => s.delta_since(b),
                None => *s,
            })
            .collect();
        PortfolioStats {
            lanes: self.lanes,
            races: self.races - base.races,
            solo: self.solo - base.solo,
            wins,
            lane_stats,
        }
    }

    /// Total races won by lanes other than the canonical lane 0.
    pub fn non_canonical_wins(&self) -> u64 {
        self.wins[1..].iter().sum()
    }
}

/// What one lane posted on the race scoreboard.
#[derive(Clone, Copy)]
struct Finish {
    lane: usize,
    verdict: SolveResult,
}

/// Shared per-race state (finish posts plus liveness accounting).
#[derive(Default)]
struct BoardState {
    /// Lanes that completed a search, in finish order.
    finishes: Vec<Finish>,
    /// Lanes that can never post a finish anymore (their search panicked).
    poisoned: usize,
    /// Whether the canonical lane is among the poisoned ones.
    lane0_poisoned: bool,
    /// Panic payloads captured from helper lanes, re-raised by the
    /// coordinator (a scoped thread that unwinds on its own would reach
    /// scope exit as an anonymous "a scoped thread panicked").
    panics: Vec<Box<dyn std::any::Any + Send>>,
}

/// The race scoreboard. A panicking lane posts a poison marker instead of
/// a finish, so every coordinator wait has a condition some live-or-dead
/// lane is guaranteed to eventually satisfy — the race can fail but it
/// cannot hang.
#[derive(Default)]
struct Scoreboard {
    state: Mutex<BoardState>,
    cv: Condvar,
}

impl Scoreboard {
    fn lock(&self) -> MutexGuard<'_, BoardState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, BoardState>) -> MutexGuard<'a, BoardState> {
        self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    fn post(&self, lane: usize, verdict: SolveResult) {
        self.lock().finishes.push(Finish { lane, verdict });
        self.cv.notify_all();
    }

    /// Marks the canonical lane dead. Its panic payload travels through
    /// the lane's own [`JoinHandle`] instead of the board.
    fn poison_canonical(&self) {
        {
            let mut st = self.lock();
            st.poisoned += 1;
            st.lane0_poisoned = true;
        }
        self.cv.notify_all();
    }

    /// Marks a helper lane dead and parks its panic payload for the
    /// coordinator to re-raise.
    fn poison_helper(&self, payload: Box<dyn std::any::Any + Send>) {
        {
            let mut st = self.lock();
            st.poisoned += 1;
            st.panics.push(payload);
        }
        self.cv.notify_all();
    }
}

/// Lane 0's home slot. The canonical solver is either resident here or
/// owned by a background *catch-up* thread finishing a raced `Unsat`
/// search (see the module docs); [`CanonLane::join`] waits that thread out
/// and brings the solver home, re-raising its panic if the lane died.
struct CanonLane {
    solver: Option<Solver>,
    pending: Option<JoinHandle<Solver>>,
}

impl CanonLane {
    fn resident(solver: Solver) -> CanonLane {
        CanonLane {
            solver: Some(solver),
            pending: None,
        }
    }

    fn join(&mut self) -> &mut Solver {
        if let Some(handle) = self.pending.take() {
            match handle.join() {
                Ok(solver) => self.solver = Some(solver),
                Err(panic) => resume_unwind(panic),
            }
        }
        self.solver
            .as_mut()
            .expect("canonical solver resident (lost only if a racing solve panicked)")
    }
}

/// Joins any pending canonical catch-up and returns the resident lane 0
/// solver. A free function over the field (rather than a `&mut self`
/// method) so callers can keep borrowing the portfolio's other fields.
fn canon_mut(canon: &mut Mutex<CanonLane>) -> &mut Solver {
    canon
        .get_mut()
        .unwrap_or_else(PoisonError::into_inner)
        .join()
}

/// A K-lane racing solver with the same incremental interface as a single
/// [`Solver`]: variables and clauses are mirrored into every lane, solves
/// race on threads, and models are always read from lane 0 (see the module
/// docs for why that makes the portfolio byte-invisible).
pub struct Portfolio {
    /// Lane 0, behind a mutex so shared-reference accessors can also wait
    /// out a background catch-up before reading canonical state.
    canon: Mutex<CanonLane>,
    /// Lanes `1..n`; only ever searched inside `solve`'s race scope.
    others: Vec<Solver>,
    cfg: PortfolioConfig,
    races: u64,
    solo: u64,
    wins: [u64; MAX_PORTFOLIO_LANES],
    /// Test hook: per-lane artificial start delay, used to pin the settle
    /// window tie-break without relying on real instance hardness.
    #[doc(hidden)]
    pub lane_delays: Vec<Duration>,
    /// Test hook: per-lane injected panic inside the racing search, used
    /// to exercise the scoreboard's liveness accounting.
    #[doc(hidden)]
    pub lane_panics: Vec<bool>,
}

impl Default for Portfolio {
    fn default() -> Self {
        Self::with_config(PortfolioConfig::default())
    }
}

impl Portfolio {
    /// Creates an empty portfolio from the environment
    /// (see [`PortfolioConfig::from_env`]).
    pub fn new() -> Self {
        Self::with_config(PortfolioConfig::from_env())
    }

    /// Creates an empty portfolio with an explicit configuration. An empty
    /// lane list is treated as a single default lane.
    pub fn with_config(mut cfg: PortfolioConfig) -> Self {
        if cfg.lanes.is_empty() {
            cfg.lanes.push(SolverConfig::default());
        }
        cfg.lanes.truncate(MAX_PORTFOLIO_LANES);
        Portfolio {
            canon: Mutex::new(CanonLane::resident(Solver::with_config(cfg.lanes[0]))),
            others: cfg.lanes[1..]
                .iter()
                .map(|&c| Solver::with_config(c))
                .collect(),
            cfg,
            races: 0,
            solo: 0,
            wins: [0; MAX_PORTFOLIO_LANES],
            lane_delays: Vec::new(),
            lane_panics: Vec::new(),
        }
    }

    /// The active portfolio configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.cfg
    }

    /// Locks lane 0 and applies `f` to it, waiting out a background
    /// catch-up first so shared-reference reads still observe exactly the
    /// solo-solver state.
    fn with_canon<R>(&self, f: impl FnOnce(&Solver) -> R) -> R {
        let mut canon = self.canon.lock().unwrap_or_else(PoisonError::into_inner);
        f(canon.join())
    }

    /// The canonical lane (lane 0) — the solver whose models, values and
    /// headline statistics the portfolio exposes. Takes `&mut self`
    /// because it may first have to wait out a background catch-up solve
    /// (see the module docs).
    pub fn canonical(&mut self) -> &Solver {
        canon_mut(&mut self.canon)
    }

    /// Allocates a fresh variable in every lane. Lanes allocate in
    /// lock-step, so a [`Var`](crate::Var)/[`Lit`] is valid in all of them.
    pub fn new_var(&mut self) -> crate::Var {
        let v = canon_mut(&mut self.canon).new_var();
        for lane in &mut self.others {
            let w = lane.new_var();
            debug_assert_eq!(v, w, "portfolio lanes drifted out of lock-step");
        }
        v
    }

    /// Adds a clause to every lane. Returns `false` if the clause set is
    /// known unsatisfiable at the root. The returned flag is the canonical
    /// lane's own: a helper lane with extra learnt clauses may detect a
    /// root conflict a solve earlier, but downstream control flow must
    /// match a single-solver run exactly — such a lane simply answers its
    /// next race instantly.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        let ok = canon_mut(&mut self.canon).add_clause(lits);
        for lane in &mut self.others {
            lane.add_clause(lits);
        }
        ok
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.with_canon(|s| s.num_vars())
    }

    /// Live clauses in the canonical lane (lanes hold identical root
    /// clause sets; learnt sets differ).
    pub fn num_clauses(&self) -> usize {
        self.with_canon(|s| s.num_clauses())
    }

    /// Monotone count of root-level clause insertions (canonical lane).
    pub fn clauses_added(&self) -> u64 {
        self.with_canon(|s| s.clauses_added())
    }

    /// The canonical lane's solver statistics — intentionally comparable
    /// with a portfolio-off run; the other lanes' work is reported
    /// separately via [`Portfolio::portfolio_stats`].
    pub fn stats(&self) -> SolverStats {
        self.with_canon(|s| s.stats())
    }

    /// Racing statistics: race/solo counts, per-lane win histogram and
    /// per-lane cumulative solver counters.
    pub fn portfolio_stats(&self) -> PortfolioStats {
        let mut lane_stats = Vec::with_capacity(1 + self.others.len());
        lane_stats.push(self.with_canon(|s| s.stats()));
        lane_stats.extend(self.others.iter().map(|l| l.stats()));
        PortfolioStats {
            lanes: (1 + self.others.len()) as u64,
            races: self.races,
            solo: self.solo,
            wins: self.wins,
            lane_stats,
        }
    }

    /// The model value of `v` after a `Sat` answer, read from the
    /// canonical lane.
    pub fn value(&self, v: crate::Var) -> Option<bool> {
        self.with_canon(|s| s.value(v))
    }

    /// The model value of a literal, read from the canonical lane.
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.with_canon(|s| s.lit_value(l))
    }

    /// Solves under the given assumptions, racing the lanes when the
    /// instance is large enough. Lane 0 always runs its own search to
    /// completion — synchronously on `Sat` (the model must be canonical),
    /// on a background catch-up thread when it loses an `Unsat` race.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let lane0 = canon_mut(&mut self.canon);
        if self.others.is_empty()
            || lane0.root_conflict()
            || lane0.num_clauses() < self.cfg.min_clauses
        {
            self.solo += 1;
            return lane0.solve(assumptions);
        }
        self.races += 1;
        let n = 1 + self.others.len();
        let settle = self.cfg.settle;
        let board = Arc::new(Scoreboard::default());

        // Lane 0 races on an unscoped thread that owns the solver
        // outright, so a raced `Unsat` can return to the caller while the
        // canonical search completes in the background. It gets no stop
        // flag: the canonical search always runs to completion.
        let mut lane0 = self
            .canon
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .solver
            .take()
            .expect("canonical solver resident after join");
        let lane0_board = Arc::clone(&board);
        let lane0_assumptions = assumptions.to_vec();
        let lane0_delay = self.lane_delays.first().copied();
        let lane0_inject = self.lane_panics.first().copied().unwrap_or(false);
        let lane0_handle = std::thread::spawn(move || {
            if let Some(d) = lane0_delay {
                // Test-only pacing; `lane_delays` is empty in production.
                std::thread::sleep(d);
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                if lane0_inject {
                    panic!("injected lane panic");
                }
                lane0.solve(&lane0_assumptions)
            }));
            match result {
                Ok(v) => {
                    lane0_board.post(0, v);
                    lane0
                }
                Err(panic) => {
                    lane0_board.poison_canonical();
                    resume_unwind(panic)
                }
            }
        });

        let stops: Vec<AtomicBool> = self.others.iter().map(|_| AtomicBool::new(false)).collect();
        let delays: Vec<Option<Duration>> =
            (1..n).map(|i| self.lane_delays.get(i).copied()).collect();
        let injects: Vec<bool> = (1..n)
            .map(|i| self.lane_panics.get(i).copied().unwrap_or(false))
            .collect();

        let mut winner = 0usize;
        let mut verdict = None;
        std::thread::scope(|s| {
            for (i, lane) in self.others.iter_mut().enumerate() {
                let lane_idx = i + 1;
                let stop = &stops[i];
                let board = &board;
                let delay = delays[i];
                let inject = injects[i];
                s.spawn(move || {
                    if let Some(d) = delay {
                        std::thread::sleep(d);
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if inject {
                            panic!("injected lane panic");
                        }
                        lane.solve_interruptible(assumptions, stop)
                    }));
                    match result {
                        Ok(Some(v)) => board.post(lane_idx, v),
                        Ok(None) => {} // stopped as a loser: nothing to post
                        Err(panic) => board.poison_helper(panic),
                    }
                });
            }

            // Coordinate the race from the calling thread: wait for the
            // first finisher, give near-simultaneous lanes the settle
            // window, then stop the losers.
            let mut st = board.lock();
            while st.finishes.is_empty() && st.poisoned < n {
                st = board.wait(st);
            }
            if st.finishes.is_empty() {
                // Every lane panicked; the payloads are re-raised after
                // the scope closes.
                return;
            }
            drop(st);
            std::thread::sleep(settle);

            let st = board.lock();
            winner = st
                .finishes
                .iter()
                .map(|f| f.lane)
                .min()
                .expect("scoreboard cannot empty once posted");
            let v = st.finishes[0].verdict;
            debug_assert!(
                st.finishes.iter().all(|f| f.verdict == v),
                "portfolio lanes disagreed on a verdict"
            );
            verdict = Some(v);
            drop(st);

            // Stop the losing helpers. Lane 0 has no stop flag — the
            // canonical search always completes, on this thread's time
            // for `Sat`, in the background for a raced `Unsat`.
            for stop in &stops {
                stop.store(true, Ordering::Relaxed);
            }

            if v == SolveResult::Sat {
                // The model handed downstream is lane 0's own: wait for
                // the canonical completion (or its death, re-raised at
                // the join below).
                let mut st = board.lock();
                while !st.finishes.iter().any(|f| f.lane == 0) && !st.lane0_poisoned {
                    st = board.wait(st);
                }
            }
        });

        let mut st = board.lock();
        let lane0_done = st.finishes.iter().any(|f| f.lane == 0);
        let lane0_poisoned = st.lane0_poisoned;
        let helper_panic = st.panics.drain(..).next();
        drop(st);
        let canon = self.canon.get_mut().unwrap_or_else(PoisonError::into_inner);
        if lane0_done
            || lane0_poisoned
            || helper_panic.is_some()
            || verdict != Some(SolveResult::Unsat)
        {
            // Lane 0 already finished (or a lane died and the solve is
            // about to fail): bring the canonical solver home now. A dead
            // lane 0 re-raises its own panic here.
            match lane0_handle.join() {
                Ok(solver) => canon.solver = Some(solver),
                Err(panic) => resume_unwind(panic),
            }
        } else {
            // A raced `Unsat` with the canonical search still running:
            // hand the verdict back now and let lane 0 catch up in the
            // background. Whoever next observes canonical state joins it
            // first (`CanonLane::join`).
            canon.pending = Some(lane0_handle);
        }
        if let Some(panic) = helper_panic {
            resume_unwind(panic);
        }
        let v = verdict.expect("verdict posted unless every lane panicked");
        self.wins[winner] += 1;
        v
    }
}

impl Drop for Portfolio {
    /// Waits out any background canonical catch-up so no solver thread
    /// outlives its portfolio. A panic from that thread is swallowed here:
    /// re-raising during an unwind would abort the process.
    fn drop(&mut self) {
        let canon = self.canon.get_mut().unwrap_or_else(PoisonError::into_inner);
        if let Some(handle) = canon.pending.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    /// A small pigeonhole instance (`p` pigeons into `p - 1` holes):
    /// unsatisfiable, and hard enough to generate real search.
    fn pigeonhole(s: &mut Portfolio, pigeons: usize) {
        let holes = pigeons - 1;
        let var = |p: usize, h: usize| Var((p * holes + h) as u32);
        for _ in 0..pigeons * holes {
            s.new_var();
        }
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
    }

    /// Pigeonhole clauses gated behind an activation variable (returned),
    /// so an `Unsat` verdict comes from the assumption rather than a root
    /// conflict and the portfolio stays solvable afterwards.
    fn gated_pigeonhole(s: &mut Portfolio, pigeons: usize) -> Var {
        let holes = pigeons - 1;
        let act = s.new_var();
        let var = |p: usize, h: usize| Var((1 + p * holes + h) as u32);
        for _ in 0..pigeons * holes {
            s.new_var();
        }
        for p in 0..pigeons {
            let mut clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
            clause.push(Lit::neg(act));
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h)), Lit::neg(act)]);
                }
            }
        }
        act
    }

    fn racing_config(n: usize) -> PortfolioConfig {
        let mut cfg = PortfolioConfig::race(SolverConfig::default(), n);
        cfg.min_clauses = 0; // race even on tiny test instances
        cfg
    }

    #[test]
    fn derived_lanes_are_distinct_and_lane0_is_canonical() {
        let cfg = PortfolioConfig::race(SolverConfig::default(), 4);
        assert_eq!(cfg.lane_count(), 4);
        assert_eq!(cfg.lanes[0], SolverConfig::default());
        assert!(cfg.lanes[0].is_canonical());
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(cfg.lanes[i], cfg.lanes[j], "lanes {i} and {j} identical");
            }
        }
    }

    #[test]
    fn racing_agrees_with_single_solver_on_verdicts() {
        let mut racing = Portfolio::with_config(racing_config(4));
        let mut single = Portfolio::with_config(PortfolioConfig::single(SolverConfig::default()));
        pigeonhole(&mut racing, 5);
        pigeonhole(&mut single, 5);
        assert_eq!(racing.solve(&[]), SolveResult::Unsat);
        assert_eq!(single.solve(&[]), SolveResult::Unsat);
        let ps = racing.portfolio_stats();
        assert_eq!(ps.races, 1);
        assert_eq!(ps.wins.iter().sum::<u64>(), 1);
        assert_eq!(ps.lane_stats.len(), 4);
    }

    #[test]
    fn sat_models_come_from_the_canonical_lane() {
        // An instance with many models: racing lanes will find different
        // ones, but the portfolio must report exactly what a lone
        // canonical solver reports.
        let build = |s: &mut Portfolio| {
            let vars: Vec<Var> = (0..30).map(|_| s.new_var()).collect();
            for w in vars.windows(2) {
                s.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
            }
            vars
        };
        let mut racing = Portfolio::with_config(racing_config(4));
        let mut single = Portfolio::with_config(PortfolioConfig::single(SolverConfig::default()));
        let vr = build(&mut racing);
        let vs = build(&mut single);
        assert_eq!(racing.solve(&[]), SolveResult::Sat);
        assert_eq!(single.solve(&[]), SolveResult::Sat);
        for (a, b) in vr.iter().zip(&vs) {
            assert_eq!(racing.value(*a), single.value(*b));
        }
    }

    #[test]
    fn raced_unsat_leaves_canonical_state_identical_to_solo() {
        // The high bar of the determinism contract: after an Unsat race
        // (where lane 0 may lose and catch up in the background), every
        // observable piece of canonical state — the next model, the
        // solver counters, the live-clause count — must match a
        // portfolio-off solver that ran the same sequence.
        let run = |cfg: PortfolioConfig| {
            let mut p = Portfolio::with_config(cfg);
            let act = gated_pigeonhole(&mut p, 6);
            assert_eq!(p.solve(&[Lit::pos(act)]), SolveResult::Unsat);
            assert_eq!(p.solve(&[]), SolveResult::Sat);
            let model: Vec<Option<bool>> =
                (0..p.num_vars()).map(|v| p.value(Var(v as u32))).collect();
            (model, format!("{:?}", p.stats()), p.num_clauses())
        };
        let solo = run(PortfolioConfig::single(SolverConfig::default()));
        for lanes in [2, 4] {
            let raced = run(racing_config(lanes));
            assert_eq!(raced.0, solo.0, "{lanes}-lane model diverged");
            assert_eq!(raced.1, solo.1, "{lanes}-lane canonical stats diverged");
            assert_eq!(raced.2, solo.2, "{lanes}-lane live clauses diverged");
        }
    }

    #[test]
    fn raced_unsat_returns_before_the_canonical_catch_up() {
        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_delays = vec![Duration::from_millis(600), Duration::ZERO];
        let act = gated_pigeonhole(&mut p, 5);
        let t0 = std::time::Instant::now();
        assert_eq!(p.solve(&[Lit::pos(act)]), SolveResult::Unsat);
        let verdict_at = t0.elapsed();
        // The delayed canonical lane is still asleep when lane 1 wins;
        // the verdict must come back without waiting for it...
        assert!(
            verdict_at < Duration::from_millis(300),
            "raced Unsat verdict waited for the canonical lane: {verdict_at:?}"
        );
        // ...and the next canonical-state read must wait the catch-up out.
        let stats = p.stats();
        assert!(
            t0.elapsed() >= Duration::from_millis(600),
            "stats read did not join the catch-up"
        );
        assert!(stats.conflicts > 0, "canonical lane never really searched");
    }

    #[test]
    fn dropping_a_portfolio_with_a_pending_catch_up_joins_it() {
        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_delays = vec![Duration::from_millis(100), Duration::ZERO];
        let act = gated_pigeonhole(&mut p, 5);
        assert_eq!(p.solve(&[Lit::pos(act)]), SolveResult::Unsat);
        drop(p); // must wait out the catch-up thread, not leak or panic
    }

    #[test]
    fn tie_break_prefers_lowest_lane_within_settle_window() {
        // All lanes solve the trivial instance instantly — well inside the
        // settle window — so the deterministic tie-break must always
        // attribute the win to lane 0, regardless of scheduling.
        for _ in 0..20 {
            let mut p = Portfolio::with_config(racing_config(3));
            pigeonhole(&mut p, 4);
            assert_eq!(p.solve(&[]), SolveResult::Unsat);
            let ps = p.portfolio_stats();
            assert_eq!(ps.wins[0], 1, "lowest finisher must win ties");
        }
    }

    #[test]
    fn slowed_canonical_lane_loses_the_race_but_keeps_the_model() {
        // Delay lane 0 past the settle window: a non-canonical lane must
        // be attributed the win. On Unsat that's the whole story; repeat
        // with a satisfiable instance to check the model still comes from
        // the (slow) canonical lane.
        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_delays = vec![Duration::from_millis(50), Duration::ZERO];
        pigeonhole(&mut p, 4);
        assert_eq!(p.solve(&[]), SolveResult::Unsat);
        let ps = p.portfolio_stats();
        assert_eq!(ps.wins[1], 1, "slowed winning lane must lose the tie-break");
        assert_eq!(ps.non_canonical_wins(), 1);

        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_delays = vec![Duration::from_millis(50), Duration::ZERO];
        let vars: Vec<Var> = (0..8).map(|_| p.new_var()).collect();
        for w in vars.windows(2) {
            p.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(p.solve(&[]), SolveResult::Sat);
        let mut single = Solver::with_config(SolverConfig::default());
        let svars: Vec<Var> = (0..8).map(|_| single.new_var()).collect();
        for w in svars.windows(2) {
            single.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(single.solve(&[]), SolveResult::Sat);
        for (a, b) in vars.iter().zip(&svars) {
            assert_eq!(p.value(*a), single.value(*b), "model must be canonical");
        }
    }

    #[test]
    #[should_panic(expected = "injected lane panic")]
    fn a_panicking_helper_lane_fails_the_solve_instead_of_hanging_it() {
        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_panics = vec![false, true];
        pigeonhole(&mut p, 4);
        let _ = p.solve(&[]);
    }

    #[test]
    #[should_panic(expected = "injected lane panic")]
    fn a_panicking_canonical_lane_fails_the_solve_instead_of_hanging_it() {
        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_panics = vec![true, false];
        pigeonhole(&mut p, 4);
        // Depending on when lane 0's death lands on the scoreboard, the
        // panic re-raises either from the solve itself or from the next
        // canonical-state access that joins the dead lane.
        let _ = p.solve(&[]);
        let _ = p.stats();
    }

    #[test]
    #[should_panic(expected = "injected lane panic")]
    fn every_lane_panicking_fails_the_solve_instead_of_hanging_it() {
        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_panics = vec![true, true];
        pigeonhole(&mut p, 4);
        let _ = p.solve(&[]);
    }

    #[test]
    fn interrupted_solver_stays_usable() {
        let mut s = Solver::with_config(SolverConfig::default());
        let stop = AtomicBool::new(true);
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        // A pre-raised flag interrupts before any decision.
        assert_eq!(s.solve_interruptible(&[], &stop), None);
        // The solver answers normally afterwards.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.add_clause(&[Lit::neg(a)]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn portfolio_stats_absorb_and_delta_roundtrip() {
        let mut a = PortfolioStats {
            lanes: 2,
            races: 3,
            solo: 1,
            ..PortfolioStats::default()
        };
        a.wins[0] = 2;
        a.wins[1] = 1;
        a.lane_stats = vec![SolverStats::default(); 2];
        a.lane_stats[1].conflicts = 7;
        let base = a.clone();
        let mut b = a.clone();
        b.absorb(&a);
        assert_eq!(b.races, 6);
        assert_eq!(b.wins[0], 4);
        assert_eq!(b.lane_stats[1].conflicts, 14);
        let d = b.delta_since(&base);
        assert_eq!(d.races, 3);
        assert_eq!(d.wins[1], 1);
        assert_eq!(d.lane_stats[1].conflicts, 7);
    }
}
