//! Portfolio racing: the same CNF solved by K differently-configured CDCL
//! lanes on scoped threads, first answer wins.
//!
//! # Determinism contract
//!
//! The portfolio is a pure wall-clock optimization — it must never change a
//! byte of what the engine produces. That follows from two rules, both
//! enforced here rather than trusted to callers:
//!
//! 1. **Verdicts are semantic.** Every lane solves the identical clause
//!    set under the identical assumptions, so `Sat`/`Unsat` agree across
//!    lanes by soundness; racing only changes *when* the answer arrives.
//! 2. **Models come from the canonical lane.** On a `Sat` answer the model
//!    handed downstream is always lane 0's own, produced by lane 0 running
//!    its canonical search to completion (a faster `Sat` from another lane
//!    stops the remaining lanes but never lane 0). Lane 0's search state is
//!    only ever interrupted on `Unsat` answers — which carry no model, and
//!    after which the next model request again waits for lane 0's own
//!    completion. A portfolio at any lane count therefore hands out exactly
//!    the verdict-and-model sequence of a single canonical solver as far as
//!    anything model-consuming (CEGAR refinement, witness extraction) can
//!    observe; only counters and wall-clock differ.
//!
//! The *win* attribution uses a deterministic tie-break: when several lanes
//! finish within the settle window, the lowest-configured lane index is
//! recorded as the winner.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::{Lit, SolveResult, Solver, SolverConfig, SolverStats};

/// Upper bound on configured portfolio lanes — keeps per-lane metric names
/// and win histograms fixed-size everywhere downstream.
pub const MAX_PORTFOLIO_LANES: usize = 8;

/// A racing portfolio configuration: the ordered list of lane
/// [`SolverConfig`]s (lane 0 is the canonical one whose models are used
/// downstream) plus the racing thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Per-lane solver configurations. One entry means no racing at all —
    /// the portfolio degenerates to a plain canonical solver.
    pub lanes: Vec<SolverConfig>,
    /// Live-clause floor below which a solve runs on lane 0 alone instead
    /// of spawning race threads: thread startup costs more than small
    /// instances take to solve outright.
    pub min_clauses: usize,
    /// The tie-break settle window: after the first lane finishes, other
    /// lanes get this long to also finish before losers are stopped; the
    /// lowest-indexed finisher inside the window is recorded as the winner.
    pub settle: Duration,
}

/// Default racing floor (live clauses) before threads are spawned.
pub const DEFAULT_PORTFOLIO_MIN_CLAUSES: usize = 1024;
/// Default tie-break settle window.
pub const DEFAULT_PORTFOLIO_SETTLE: Duration = Duration::from_micros(200);

impl PortfolioConfig {
    /// A non-racing portfolio: one canonical lane with the given config.
    pub fn single(cfg: SolverConfig) -> Self {
        PortfolioConfig {
            lanes: vec![cfg],
            min_clauses: DEFAULT_PORTFOLIO_MIN_CLAUSES,
            settle: DEFAULT_PORTFOLIO_SETTLE,
        }
    }

    /// Derives an `n`-lane racing portfolio from a base configuration.
    /// Lane 0 is the base itself (canonical — untouched search trajectory);
    /// the remaining lanes perturb it along independent axes: lane 1 flips
    /// the LBD retention policy, and every further lane gets a distinct
    /// branching seed, alternating phase polarity and a shifted restart
    /// schedule. `n` is clamped to `1..=`[`MAX_PORTFOLIO_LANES`].
    pub fn race(base: SolverConfig, n: usize) -> Self {
        let n = n.clamp(1, MAX_PORTFOLIO_LANES);
        let mut lanes = Vec::with_capacity(n);
        for i in 0..n {
            lanes.push(match i {
                0 => base,
                1 => SolverConfig {
                    lbd: !base.lbd,
                    ..base
                },
                _ => SolverConfig {
                    lbd: if i % 2 == 0 { base.lbd } else { !base.lbd },
                    seed: i as u64,
                    invert_phase: i % 2 == 0,
                    restart_offset: i as u64,
                },
            });
        }
        PortfolioConfig {
            lanes,
            min_clauses: DEFAULT_PORTFOLIO_MIN_CLAUSES,
            settle: DEFAULT_PORTFOLIO_SETTLE,
        }
    }

    /// Reads the portfolio from the environment: `LEAPFROG_SAT_PORTFOLIO=N`
    /// races N derived lanes (`0`, `1` or unset mean off), with the base
    /// configuration from [`SolverConfig::from_env`] and an optional racing
    /// floor from `LEAPFROG_SAT_PORTFOLIO_MIN_CLAUSES`.
    pub fn from_env() -> Self {
        let n = std::env::var("LEAPFROG_SAT_PORTFOLIO")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut cfg = if n >= 2 {
            Self::race(SolverConfig::from_env(), n)
        } else {
            Self::single(SolverConfig::from_env())
        };
        if let Some(floor) = std::env::var("LEAPFROG_SAT_PORTFOLIO_MIN_CLAUSES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.min_clauses = floor;
        }
        cfg
    }

    /// Number of configured lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Whether this configuration ever races (more than one lane).
    pub fn is_racing(&self) -> bool {
        self.lanes.len() > 1
    }
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self::single(SolverConfig::default())
    }
}

/// Aggregated racing statistics: how often the portfolio raced, which lane
/// answered first, and each lane's cumulative solver counters.
#[derive(Debug, Clone, Default)]
pub struct PortfolioStats {
    /// Configured lane count (maximum seen when absorbed across solvers).
    pub lanes: u64,
    /// Solves that actually raced on threads.
    pub races: u64,
    /// Solves answered by lane 0 alone (single lane, small instance, or a
    /// root-level conflict).
    pub solo: u64,
    /// Races won per lane: `wins[i]` counts races whose first finisher
    /// (lowest lane inside the settle window) was lane `i`.
    pub wins: [u64; MAX_PORTFOLIO_LANES],
    /// Per-lane cumulative [`SolverStats`] — lane 0's counters are also
    /// what the portfolio reports as its headline solver statistics.
    pub lane_stats: Vec<SolverStats>,
}

impl PortfolioStats {
    /// Adds another portfolio's counters into this one (lane-wise).
    pub fn absorb(&mut self, other: &PortfolioStats) {
        self.lanes = self.lanes.max(other.lanes);
        self.races += other.races;
        self.solo += other.solo;
        for (a, b) in self.wins.iter_mut().zip(other.wins) {
            *a += b;
        }
        if self.lane_stats.len() < other.lane_stats.len() {
            self.lane_stats
                .resize_with(other.lane_stats.len(), SolverStats::default);
        }
        for (a, b) in self.lane_stats.iter_mut().zip(&other.lane_stats) {
            a.absorb(b);
        }
    }

    /// The counters accumulated since `base` was snapshotted from the same
    /// accumulator (mirrors [`SolverStats::delta_since`]).
    pub fn delta_since(&self, base: &PortfolioStats) -> PortfolioStats {
        let mut wins = [0u64; MAX_PORTFOLIO_LANES];
        for (i, w) in wins.iter_mut().enumerate() {
            *w = self.wins[i] - base.wins[i];
        }
        let lane_stats = self
            .lane_stats
            .iter()
            .enumerate()
            .map(|(i, s)| match base.lane_stats.get(i) {
                Some(b) => s.delta_since(b),
                None => *s,
            })
            .collect();
        PortfolioStats {
            lanes: self.lanes,
            races: self.races - base.races,
            solo: self.solo - base.solo,
            wins,
            lane_stats,
        }
    }

    /// Total races won by lanes other than the canonical lane 0.
    pub fn non_canonical_wins(&self) -> u64 {
        self.wins[1..].iter().sum()
    }
}

/// What one lane posted on the race scoreboard.
#[derive(Clone, Copy)]
struct Finish {
    lane: usize,
    verdict: SolveResult,
}

/// A K-lane racing solver with the same incremental interface as a single
/// [`Solver`]: variables and clauses are mirrored into every lane, solves
/// race on scoped threads, and models are always read from lane 0 (see the
/// module docs for why that makes the portfolio byte-invisible).
pub struct Portfolio {
    lanes: Vec<Solver>,
    cfg: PortfolioConfig,
    races: u64,
    solo: u64,
    wins: [u64; MAX_PORTFOLIO_LANES],
    /// Test hook: per-lane artificial start delay, used to pin the settle
    /// window tie-break without relying on real instance hardness.
    #[doc(hidden)]
    pub lane_delays: Vec<Duration>,
}

impl Default for Portfolio {
    fn default() -> Self {
        Self::with_config(PortfolioConfig::default())
    }
}

impl Portfolio {
    /// Creates an empty portfolio from the environment
    /// (see [`PortfolioConfig::from_env`]).
    pub fn new() -> Self {
        Self::with_config(PortfolioConfig::from_env())
    }

    /// Creates an empty portfolio with an explicit configuration. An empty
    /// lane list is treated as a single default lane.
    pub fn with_config(mut cfg: PortfolioConfig) -> Self {
        if cfg.lanes.is_empty() {
            cfg.lanes.push(SolverConfig::default());
        }
        cfg.lanes.truncate(MAX_PORTFOLIO_LANES);
        Portfolio {
            lanes: cfg.lanes.iter().map(|&c| Solver::with_config(c)).collect(),
            cfg,
            races: 0,
            solo: 0,
            wins: [0; MAX_PORTFOLIO_LANES],
            lane_delays: Vec::new(),
        }
    }

    /// The active portfolio configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.cfg
    }

    /// The canonical lane (lane 0) — the solver whose models, values and
    /// headline statistics the portfolio exposes.
    pub fn canonical(&self) -> &Solver {
        &self.lanes[0]
    }

    /// Allocates a fresh variable in every lane. Lanes allocate in
    /// lock-step, so a [`Var`](crate::Var)/[`Lit`] is valid in all of them.
    pub fn new_var(&mut self) -> crate::Var {
        let mut it = self.lanes.iter_mut();
        let v = it
            .next()
            .expect("portfolio has at least one lane")
            .new_var();
        for lane in it {
            let w = lane.new_var();
            debug_assert_eq!(v, w, "portfolio lanes drifted out of lock-step");
        }
        v
    }

    /// Adds a clause to every lane. Returns `false` if the clause set is
    /// now unsatisfiable at the root (lanes agree by construction).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        let mut ok = true;
        for lane in &mut self.lanes {
            ok &= lane.add_clause(lits);
        }
        ok
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.lanes[0].num_vars()
    }

    /// Live clauses in the canonical lane (lanes hold identical root
    /// clause sets; learnt sets differ).
    pub fn num_clauses(&self) -> usize {
        self.lanes[0].num_clauses()
    }

    /// Monotone count of root-level clause insertions (canonical lane).
    pub fn clauses_added(&self) -> u64 {
        self.lanes[0].clauses_added()
    }

    /// The canonical lane's solver statistics — intentionally comparable
    /// with a portfolio-off run; the other lanes' work is reported
    /// separately via [`Portfolio::portfolio_stats`].
    pub fn stats(&self) -> SolverStats {
        self.lanes[0].stats()
    }

    /// Racing statistics: race/solo counts, per-lane win histogram and
    /// per-lane cumulative solver counters.
    pub fn portfolio_stats(&self) -> PortfolioStats {
        PortfolioStats {
            lanes: self.lanes.len() as u64,
            races: self.races,
            solo: self.solo,
            wins: self.wins,
            lane_stats: self.lanes.iter().map(|l| l.stats()).collect(),
        }
    }

    /// The model value of `v` after a `Sat` answer, read from the
    /// canonical lane.
    pub fn value(&self, v: crate::Var) -> Option<bool> {
        self.lanes[0].value(v)
    }

    /// The model value of a literal, read from the canonical lane.
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.lanes[0].lit_value(l)
    }

    /// Solves under the given assumptions, racing the lanes when the
    /// instance is large enough. On `Sat`, lane 0 always runs its own
    /// search to completion so the model is the canonical one.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.lanes.len() == 1
            || self.lanes[0].root_conflict()
            || self.lanes[0].num_clauses() < self.cfg.min_clauses
        {
            self.solo += 1;
            return self.lanes[0].solve(assumptions);
        }
        self.races += 1;
        let settle = self.cfg.settle;
        let delays = &self.lane_delays;
        let n = self.lanes.len();
        let stops: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let board: Mutex<Vec<Finish>> = Mutex::new(Vec::new());
        let cv = Condvar::new();

        let mut winner = 0usize;
        let mut verdict = None;
        std::thread::scope(|s| {
            for (lane_idx, lane) in self.lanes.iter_mut().enumerate() {
                let stop = &stops[lane_idx];
                let board = &board;
                let cv = &cv;
                let delay = delays.get(lane_idx).copied();
                s.spawn(move || {
                    if let Some(d) = delay {
                        // Test-only pacing; `lane_delays` is empty in
                        // production portfolios.
                        std::thread::sleep(d);
                    }
                    if let Some(v) = lane.solve_interruptible(assumptions, stop) {
                        let mut b = board.lock().unwrap();
                        b.push(Finish {
                            lane: lane_idx,
                            verdict: v,
                        });
                        cv.notify_all();
                    }
                });
            }

            // Coordinate the race from the calling thread: wait for the
            // first finisher, give near-simultaneous lanes the settle
            // window, then stop the losers. The timeout on every wait is
            // defensive only (a lane that panics never posts).
            let tick = Duration::from_millis(10);
            let mut b = board.lock().unwrap();
            while b.is_empty() {
                b = cv.wait_timeout(b, tick).unwrap().0;
            }
            drop(b);
            std::thread::sleep(settle);

            let b = board.lock().unwrap();
            let first = b
                .iter()
                .map(|f| f.lane)
                .min()
                .expect("scoreboard cannot empty once posted");
            winner = first;
            let v = b[0].verdict;
            debug_assert!(
                b.iter().all(|f| f.verdict == v),
                "portfolio lanes disagreed on a verdict"
            );
            verdict = Some(v);
            let lane0_done = b.iter().any(|f| f.lane == 0);
            drop(b);

            match v {
                SolveResult::Unsat => {
                    for stop in &stops {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                SolveResult::Sat => {
                    // Stop every lane except the canonical one, then wait
                    // for lane 0's own completion: its assignment is the
                    // model handed downstream.
                    for stop in stops.iter().skip(1) {
                        stop.store(true, Ordering::Relaxed);
                    }
                    if !lane0_done {
                        let mut b = board.lock().unwrap();
                        while !b.iter().any(|f| f.lane == 0) {
                            b = cv.wait_timeout(b, tick).unwrap().0;
                        }
                    }
                }
            }
        });
        self.wins[winner] += 1;
        verdict.expect("race completed without a verdict")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    /// A small pigeonhole instance (`p` pigeons into `p - 1` holes):
    /// unsatisfiable, and hard enough to generate real search.
    fn pigeonhole(s: &mut Portfolio, pigeons: usize) {
        let holes = pigeons - 1;
        let var = |p: usize, h: usize| Var((p * holes + h) as u32);
        for _ in 0..pigeons * holes {
            s.new_var();
        }
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
    }

    fn racing_config(n: usize) -> PortfolioConfig {
        let mut cfg = PortfolioConfig::race(SolverConfig::default(), n);
        cfg.min_clauses = 0; // race even on tiny test instances
        cfg
    }

    #[test]
    fn derived_lanes_are_distinct_and_lane0_is_canonical() {
        let cfg = PortfolioConfig::race(SolverConfig::default(), 4);
        assert_eq!(cfg.lane_count(), 4);
        assert_eq!(cfg.lanes[0], SolverConfig::default());
        assert!(cfg.lanes[0].is_canonical());
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(cfg.lanes[i], cfg.lanes[j], "lanes {i} and {j} identical");
            }
        }
    }

    #[test]
    fn racing_agrees_with_single_solver_on_verdicts() {
        let mut racing = Portfolio::with_config(racing_config(4));
        let mut single = Portfolio::with_config(PortfolioConfig::single(SolverConfig::default()));
        pigeonhole(&mut racing, 5);
        pigeonhole(&mut single, 5);
        assert_eq!(racing.solve(&[]), SolveResult::Unsat);
        assert_eq!(single.solve(&[]), SolveResult::Unsat);
        let ps = racing.portfolio_stats();
        assert_eq!(ps.races, 1);
        assert_eq!(ps.wins.iter().sum::<u64>(), 1);
        assert_eq!(ps.lane_stats.len(), 4);
    }

    #[test]
    fn sat_models_come_from_the_canonical_lane() {
        // An instance with many models: racing lanes will find different
        // ones, but the portfolio must report exactly what a lone
        // canonical solver reports.
        let build = |s: &mut Portfolio| {
            let vars: Vec<Var> = (0..30).map(|_| s.new_var()).collect();
            for w in vars.windows(2) {
                s.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
            }
            vars
        };
        let mut racing = Portfolio::with_config(racing_config(4));
        let mut single = Portfolio::with_config(PortfolioConfig::single(SolverConfig::default()));
        let vr = build(&mut racing);
        let vs = build(&mut single);
        assert_eq!(racing.solve(&[]), SolveResult::Sat);
        assert_eq!(single.solve(&[]), SolveResult::Sat);
        for (a, b) in vr.iter().zip(&vs) {
            assert_eq!(racing.value(*a), single.value(*b));
        }
    }

    #[test]
    fn tie_break_prefers_lowest_lane_within_settle_window() {
        // All lanes solve the trivial instance instantly — well inside the
        // settle window — so the deterministic tie-break must always
        // attribute the win to lane 0, regardless of scheduling.
        for _ in 0..20 {
            let mut p = Portfolio::with_config(racing_config(3));
            pigeonhole(&mut p, 4);
            assert_eq!(p.solve(&[]), SolveResult::Unsat);
            let ps = p.portfolio_stats();
            assert_eq!(ps.wins[0], 1, "lowest finisher must win ties");
        }
    }

    #[test]
    fn slowed_canonical_lane_loses_the_race_but_keeps_the_model() {
        // Delay lane 0 past the settle window: a non-canonical lane must
        // be attributed the win. On Unsat that's the whole story; repeat
        // with a satisfiable instance to check the model still comes from
        // the (slow) canonical lane.
        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_delays = vec![Duration::from_millis(50), Duration::ZERO];
        pigeonhole(&mut p, 4);
        assert_eq!(p.solve(&[]), SolveResult::Unsat);
        let ps = p.portfolio_stats();
        assert_eq!(ps.wins[1], 1, "slowed winning lane must lose the tie-break");
        assert_eq!(ps.non_canonical_wins(), 1);

        let mut p = Portfolio::with_config(racing_config(2));
        p.lane_delays = vec![Duration::from_millis(50), Duration::ZERO];
        let vars: Vec<Var> = (0..8).map(|_| p.new_var()).collect();
        for w in vars.windows(2) {
            p.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(p.solve(&[]), SolveResult::Sat);
        let mut single = Solver::with_config(SolverConfig::default());
        let svars: Vec<Var> = (0..8).map(|_| single.new_var()).collect();
        for w in svars.windows(2) {
            single.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(single.solve(&[]), SolveResult::Sat);
        for (a, b) in vars.iter().zip(&svars) {
            assert_eq!(p.value(*a), single.value(*b), "model must be canonical");
        }
    }

    #[test]
    fn interrupted_solver_stays_usable() {
        let mut s = Solver::with_config(SolverConfig::default());
        let stop = AtomicBool::new(true);
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        // A pre-raised flag interrupts before any decision.
        assert_eq!(s.solve_interruptible(&[], &stop), None);
        // The solver answers normally afterwards.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.add_clause(&[Lit::neg(a)]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn portfolio_stats_absorb_and_delta_roundtrip() {
        let mut a = PortfolioStats {
            lanes: 2,
            races: 3,
            solo: 1,
            ..PortfolioStats::default()
        };
        a.wins[0] = 2;
        a.wins[1] = 1;
        a.lane_stats = vec![SolverStats::default(); 2];
        a.lane_stats[1].conflicts = 7;
        let base = a.clone();
        let mut b = a.clone();
        b.absorb(&a);
        assert_eq!(b.races, 6);
        assert_eq!(b.wins[0], 4);
        assert_eq!(b.lane_stats[1].conflicts, 14);
        let d = b.delta_since(&base);
        assert_eq!(d.races, 3);
        assert_eq!(d.wins[1], 1);
        assert_eq!(d.lane_stats[1].conflicts, 7);
    }
}
