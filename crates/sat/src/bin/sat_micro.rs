//! Solver-isolation microbenchmark: run the CDCL core on captured CNFs
//! without driving the engine.
//!
//! Accepts standard DIMACS files and blast-cache exports (the
//! `blast_cache.txt` a persistent engine writes into its state dir), so a
//! captured engine workload can be replayed straight through the solver:
//!
//! ```text
//! sat_micro [--lbd=0|1] [--portfolio[=N]] [--repeat N] <file> [<file>…]
//! ```
//!
//! `--lbd` overrides `LEAPFROG_SAT_LBD` for A/B runs on identical input;
//! `--portfolio` races each instance through N derived solver lanes
//! (default 4) and reports which lane answered first, plus the win
//! histogram over the whole input set — the core-in-isolation view of the
//! engine's portfolio mode; `--repeat` re-solves each instance on a fresh
//! solver N times and reports the minimum wall time (scheduler-noise
//! floor).

use std::time::Instant;

use leapfrog_sat::dimacs::{parse_auto, Cnf};
use leapfrog_sat::{
    Lit, Portfolio, PortfolioConfig, SolveResult, Solver, SolverConfig, MAX_PORTFOLIO_LANES,
};

fn usage() -> ! {
    eprintln!(
        "usage: sat_micro [--lbd=0|1] [--portfolio[=N]] [--repeat N] \
         <file.cnf|blast_cache.txt>..."
    );
    std::process::exit(2);
}

/// Mirrors [`Cnf::load_into`] onto a portfolio (every lane gets the same
/// variables and clauses).
fn load_into_portfolio(cnf: &Cnf, p: &mut Portfolio) -> bool {
    let vars: Vec<_> = (0..cnf.num_vars).map(|_| p.new_var()).collect();
    let mut ok = true;
    for clause in &cnf.clauses {
        let mapped: Vec<Lit> = clause
            .iter()
            .map(|l| Lit::with_polarity(vars[l.var().0 as usize], !l.is_neg()))
            .collect();
        ok &= p.add_clause(&mapped);
    }
    ok
}

fn main() {
    let mut cfg = SolverConfig::from_env();
    let mut repeat = 1usize;
    let mut portfolio_lanes = 0usize;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--lbd=") {
            cfg.lbd = v != "0";
        } else if arg == "--portfolio" {
            portfolio_lanes = 4;
        } else if let Some(v) = arg.strip_prefix("--portfolio=") {
            portfolio_lanes = v.parse().unwrap_or_else(|_| usage());
            if !(2..=MAX_PORTFOLIO_LANES).contains(&portfolio_lanes) {
                usage();
            }
        } else if arg == "--repeat" {
            repeat = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
        } else if let Some(v) = arg.strip_prefix("--repeat=") {
            repeat = v.parse().unwrap_or_else(|_| usage());
        } else if arg == "--help" || arg.starts_with('-') {
            usage();
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() || repeat == 0 {
        usage();
    }

    let mut instances: Vec<Cnf> = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sat_micro: {path}: {e}");
                std::process::exit(1);
            }
        };
        let stem = path.rsplit('/').next().unwrap_or(path);
        match parse_auto(&text, stem) {
            Ok(mut cnfs) => instances.append(&mut cnfs),
            Err(e) => {
                eprintln!("sat_micro: {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if portfolio_lanes >= 2 {
        run_portfolio(&instances, cfg, portfolio_lanes, repeat);
        return;
    }

    println!(
        "sat_micro: {} instance(s), lbd={}, repeat={}",
        instances.len(),
        cfg.lbd,
        repeat
    );
    let mut total_best = 0.0f64;
    for cnf in &instances {
        let mut best: Option<(f64, SolveResult, u64, u64)> = None;
        for _ in 0..repeat {
            let mut s = Solver::with_config(cfg);
            let t0 = Instant::now();
            let root_ok = cnf.load_into(&mut s);
            let verdict = if root_ok {
                s.solve(&[])
            } else {
                SolveResult::Unsat
            };
            let dt = t0.elapsed().as_secs_f64();
            let st = s.stats();
            if best.is_none() || dt < best.unwrap().0 {
                best = Some((dt, verdict, st.conflicts, st.propagations));
            }
        }
        let (dt, verdict, conflicts, propagations) = best.unwrap();
        total_best += dt;
        println!(
            "{:<40} {:>5} {:>10.3}ms  vars={} clauses={} conflicts={} propagations={}",
            cnf.name,
            match verdict {
                SolveResult::Sat => "SAT",
                SolveResult::Unsat => "UNSAT",
            },
            dt * 1e3,
            cnf.num_vars,
            cnf.clauses.len(),
            conflicts,
            propagations,
        );
    }
    println!("total (min-of-{repeat}): {:.3}ms", total_best * 1e3);
}

/// The racing mode: each instance solved through a fresh N-lane portfolio
/// (racing floor forced to zero so every instance actually races), with
/// the winning lane reported per instance and summed into a histogram.
fn run_portfolio(instances: &[Cnf], base: SolverConfig, lanes: usize, repeat: usize) {
    let mut race_cfg = PortfolioConfig::race(base, lanes);
    race_cfg.min_clauses = 0;
    println!(
        "sat_micro: {} instance(s), portfolio lanes={lanes}, base lbd={}, repeat={repeat}",
        instances.len(),
        base.lbd,
    );
    let mut histogram = [0u64; MAX_PORTFOLIO_LANES];
    let mut total_best = 0.0f64;
    for cnf in instances {
        let mut best: Option<(f64, SolveResult, usize)> = None;
        for _ in 0..repeat {
            let mut p = Portfolio::with_config(race_cfg.clone());
            let t0 = Instant::now();
            let root_ok = load_into_portfolio(cnf, &mut p);
            let verdict = if root_ok {
                p.solve(&[])
            } else {
                SolveResult::Unsat
            };
            let dt = t0.elapsed().as_secs_f64();
            let winner = p
                .portfolio_stats()
                .wins
                .iter()
                .position(|&w| w > 0)
                .unwrap_or(0);
            if best.is_none() || dt < best.unwrap().0 {
                best = Some((dt, verdict, winner));
            }
        }
        let (dt, verdict, winner) = best.unwrap();
        histogram[winner] += 1;
        total_best += dt;
        println!(
            "{:<40} {:>5} {:>10.3}ms  vars={} clauses={} winner=lane{}",
            cnf.name,
            match verdict {
                SolveResult::Sat => "SAT",
                SolveResult::Unsat => "UNSAT",
            },
            dt * 1e3,
            cnf.num_vars,
            cnf.clauses.len(),
            winner,
        );
    }
    let non_canonical: u64 = histogram[1..].iter().sum();
    println!(
        "total (min-of-{repeat}): {:.3}ms  win_histogram={:?}  non_canonical_wins={}",
        total_best * 1e3,
        &histogram[..lanes],
        non_canonical,
    );
}
