//! Solver-isolation microbenchmark: run the CDCL core on captured CNFs
//! without driving the engine.
//!
//! Accepts standard DIMACS files and blast-cache exports (the
//! `blast_cache.txt` a persistent engine writes into its state dir), so a
//! captured engine workload can be replayed straight through the solver:
//!
//! ```text
//! sat_micro [--lbd=0|1] [--repeat N] <file> [<file>…]
//! ```
//!
//! `--lbd` overrides `LEAPFROG_SAT_LBD` for A/B runs on identical input;
//! `--repeat` re-solves each instance on a fresh solver N times and
//! reports the minimum wall time (scheduler-noise floor).

use std::time::Instant;

use leapfrog_sat::dimacs::{parse_auto, Cnf};
use leapfrog_sat::{SolveResult, Solver, SolverConfig};

fn usage() -> ! {
    eprintln!("usage: sat_micro [--lbd=0|1] [--repeat N] <file.cnf|blast_cache.txt>...");
    std::process::exit(2);
}

fn main() {
    let mut cfg = SolverConfig::from_env();
    let mut repeat = 1usize;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--lbd=") {
            cfg.lbd = v != "0";
        } else if arg == "--repeat" {
            repeat = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
        } else if let Some(v) = arg.strip_prefix("--repeat=") {
            repeat = v.parse().unwrap_or_else(|_| usage());
        } else if arg == "--help" || arg.starts_with('-') {
            usage();
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() || repeat == 0 {
        usage();
    }

    let mut instances: Vec<Cnf> = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sat_micro: {path}: {e}");
                std::process::exit(1);
            }
        };
        let stem = path.rsplit('/').next().unwrap_or(path);
        match parse_auto(&text, stem) {
            Ok(mut cnfs) => instances.append(&mut cnfs),
            Err(e) => {
                eprintln!("sat_micro: {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "sat_micro: {} instance(s), lbd={}, repeat={}",
        instances.len(),
        cfg.lbd,
        repeat
    );
    let mut total_best = 0.0f64;
    for cnf in &instances {
        let mut best: Option<(f64, SolveResult, u64, u64)> = None;
        for _ in 0..repeat {
            let mut s = Solver::with_config(cfg);
            let t0 = Instant::now();
            let root_ok = cnf.load_into(&mut s);
            let verdict = if root_ok {
                s.solve(&[])
            } else {
                SolveResult::Unsat
            };
            let dt = t0.elapsed().as_secs_f64();
            let st = s.stats();
            if best.is_none() || dt < best.unwrap().0 {
                best = Some((dt, verdict, st.conflicts, st.propagations));
            }
        }
        let (dt, verdict, conflicts, propagations) = best.unwrap();
        total_best += dt;
        println!(
            "{:<40} {:>5} {:>10.3}ms  vars={} clauses={} conflicts={} propagations={}",
            cnf.name,
            match verdict {
                SolveResult::Sat => "SAT",
                SolveResult::Unsat => "UNSAT",
            },
            dt * 1e3,
            cnf.num_vars,
            cnf.clauses.len(),
            conflicts,
            propagations,
        );
    }
    println!("total (min-of-{repeat}): {:.3}ms", total_best * 1e3);
}
