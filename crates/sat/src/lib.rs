//! A CDCL SAT solver, the decision-procedure substrate of the Leapfrog
//! reproduction.
//!
//! The paper discharges bitvector verification conditions with off-the-shelf
//! SMT solvers (Z3, CVC4, Boolector). Those are unavailable in this offline
//! environment, so the reproduction ships its own solver stack: this crate
//! implements conflict-driven clause learning with the standard modern
//! machinery — two-watched-literal propagation, first-UIP conflict analysis
//! with clause minimization, exponential VSIDS decision heuristics, phase
//! saving, Luby restarts and activity-driven deletion of learnt clauses.
//! [`leapfrog_smt`](https://docs.rs/leapfrog-smt) bit-blasts bitvector
//! formulas down to CNF over this solver.
//!
//! The solver is incremental: clauses may be added between [`Solver::solve`]
//! calls, and each call may pass *assumptions* (literals forced true for
//! that call only), which is how the CEGAR loop in the SMT layer refines
//! quantifier instantiations without rebuilding the CNF.
//!
//! # Examples
//!
//! ```
//! use leapfrog_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

use std::fmt;

/// A propositional variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + sign` where `sign == 1` means negated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// The literal of `v` with the given polarity (`true` = positive).
    pub fn with_polarity(v: Var, polarity: bool) -> Lit {
        if polarity {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.is_neg() { "-" } else { "" },
            self.var().0
        )
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it back with [`Solver::value`].
    Sat,
    /// The clause set (under the given assumptions) is unsatisfiable.
    Unsat,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct ClauseRef(u32);

const REASON_NONE: u32 = u32::MAX;
const REASON_DECISION: u32 = u32::MAX - 1;

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

/// Statistics accumulated across all `solve` calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

/// A conflict-driven clause-learning SAT solver.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>, // indexed by literal
    assigns: Vec<Assign>,         // indexed by var
    levels: Vec<u32>,             // indexed by var
    reasons: Vec<u32>,            // indexed by var: clause index, REASON_NONE or REASON_DECISION
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,
    heap_index: Vec<i32>,
    // Phase saving
    saved_phase: Vec<bool>,
    // Clause activity
    cla_inc: f64,
    // Status
    unsat_at_root: bool,
    n_learnt: usize,
    max_learnt: f64,
    root_clauses_added: u64,
    stats: SolverStats,
    /// Seen marks reused by conflict analysis.
    seen: Vec<bool>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            saved_phase: Vec::new(),
            cla_inc: 1.0,
            unsat_at_root: false,
            n_learnt: 0,
            max_learnt: 2000.0,
            root_clauses_added: 0,
            stats: SolverStats::default(),
            seen: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Assign::Unassigned);
        self.levels.push(0);
        self.reasons.push(REASON_NONE);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.heap_index.push(-1);
        self.heap_insert(v);
        v
    }

    /// The number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// The number of live clauses (original + learnt). O(1): database
    /// reduction compacts the clause store, so every stored clause is live.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The number of root-level [`Solver::add_clause`] calls so far — a
    /// monotone O(1) growth meter (unlike [`Solver::num_clauses`], which
    /// scans); incremental sessions budget their contexts against it.
    pub fn clauses_added(&self) -> u64 {
        self.root_clauses_added
    }

    /// Solver statistics across all calls so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Lowers the learnt-DB reduction threshold so tests can exercise
    /// database reduction on small instances.
    #[cfg(test)]
    fn set_max_learnt(&mut self, v: f64) {
        self.max_learnt = v;
    }

    /// Adds a clause. May be called between `solve` calls; the solver
    /// backtracks to the root level first. Returns `false` if the clause set
    /// is now known unsatisfiable at the root.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack(0);
        if self.unsat_at_root {
            return false;
        }
        self.root_clauses_added += 1;
        // Simplify: remove duplicates and false literals; detect tautology.
        let mut cl: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(
                (l.var().0 as usize) < self.num_vars(),
                "literal uses unallocated var"
            );
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at root
                Some(false) => continue,
                None => {}
            }
            if cl.contains(&l.negate()) {
                return true; // tautology
            }
            if !cl.contains(&l) {
                cl.push(l);
            }
        }
        match cl.len() {
            0 => {
                self.unsat_at_root = true;
                false
            }
            1 => {
                self.enqueue(cl[0], REASON_NONE);
                if self.propagate().is_some() {
                    self.unsat_at_root = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(cl, false);
                true
            }
        }
    }

    /// Solves under the given assumptions. Assumptions are literals that
    /// must hold for this call only.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.backtrack(0);
        if self.unsat_at_root {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat_at_root = true;
            return SolveResult::Unsat;
        }

        let mut conflicts_until_restart = luby(self.stats.restarts) * 100;

        loop {
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.unsat_at_root = true;
                        return SolveResult::Unsat;
                    }
                    // If the conflict is at or below the assumption levels we
                    // must be careful: analyze can still learn and backjump;
                    // if it wants to backjump into assumption territory we
                    // re-establish assumptions afterwards.
                    let (learnt, backjump) = self.analyze(confl);
                    self.backtrack(backjump);
                    self.learn(learnt);
                    self.decay_activities();
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                }
                None => {
                    if conflicts_until_restart == 0 {
                        self.stats.restarts += 1;
                        conflicts_until_restart = luby(self.stats.restarts) * 100;
                        self.backtrack(0);
                    }
                    if self.n_learnt as f64 >= self.max_learnt {
                        self.reduce_db();
                        self.max_learnt *= 1.3;
                    }
                    // Re-establish assumptions that are not yet on the trail.
                    let mut all_assumed = true;
                    for &a in assumptions {
                        match self.lit_value(a) {
                            Some(true) => continue,
                            Some(false) => return SolveResult::Unsat,
                            None => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue_decision(a);
                                all_assumed = false;
                                break;
                            }
                        }
                    }
                    if !all_assumed {
                        continue;
                    }
                    // Pick a branching variable.
                    match self.pick_branch() {
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let phase = self.saved_phase[v.0 as usize];
                            self.enqueue_decision(Lit::with_polarity(v, phase));
                        }
                        None => return SolveResult::Sat,
                    }
                }
            }
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer, or `None`
    /// if the variable was irrelevant (never assigned).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.0 as usize] {
            Assign::True => Some(true),
            Assign::False => Some(false),
            Assign::Unassigned => None,
        }
    }

    /// The model value of a literal.
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b != l.is_neg())
    }

    // ----- internals -----

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        self.watches[lits[0].negate().index()].push(cref);
        self.watches[lits[1].negate().index()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: self.cla_inc,
            deleted: false,
        });
        if learnt {
            self.n_learnt += 1;
        }
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert!(self.lit_value(l).is_none());
        let v = l.var().0 as usize;
        self.assigns[v] = if l.is_neg() {
            Assign::False
        } else {
            Assign::True
        };
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.saved_phase[v] = !l.is_neg();
        self.trail.push(l);
    }

    fn enqueue_decision(&mut self, l: Lit) {
        self.enqueue(l, REASON_DECISION);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[p.index()]);
            let mut conflict = None;
            while i < watch_list.len() {
                let cref = watch_list[i];
                let ci = cref.0 as usize;
                // Ensure lits[1] is the false literal (~p).
                let not_p = p.negate();
                {
                    let lits = &mut self.clauses[ci].lits;
                    if lits[0] == not_p {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.negate().index()].push(cref);
                        watch_list.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    conflict = Some(cref);
                    break;
                }
                self.enqueue(first, cref.0);
                i += 1;
            }
            // Put back the (possibly shrunk) watch list, preserving any
            // watchers appended while we processed (none are, since we only
            // push to *other* literals' lists, but be defensive).
            let appended = std::mem::take(&mut self.watches[p.index()]);
            self.watches[p.index()] = watch_list;
            self.watches[p.index()].extend(appended);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl.0;
        let mut trail_idx = self.trail.len();
        let level = self.decision_level();

        loop {
            // Bump clause activity.
            {
                let c = &mut self.clauses[confl as usize];
                c.activity += self.cla_inc;
            }
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &lits[start..] {
                let v = q.var().0 as usize;
                if !self.seen[v] && self.levels[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.levels[v] >= level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var().0 as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.unwrap().negate();
                break;
            }
            confl = self.reasons[pv];
            debug_assert!(confl != REASON_NONE && confl != REASON_DECISION);
        }

        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.redundant(l))
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);

        // Clear seen marks.
        for l in &learnt {
            self.seen[l.var().0 as usize] = false;
        }

        // Compute backjump level: second-highest level in clause.
        let backjump = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.levels[minimized[i].var().0 as usize]
                    > self.levels[minimized[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.levels[minimized[1].var().0 as usize]
        };
        (minimized, backjump)
    }

    /// A literal is redundant in a learnt clause if its reason clause's
    /// literals are all already in the clause (single-step minimization).
    fn redundant(&self, l: Lit) -> bool {
        let v = l.var().0 as usize;
        let r = self.reasons[v];
        if r == REASON_NONE || r == REASON_DECISION {
            return false;
        }
        self.clauses[r as usize].lits.iter().skip(1).all(|&q| {
            let qv = q.var().0 as usize;
            self.seen[qv] || self.levels[qv] == 0
        })
    }

    fn learn(&mut self, clause: Vec<Lit>) {
        let asserting = clause[0];
        if clause.len() == 1 {
            self.enqueue(asserting, REASON_NONE);
        } else {
            let cref = self.attach_clause(clause, true);
            self.enqueue(asserting, cref.0);
        }
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().0 as usize;
                self.assigns[v] = Assign::Unassigned;
                self.reasons[v] = REASON_NONE;
                if self.heap_index[v] < 0 {
                    self.heap_insert(l.var());
                }
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
        if level == 0 {
            self.qhead = self.qhead.min(self.trail.len());
        }
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.0 as usize] == Assign::Unassigned {
                return Some(v);
            }
        }
        None
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
        if self.var_inc > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.cla_inc > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn bump_var(&mut self, v: Var) {
        let i = v.0 as usize;
        self.activity[i] += self.var_inc;
        if self.activity[i] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_index[i] >= 0 {
            self.heap_sift_up(self.heap_index[i] as usize);
        }
    }

    fn reduce_db(&mut self) {
        // Collect learnt clause indices sorted by activity, delete the lower
        // half (keeping clauses that are currently reasons).
        let mut learnt: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, _)| i)
            .collect();
        learnt.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = learnt
            .iter()
            .map(|&i| {
                let first = self.clauses[i].lits[0];
                self.lit_value(first) == Some(true)
                    && self.reasons[first.var().0 as usize] == i as u32
            })
            .collect();
        let half = learnt.len() / 2;
        let mut any_deleted = false;
        for (k, &i) in learnt.iter().take(half).enumerate() {
            if !locked[k] {
                self.clauses[i].deleted = true;
                self.n_learnt -= 1;
                self.stats.deleted_clauses += 1;
                any_deleted = true;
            }
        }
        if any_deleted {
            self.compact();
        }
    }

    /// Reclaims clauses marked `deleted`: compacts the clause store and
    /// remaps every watcher list and reason index, preserving relative
    /// watcher order (determinism depends on it). Without this, warm
    /// incremental sessions grow monotonically between session-GC
    /// rebuilds even though reduction "deleted" half the learnt DB.
    fn compact(&mut self) {
        let mut remap: Vec<u32> = Vec::with_capacity(self.clauses.len());
        let mut next = 0u32;
        for c in &self.clauses {
            if c.deleted {
                remap.push(u32::MAX);
            } else {
                remap.push(next);
                next += 1;
            }
        }
        self.clauses.retain(|c| !c.deleted);
        for list in &mut self.watches {
            list.retain_mut(|cref| {
                let n = remap[cref.0 as usize];
                if n == u32::MAX {
                    false
                } else {
                    cref.0 = n;
                    true
                }
            });
        }
        // Reason clauses are locked during reduction, so every remaining
        // reason index maps to a live clause.
        for r in &mut self.reasons {
            if *r != REASON_NONE && *r != REASON_DECISION {
                *r = remap[*r as usize];
                debug_assert!(*r != u32::MAX, "reason clause was deleted");
            }
        }
    }

    // ----- binary heap ordered by activity (max-heap) -----

    fn heap_insert(&mut self, v: Var) {
        self.heap.push(v);
        let i = self.heap.len() - 1;
        self.heap_index[v.0 as usize] = i as i32;
        self.heap_sift_up(i);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top.0 as usize] = -1;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.0 as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i].0 as usize] > self.activity[self.heap[parent].0 as usize]
            {
                self.heap.swap(i, parent);
                self.heap_index[self.heap[i].0 as usize] = i as i32;
                self.heap_index[self.heap[parent].0 as usize] = parent as i32;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l].0 as usize]
                    > self.activity[self.heap[best].0 as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r].0 as usize]
                    > self.activity[self.heap[best].0 as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            self.heap_index[self.heap[i].0 as usize] = i as i32;
            self.heap_index[self.heap[best].0 as usize] = best as i32;
            i = best;
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... (`i` is 0-based).
fn luby(i: u64) -> u64 {
    let mut i = i + 1;
    loop {
        let mut k = 1u64;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivially_sat_empty() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::pos(v)]));
        assert!(!s.add_clause(&[Lit::neg(v)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn simple_conflict_requires_learning() {
        // (a | b) & (a | !b) & (!a | b) & (!a | !b) is unsat.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let (a, b) = (v[0], v[1]);
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::pos(a), Lit::neg(b)]);
        s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, ... encoded as CNF; satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        for w in v.windows(2) {
            let (a, b) = (w[0], w[1]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for w in v.windows(2) {
            assert_ne!(s.value(w[0]), s.value(w[1]));
        }
    }

    /// Pigeonhole principle: n+1 pigeons in n holes is unsat.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Var>>) {
        let mut s = Solver::new();
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &grid {
            let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for row2 in grid.iter().skip(p1 + 1) {
                    s.add_clause(&[Lit::neg(grid[p1][h]), Lit::neg(row2[h])]);
                }
            }
        }
        (s, grid)
    }

    #[test]
    fn pigeonhole_4_in_3_unsat() {
        let (mut s, _) = pigeonhole(4, 3);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_in_4_unsat() {
        let (mut s, _) = pigeonhole(5, 4);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_in_3_sat() {
        let (mut s, grid) = pigeonhole(3, 3);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Verify the model is a valid assignment of pigeons to distinct holes.
        let mut used = [false; 3];
        for row in &grid {
            let hole = row.iter().position(|&v| s.value(v) == Some(true)).unwrap();
            assert!(!used[hole]);
            used[hole] = true;
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(
            s.solve(&[Lit::neg(v[0]), Lit::neg(v[1])]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(&[Lit::neg(v[0])]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // Solver is reusable after assumption-unsat.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[Lit::neg(v[0])]);
        s.add_clause(&[Lit::neg(v[1])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        s.add_clause(&[Lit::neg(v[2])]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        // Once root-unsat, stays unsat.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautology_and_duplicates_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert!(s.add_clause(&[Lit::pos(v[1]), Lit::pos(v[1])]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    /// Brute-force CNF evaluation for differential testing.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        for m in 0u32..(1 << num_vars) {
            let assign = |v: usize| (m >> v) & 1 == 1;
            if clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| assign(v) == pos))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        // Deterministic LCG so the test is reproducible.
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..60 {
            let n = 4 + (next() as usize % 5); // 4..8 vars
            let m = 6 + (next() as usize % 25); // 6..30 clauses
            let clauses: Vec<Vec<(usize, bool)>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| (next() as usize % n, next() % 2 == 0))
                        .collect()
                })
                .collect();
            let expected = brute_force_sat(n, &clauses);
            let mut s = Solver::new();
            let vars = lits(&mut s, n);
            for c in &clauses {
                let cl: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                    .collect();
                s.add_clause(&cl);
            }
            let got = s.solve(&[]) == SolveResult::Sat;
            assert_eq!(
                got, expected,
                "round {round}: solver disagrees with brute force"
            );
            if got {
                // Verify the model actually satisfies every clause, reading
                // unassigned (irrelevant) variables as false.
                for c in &clauses {
                    assert!(
                        c.iter()
                            .any(|&(v, pos)| s.value(vars[v]).unwrap_or(false) == pos),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_db_reclaims_deleted_clauses() {
        // Force frequent DB reductions on an instance that learns plenty of
        // clauses, then check the store was actually compacted: no tombstones
        // remain, and the allocated count equals live (allocated-ever minus
        // deleted). Before the fix, deleted clauses stayed in `clauses` and
        // in the watcher lists forever.
        let (mut s, _) = pigeonhole(5, 4);
        s.set_max_learnt(20.0);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let st = s.stats();
        assert!(
            st.deleted_clauses > 0,
            "test did not exercise DB reduction (deleted={})",
            st.deleted_clauses
        );
        assert!(
            s.clauses.iter().all(|c| !c.deleted),
            "tombstones remain after reduction"
        );
        assert_eq!(s.num_clauses(), s.clauses.len());
        // Watcher lists only reference live clauses.
        for list in &s.watches {
            for cref in list {
                assert!((cref.0 as usize) < s.clauses.len());
            }
        }
    }

    #[test]
    fn reduce_db_preserves_verdicts_incrementally() {
        // A solver that reduced its DB mid-run must keep answering
        // correctly on later incremental calls.
        let (mut s, grid) = pigeonhole(5, 4);
        s.set_max_learnt(20.0);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let mut s2 = Solver::new();
        let vars = lits(&mut s2, 8);
        s2.set_max_learnt(4.0);
        // Random-ish 3-SAT over 8 vars, solved repeatedly with clause
        // additions in between; brute force checks each verdict.
        let mut state = 0x5eed5eedu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
        for _ in 0..40 {
            let c: Vec<(usize, bool)> = (0..3)
                .map(|_| (next() as usize % 8, next() % 2 == 0))
                .collect();
            let cl: Vec<Lit> = c
                .iter()
                .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                .collect();
            clauses.push(c);
            s2.add_clause(&cl);
            let got = s2.solve(&[]) == SolveResult::Sat;
            let expected = brute_force_sat(8, &clauses);
            assert_eq!(got, expected, "incremental verdict diverged");
        }
        let _ = grid;
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, _) = pigeonhole(4, 3);
        s.solve(&[]);
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
    }
}
