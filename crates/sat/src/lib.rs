//! A CDCL SAT solver, the decision-procedure substrate of the Leapfrog
//! reproduction.
//!
//! The paper discharges bitvector verification conditions with off-the-shelf
//! SMT solvers (Z3, CVC4, Boolector). Those are unavailable in this offline
//! environment, so the reproduction ships its own solver stack: this crate
//! implements conflict-driven clause learning with the standard modern
//! machinery — two-watched-literal propagation with blocking literals,
//! dedicated binary-clause implication lists, first-UIP conflict analysis
//! with clause minimization, exponential VSIDS decision heuristics, phase
//! saving, Luby restarts and Glucose-style two-tier learnt-clause
//! management keyed on LBD (literal block distance).
//! [`leapfrog_smt`](https://docs.rs/leapfrog-smt) bit-blasts bitvector
//! formulas down to CNF over this solver.
//!
//! # Clause storage
//!
//! Clauses live in a single flat `u32` arena rather than a `Vec` of
//! heap-allocated literal vectors: each clause is a three-word header
//! (packed length + learnt flag, `f32` activity bits, LBD) followed by its
//! literals inline, and a clause reference is the arena offset of the
//! header.
//! Propagation therefore walks contiguous memory instead of chasing
//! per-clause pointers. Database reduction compacts the arena in place —
//! deleted clauses are physically reclaimed and every watcher list and
//! reason index is remapped, so long-lived incremental solvers do not grow
//! monotonically between reductions.
//!
//! # Learnt-clause management
//!
//! At learn time each clause's LBD — the number of distinct decision
//! levels among its literals — is recorded. Clauses with LBD ≤ 2 form the
//! "core" tier and are never deleted (alongside clauses currently locked
//! as propagation reasons and all binary clauses); the remainder are
//! reduced by LBD first, activity second. The `LEAPFROG_SAT_LBD=0`
//! environment knob (or [`SolverConfig::lbd`] programmatically) falls back
//! to activity-only deletion for ablation runs.
//!
//! The solver is incremental: clauses may be added between [`Solver::solve`]
//! calls, and each call may pass *assumptions* (literals forced true for
//! that call only), which is how the CEGAR loop in the SMT layer refines
//! quantifier instantiations without rebuilding the CNF.
//!
//! # Examples
//!
//! ```
//! use leapfrog_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

pub mod dimacs;
mod portfolio;

pub use portfolio::{
    Portfolio, PortfolioConfig, PortfolioStats, DEFAULT_PORTFOLIO_MIN_CLAUSES,
    MAX_PORTFOLIO_LANES,
};

/// A propositional variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + sign` where `sign == 1` means negated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// The literal of `v` with the given polarity (`true` = positive).
    pub fn with_polarity(v: Var, polarity: bool) -> Lit {
        if polarity {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.is_neg() { "-" } else { "" },
            self.var().0
        )
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it back with [`Solver::value`].
    Sat,
    /// The clause set (under the given assumptions) is unsatisfiable.
    Unsat,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

/// An arena offset naming a clause (the offset of its header word).
#[derive(Clone, Copy, PartialEq, Eq)]
struct ClauseRef(u32);

const REASON_NONE: u32 = u32::MAX;
const REASON_DECISION: u32 = u32::MAX - 1;

/// Arena words per clause before the inline literals: packed
/// length/learnt-flag, activity (`f32` bits), LBD.
const HEADER_WORDS: usize = 3;

/// A watcher entry: the clause plus a *blocking literal* — some other
/// literal of the clause. If the blocker is already true the clause is
/// satisfied and the visit resolves without touching clause memory.
#[derive(Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// A binary-clause implication: when the watched literal becomes false,
/// `other` must hold (with `cref` as the reason clause).
#[derive(Clone, Copy)]
struct BinWatcher {
    other: Lit,
    cref: ClauseRef,
}

/// Number of buckets in the learnt-clause LBD histogram: buckets for
/// LBD 1..=7, with the last bucket collecting LBD ≥ 8.
pub const LBD_BUCKETS: usize = 8;

/// Buckets an LBD value into the histogram index.
pub fn lbd_bucket(lbd: u32) -> usize {
    (lbd.clamp(1, LBD_BUCKETS as u32) - 1) as usize
}

/// Statistics accumulated across all `solve` calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of clauses learnt from conflicts (all lengths).
    pub learnt_clauses: u64,
    /// Histogram of learn-time LBD values: index `i` counts learnt clauses
    /// with LBD `i + 1` (last bucket: LBD ≥ [`LBD_BUCKETS`]).
    pub lbd_histogram: [u64; LBD_BUCKETS],
}

impl SolverStats {
    /// Adds another solver's counters into this one — used by warm
    /// sessions to carry totals across context rebuilds.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.deleted_clauses += other.deleted_clauses;
        self.learnt_clauses += other.learnt_clauses;
        for (a, b) in self.lbd_histogram.iter_mut().zip(other.lbd_histogram) {
            *a += b;
        }
    }

    /// The counters accumulated since `base` was snapshotted from the same
    /// accumulator — the per-run share of counters that survive across
    /// warm runs (mirrors `QueryStats::delta_since` one layer up).
    pub fn delta_since(&self, base: &SolverStats) -> SolverStats {
        let mut hist = [0u64; LBD_BUCKETS];
        for (i, h) in hist.iter_mut().enumerate() {
            *h = self.lbd_histogram[i] - base.lbd_histogram[i];
        }
        SolverStats {
            decisions: self.decisions - base.decisions,
            propagations: self.propagations - base.propagations,
            conflicts: self.conflicts - base.conflicts,
            restarts: self.restarts - base.restarts,
            deleted_clauses: self.deleted_clauses - base.deleted_clauses,
            learnt_clauses: self.learnt_clauses - base.learnt_clauses,
            lbd_histogram: hist,
        }
    }
}

/// Solver construction knobs. The typed equivalent of the `LEAPFROG_SAT_*`
/// environment variables, mirroring the cache/GC knob pattern elsewhere in
/// the workspace: `from_env` for ambient configuration, struct fields for
/// programmatic control.
///
/// The search-diversity knobs (`seed`, `invert_phase`, `restart_offset`)
/// exist for portfolio lanes: they perturb *which* satisfying assignment or
/// refutation the search finds first, never *whether* one exists. A config
/// with all three at their defaults is the *canonical* configuration — the
/// one whose search trajectory single-solver mode reproduces exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Glucose-style two-tier LBD learnt-clause management (default on).
    /// Off falls back to activity-only deletion — the ablation baseline.
    pub lbd: bool,
    /// Branching-diversity seed: nonzero seeds give fresh variables a tiny
    /// deterministic initial VSIDS activity (splitmix64 of `seed` and the
    /// variable index), so ties in the activity order break differently per
    /// lane. `0` (default) keeps the canonical all-zero initialization.
    pub seed: u64,
    /// Start phase saving at `true` instead of `false` for fresh variables,
    /// sending the lane to the opposite corner of the assignment space.
    pub invert_phase: bool,
    /// Shifts the Luby restart schedule by this many virtual restarts, so
    /// lanes restart at different conflict counts. `0` is canonical.
    pub restart_offset: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            lbd: true,
            seed: 0,
            invert_phase: false,
            restart_offset: 0,
        }
    }
}

impl SolverConfig {
    /// Reads the configuration from the environment:
    /// `LEAPFROG_SAT_LBD=0` disables LBD-tiered clause management. The
    /// diversity knobs stay at their canonical defaults — they are derived
    /// per portfolio lane (see [`PortfolioConfig::race`]), not ambient.
    pub fn from_env() -> Self {
        let lbd = std::env::var("LEAPFROG_SAT_LBD")
            .map(|v| v != "0")
            .unwrap_or(true);
        SolverConfig {
            lbd,
            ..SolverConfig::default()
        }
    }

    /// Whether this is the canonical search trajectory (no diversity
    /// perturbation) for its LBD setting.
    pub fn is_canonical(&self) -> bool {
        self.seed == 0 && !self.invert_phase && self.restart_offset == 0
    }
}

/// Deterministic per-variable activity jitter for nonzero seeds
/// (splitmix64 finalizer), scaled far below one conflict's activity bump so
/// it only breaks ties among otherwise-equal variables.
fn activity_jitter(seed: u64, var_index: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(var_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 1e-6
}

/// A conflict-driven clause-learning SAT solver.
pub struct Solver {
    cfg: SolverConfig,
    /// The clause arena: every clause is `HEADER_WORDS` header words
    /// followed by its literals, allocated back to back.
    arena: Vec<u32>,
    watches: Vec<Vec<Watcher>>, // indexed by literal: clauses with that literal's negation watched
    bin_watches: Vec<Vec<BinWatcher>>, // indexed by literal: binary implications
    assigns: Vec<Assign>,       // indexed by var
    levels: Vec<u32>,           // indexed by var
    reasons: Vec<u32>, // indexed by var: clause arena offset, REASON_NONE or REASON_DECISION
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,
    heap_index: Vec<i32>,
    // Phase saving
    saved_phase: Vec<bool>,
    // Clause activity
    cla_inc: f32,
    // Status
    unsat_at_root: bool,
    n_clauses: usize,
    n_learnt: usize,
    max_learnt: f64,
    root_clauses_added: u64,
    stats: SolverStats,
    /// Seen marks reused by conflict analysis.
    seen: Vec<bool>,
    /// Per-decision-level stamps reused by LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_stamp_gen: u64,
    /// Scratch buffer reused by `add_clause` (the template-replay hot
    /// path adds thousands of clauses per query; no per-call allocation).
    add_buf: Vec<Lit>,
    /// Scratch buffers reused by conflict analysis / learning.
    learnt_buf: Vec<Lit>,
    minimize_buf: Vec<Lit>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver configured from the environment
    /// (see [`SolverConfig::from_env`]).
    pub fn new() -> Self {
        Self::with_config(SolverConfig::from_env())
    }

    /// Creates an empty solver with an explicit configuration, ignoring
    /// the environment.
    pub fn with_config(cfg: SolverConfig) -> Self {
        Solver {
            cfg,
            arena: Vec::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            saved_phase: Vec::new(),
            cla_inc: 1.0,
            unsat_at_root: false,
            n_clauses: 0,
            n_learnt: 0,
            max_learnt: 2000.0,
            root_clauses_added: 0,
            stats: SolverStats::default(),
            seen: Vec::new(),
            lbd_stamp: vec![0],
            lbd_stamp_gen: 0,
            add_buf: Vec::new(),
            learnt_buf: Vec::new(),
            minimize_buf: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> SolverConfig {
        self.cfg
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Assign::Unassigned);
        self.levels.push(0);
        self.reasons.push(REASON_NONE);
        self.activity.push(if self.cfg.seed == 0 {
            0.0
        } else {
            activity_jitter(self.cfg.seed, v.0 as u64)
        });
        self.saved_phase.push(self.cfg.invert_phase);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.seen.push(false);
        self.lbd_stamp.push(0);
        self.heap_index.push(-1);
        self.heap_insert(v);
        v
    }

    /// The number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// The number of live clauses (original + learnt). O(1): database
    /// reduction compacts the arena, so every stored clause is live.
    pub fn num_clauses(&self) -> usize {
        self.n_clauses
    }

    /// The number of root-level [`Solver::add_clause`] calls so far — a
    /// monotone O(1) growth meter (unlike [`Solver::num_clauses`], which
    /// counts live clauses); incremental sessions budget their contexts
    /// against it.
    pub fn clauses_added(&self) -> u64 {
        self.root_clauses_added
    }

    /// Solver statistics across all calls so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Whether the clause set is already known unsatisfiable at the root
    /// level — every future [`Solver::solve`] answers `Unsat` in O(1). The
    /// portfolio harness uses this to skip spawning race threads.
    pub fn root_conflict(&self) -> bool {
        self.unsat_at_root
    }

    /// Lowers the learnt-DB reduction threshold so tests can exercise
    /// database reduction on small instances.
    #[cfg(test)]
    fn set_max_learnt(&mut self, v: f64) {
        self.max_learnt = v;
    }

    // ----- arena accessors -----

    #[inline]
    fn clause_len(&self, c: ClauseRef) -> usize {
        (self.arena[c.0 as usize] >> 1) as usize
    }

    #[inline]
    fn clause_learnt(&self, c: ClauseRef) -> bool {
        self.arena[c.0 as usize] & 1 == 1
    }

    #[inline]
    fn clause_activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.arena[c.0 as usize + 1])
    }

    #[inline]
    fn set_clause_activity(&mut self, c: ClauseRef, a: f32) {
        self.arena[c.0 as usize + 1] = a.to_bits();
    }

    #[inline]
    fn clause_lbd(&self, c: ClauseRef) -> u32 {
        self.arena[c.0 as usize + 2]
    }

    #[inline]
    fn lit_at(&self, c: ClauseRef, i: usize) -> Lit {
        Lit(self.arena[c.0 as usize + HEADER_WORDS + i])
    }

    #[inline]
    fn set_lit_at(&mut self, c: ClauseRef, i: usize, l: Lit) {
        self.arena[c.0 as usize + HEADER_WORDS + i] = l.0;
    }

    /// Adds a clause. May be called between `solve` calls; the solver
    /// backtracks to the root level first. Returns `false` if the clause set
    /// is now known unsatisfiable at the root.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack(0);
        if self.unsat_at_root {
            return false;
        }
        self.root_clauses_added += 1;
        // Simplify: remove duplicates and false literals; detect tautology.
        // The scratch buffer keeps the template-replay path allocation-free.
        let mut cl = std::mem::take(&mut self.add_buf);
        cl.clear();
        let mut skip = false; // satisfied at root or tautological
        for &l in lits {
            debug_assert!(
                (l.var().0 as usize) < self.num_vars(),
                "literal uses unallocated var"
            );
            match self.lit_value(l) {
                Some(true) => {
                    skip = true;
                    break;
                }
                Some(false) => continue,
                None => {}
            }
            if cl.contains(&l.negate()) {
                skip = true; // tautology
                break;
            }
            if !cl.contains(&l) {
                cl.push(l);
            }
        }
        let ok = if skip {
            true
        } else {
            match cl.len() {
                0 => {
                    self.unsat_at_root = true;
                    false
                }
                1 => {
                    self.enqueue(cl[0], REASON_NONE);
                    if self.propagate().is_some() {
                        self.unsat_at_root = true;
                        false
                    } else {
                        true
                    }
                }
                _ => {
                    self.attach_clause(&cl, false, 0);
                    true
                }
            }
        };
        self.add_buf = cl;
        ok
    }

    /// Solves under the given assumptions. Assumptions are literals that
    /// must hold for this call only.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.solve_interruptible(assumptions, &NEVER)
            .expect("solve interrupted without a stop flag")
    }

    /// [`Solver::solve`] with a cooperative stop flag, the primitive the
    /// portfolio racing harness runs its *helper* lanes on (the canonical
    /// lane 0 always searches to completion and is never handed a stop
    /// flag): the flag is checked once per conflict and once per decision,
    /// and a raised flag makes the call return `None` with the solver
    /// backtracked to the root — fully reusable (learnt clauses and
    /// heuristic state are kept), but with no verdict for this call.
    pub fn solve_interruptible(
        &mut self,
        assumptions: &[Lit],
        stop: &AtomicBool,
    ) -> Option<SolveResult> {
        self.backtrack(0);
        if self.unsat_at_root {
            return Some(SolveResult::Unsat);
        }
        if self.propagate().is_some() {
            self.unsat_at_root = true;
            return Some(SolveResult::Unsat);
        }

        let mut conflicts_until_restart = luby(self.stats.restarts + self.cfg.restart_offset) * 100;

        loop {
            if stop.load(Ordering::Relaxed) {
                self.backtrack(0);
                return None;
            }
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.unsat_at_root = true;
                        return Some(SolveResult::Unsat);
                    }
                    // If the conflict is at or below the assumption levels we
                    // must be careful: analyze can still learn and backjump;
                    // if it wants to backjump into assumption territory we
                    // re-establish assumptions afterwards.
                    let backjump = self.analyze(confl);
                    self.backtrack(backjump);
                    self.learn();
                    self.decay_activities();
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                }
                None => {
                    if conflicts_until_restart == 0 {
                        self.stats.restarts += 1;
                        conflicts_until_restart =
                            luby(self.stats.restarts + self.cfg.restart_offset) * 100;
                        self.backtrack(0);
                    }
                    if self.n_learnt as f64 >= self.max_learnt {
                        self.reduce_db();
                        self.max_learnt *= 1.3;
                    }
                    // Re-establish assumptions that are not yet on the trail.
                    let mut all_assumed = true;
                    for &a in assumptions {
                        match self.lit_value(a) {
                            Some(true) => continue,
                            Some(false) => return Some(SolveResult::Unsat),
                            None => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue_decision(a);
                                all_assumed = false;
                                break;
                            }
                        }
                    }
                    if !all_assumed {
                        continue;
                    }
                    // Pick a branching variable.
                    match self.pick_branch() {
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let phase = self.saved_phase[v.0 as usize];
                            self.enqueue_decision(Lit::with_polarity(v, phase));
                        }
                        None => return Some(SolveResult::Sat),
                    }
                }
            }
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer, or `None`
    /// if the variable was irrelevant (never assigned).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.0 as usize] {
            Assign::True => Some(true),
            Assign::False => Some(false),
            Assign::Unassigned => None,
        }
    }

    /// The model value of a literal.
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b != l.is_neg())
    }

    // ----- internals -----

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Allocates a clause in the arena and hooks up its watchers. Binary
    /// clauses go to the implication lists; longer clauses get two
    /// blocking-literal watchers.
    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.arena.len() as u32);
        self.arena
            .push(((lits.len() as u32) << 1) | u32::from(learnt));
        self.arena.push(self.cla_inc.to_bits());
        self.arena.push(lbd);
        self.arena.extend(lits.iter().map(|l| l.0));
        if lits.len() == 2 {
            self.bin_watches[lits[0].negate().index()].push(BinWatcher {
                other: lits[1],
                cref,
            });
            self.bin_watches[lits[1].negate().index()].push(BinWatcher {
                other: lits[0],
                cref,
            });
        } else {
            self.watches[lits[0].negate().index()].push(Watcher {
                cref,
                blocker: lits[1],
            });
            self.watches[lits[1].negate().index()].push(Watcher {
                cref,
                blocker: lits[0],
            });
        }
        self.n_clauses += 1;
        if learnt {
            self.n_learnt += 1;
        }
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert!(self.lit_value(l).is_none());
        let v = l.var().0 as usize;
        self.assigns[v] = if l.is_neg() {
            Assign::False
        } else {
            Assign::True
        };
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.saved_phase[v] = !l.is_neg();
        self.trail.push(l);
    }

    fn enqueue_decision(&mut self, l: Lit) {
        self.enqueue(l, REASON_DECISION);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            // Binary implications first: no clause memory touched at all.
            for k in 0..self.bin_watches[p.index()].len() {
                let bw = self.bin_watches[p.index()][k];
                match self.lit_value(bw.other) {
                    Some(true) => {}
                    Some(false) => {
                        self.qhead = self.trail.len();
                        return Some(bw.cref);
                    }
                    None => {
                        // Analyze/minimize rely on a reason clause keeping
                        // its implied literal in slot 0.
                        if self.lit_at(bw.cref, 0) != bw.other {
                            let l0 = self.lit_at(bw.cref, 0);
                            self.set_lit_at(bw.cref, 0, bw.other);
                            self.set_lit_at(bw.cref, 1, l0);
                        }
                        self.enqueue(bw.other, bw.cref.0);
                    }
                }
            }

            // Long clauses through the blocking-literal watchers.
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[p.index()]);
            let mut conflict = None;
            let not_p = p.negate();
            'watchers: while i < watch_list.len() {
                let w = watch_list[i];
                // Satisfied through the blocker: done without touching the
                // clause.
                if self.lit_value(w.blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Ensure lits[1] is the false literal (~p).
                if self.lit_at(cref, 0) == not_p {
                    let l1 = self.lit_at(cref, 1);
                    self.set_lit_at(cref, 0, l1);
                    self.set_lit_at(cref, 1, not_p);
                }
                let first = self.lit_at(cref, 0);
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    watch_list[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clause_len(cref);
                for k in 2..len {
                    let lk = self.lit_at(cref, k);
                    if self.lit_value(lk) != Some(false) {
                        self.set_lit_at(cref, 1, lk);
                        self.set_lit_at(cref, k, not_p);
                        self.watches[lk.negate().index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        watch_list.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                watch_list[i].blocker = first;
                if self.lit_value(first) == Some(false) {
                    conflict = Some(cref);
                    break;
                }
                self.enqueue(first, cref.0);
                i += 1;
            }
            // Put back the (possibly shrunk) watch list, preserving any
            // watchers appended while we processed (none are, since we only
            // push to *other* literals' lists, but be defensive).
            let appended = std::mem::take(&mut self.watches[p.index()]);
            self.watches[p.index()] = watch_list;
            self.watches[p.index()].extend(appended);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the backjump level; the learnt
    /// clause (asserting literal first) is left in `self.learnt_buf` for
    /// [`Solver::learn`] — buffers are reused across conflicts, so the
    /// conflict loop does not allocate.
    fn analyze(&mut self, confl: ClauseRef) -> u32 {
        let mut learnt = std::mem::take(&mut self.learnt_buf);
        learnt.clear();
        learnt.push(Lit(0)); // placeholder for asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut trail_idx = self.trail.len();
        let level = self.decision_level();

        loop {
            // Bump clause activity on learnt clauses (the reduction tier).
            if self.clause_learnt(confl) {
                let a = self.clause_activity(confl) + self.cla_inc;
                self.set_clause_activity(confl, a);
            }
            let len = self.clause_len(confl);
            let start = usize::from(p.is_some());
            for k in start..len {
                let q = self.lit_at(confl, k);
                let v = q.var().0 as usize;
                if !self.seen[v] && self.levels[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.levels[v] >= level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var().0 as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.unwrap().negate();
                break;
            }
            let r = self.reasons[pv];
            debug_assert!(r != REASON_NONE && r != REASON_DECISION);
            confl = ClauseRef(r);
        }

        // Clause minimization: drop literals implied by the rest. The
        // redundancy check consults the seen marks of the *full* pre-
        // minimization clause, so filter from a snapshot and only clear
        // the marks afterwards.
        let mut snapshot = std::mem::take(&mut self.minimize_buf);
        snapshot.clear();
        snapshot.extend_from_slice(&learnt);
        learnt.truncate(1);
        for &l in &snapshot[1..] {
            if !self.redundant(l) {
                learnt.push(l);
            }
        }

        // Clear seen marks.
        for l in &snapshot {
            self.seen[l.var().0 as usize] = false;
        }
        self.minimize_buf = snapshot;

        // Compute backjump level: second-highest level in clause.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().0 as usize]
                    > self.levels[learnt[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().0 as usize]
        };
        self.learnt_buf = learnt;
        backjump
    }

    /// A literal is redundant in a learnt clause if its reason clause's
    /// literals are all already in the clause (single-step minimization).
    fn redundant(&self, l: Lit) -> bool {
        let v = l.var().0 as usize;
        let r = self.reasons[v];
        if r == REASON_NONE || r == REASON_DECISION {
            return false;
        }
        let c = ClauseRef(r);
        (1..self.clause_len(c)).all(|k| {
            let qv = self.lit_at(c, k).var().0 as usize;
            self.seen[qv] || self.levels[qv] == 0
        })
    }

    /// The LBD (literal block distance) of a clause: the number of
    /// distinct nonzero decision levels among its literals. Computed at
    /// learn time, when every literal is assigned.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_stamp_gen += 1;
        let gen = self.lbd_stamp_gen;
        let mut lbd = 0u32;
        for &l in lits {
            let lev = self.levels[l.var().0 as usize] as usize;
            if lev > 0 && self.lbd_stamp[lev] != gen {
                self.lbd_stamp[lev] = gen;
                lbd += 1;
            }
        }
        lbd
    }

    /// Attaches the clause left in `learnt_buf` by [`Solver::analyze`] and
    /// enqueues its asserting literal.
    fn learn(&mut self) {
        let clause = std::mem::take(&mut self.learnt_buf);
        self.stats.learnt_clauses += 1;
        let asserting = clause[0];
        if clause.len() == 1 {
            self.enqueue(asserting, REASON_NONE);
        } else {
            let lbd = self.compute_lbd(&clause);
            self.stats.lbd_histogram[lbd_bucket(lbd)] += 1;
            let cref = self.attach_clause(&clause, true, lbd);
            self.enqueue(asserting, cref.0);
        }
        self.learnt_buf = clause;
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().0 as usize;
                self.assigns[v] = Assign::Unassigned;
                self.reasons[v] = REASON_NONE;
                if self.heap_index[v] < 0 {
                    self.heap_insert(l.var());
                }
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
        if level == 0 {
            self.qhead = self.qhead.min(self.trail.len());
        }
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.0 as usize] == Assign::Unassigned {
                return Some(v);
            }
        }
        None
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
        if self.var_inc > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.cla_inc > 1e20 {
            // Rescale every stored clause activity in the arena.
            let mut off = 0usize;
            while off < self.arena.len() {
                let c = ClauseRef(off as u32);
                let a = self.clause_activity(c) * 1e-20;
                self.set_clause_activity(c, a);
                off += HEADER_WORDS + self.clause_len(c);
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn bump_var(&mut self, v: Var) {
        let i = v.0 as usize;
        self.activity[i] += self.var_inc;
        if self.activity[i] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_index[i] >= 0 {
            self.heap_sift_up(self.heap_index[i] as usize);
        }
    }

    /// Whether a clause is currently a propagation reason (and therefore
    /// must survive reduction). Reasons keep their implied literal at
    /// position 0, so the check is O(1).
    fn locked(&self, c: ClauseRef) -> bool {
        let first = self.lit_at(c, 0);
        self.lit_value(first) == Some(true) && self.reasons[first.var().0 as usize] == c.0
    }

    /// Deletes the worst half of the deletable learnt clauses and compacts
    /// the arena. With LBD management on, the deletable tier excludes
    /// "core" clauses (LBD ≤ 2) and sorts by LBD first, activity second;
    /// with it off, the tier is all long learnt clauses sorted by activity
    /// alone. Binary and locked (reason) clauses always survive.
    fn reduce_db(&mut self) {
        let mut candidates: Vec<ClauseRef> = Vec::new();
        let mut off = 0usize;
        while off < self.arena.len() {
            let c = ClauseRef(off as u32);
            let len = self.clause_len(c);
            if self.clause_learnt(c)
                && len > 2
                && !(self.cfg.lbd && self.clause_lbd(c) <= 2)
                && !self.locked(c)
            {
                candidates.push(c);
            }
            off += HEADER_WORDS + len;
        }
        if self.cfg.lbd {
            // Worst first: highest LBD, then lowest activity; arena offset
            // as the deterministic tiebreak.
            candidates.sort_by(|&a, &b| {
                self.clause_lbd(b)
                    .cmp(&self.clause_lbd(a))
                    .then(self.clause_activity(a).total_cmp(&self.clause_activity(b)))
                    .then(a.0.cmp(&b.0))
            });
        } else {
            candidates.sort_by(|&a, &b| {
                self.clause_activity(a)
                    .total_cmp(&self.clause_activity(b))
                    .then(a.0.cmp(&b.0))
            });
        }
        let half = candidates.len() / 2;
        if half == 0 {
            return;
        }
        let mut doomed: Vec<u32> = candidates[..half].iter().map(|c| c.0).collect();
        doomed.sort_unstable();
        self.n_learnt -= half;
        self.n_clauses -= half;
        self.stats.deleted_clauses += half as u64;
        self.compact(&doomed);
    }

    /// Physically reclaims the clauses at the given (sorted) arena offsets:
    /// slides every surviving clause down in one pass, then remaps watcher
    /// lists (order-preserving — determinism depends on it), binary
    /// implication lists and reason indices.
    fn compact(&mut self, doomed: &[u32]) {
        // One forward pass: move survivors down, recording (old, new)
        // offsets in increasing order for binary-search remapping.
        let mut live: Vec<(u32, u32)> = Vec::with_capacity(self.n_clauses);
        let mut src = 0usize;
        let mut dst = 0usize;
        let mut di = 0usize;
        while src < self.arena.len() {
            let sz = HEADER_WORDS + self.clause_len(ClauseRef(src as u32));
            if di < doomed.len() && doomed[di] == src as u32 {
                di += 1;
                src += sz;
                continue;
            }
            live.push((src as u32, dst as u32));
            if src != dst {
                self.arena.copy_within(src..src + sz, dst);
            }
            src += sz;
            dst += sz;
        }
        self.arena.truncate(dst);
        let remap = |old: u32| -> Option<u32> {
            live.binary_search_by_key(&old, |&(o, _)| o)
                .ok()
                .map(|i| live[i].1)
        };
        for list in &mut self.watches {
            list.retain_mut(|w| match remap(w.cref.0) {
                Some(n) => {
                    w.cref.0 = n;
                    true
                }
                None => false,
            });
        }
        // Binary clauses are never deleted; their refs just shift.
        for list in &mut self.bin_watches {
            for bw in list.iter_mut() {
                bw.cref.0 = remap(bw.cref.0).expect("binary clause deleted");
            }
        }
        // Reason clauses are locked during reduction, so every remaining
        // reason index maps to a live clause.
        for r in &mut self.reasons {
            if *r != REASON_NONE && *r != REASON_DECISION {
                *r = remap(*r).expect("reason clause deleted");
            }
        }
    }

    // ----- binary heap ordered by activity (max-heap) -----

    fn heap_insert(&mut self, v: Var) {
        self.heap.push(v);
        let i = self.heap.len() - 1;
        self.heap_index[v.0 as usize] = i as i32;
        self.heap_sift_up(i);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top.0 as usize] = -1;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.0 as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i].0 as usize] > self.activity[self.heap[parent].0 as usize]
            {
                self.heap.swap(i, parent);
                self.heap_index[self.heap[i].0 as usize] = i as i32;
                self.heap_index[self.heap[parent].0 as usize] = parent as i32;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l].0 as usize]
                    > self.activity[self.heap[best].0 as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r].0 as usize]
                    > self.activity[self.heap[best].0 as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            self.heap_index[self.heap[i].0 as usize] = i as i32;
            self.heap_index[self.heap[best].0 as usize] = best as i32;
            i = best;
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... (`i` is 0-based).
fn luby(i: u64) -> u64 {
    let mut i = i + 1;
    loop {
        let mut k = 1u64;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivially_sat_empty() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::pos(v)]));
        assert!(!s.add_clause(&[Lit::neg(v)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn simple_conflict_requires_learning() {
        // (a | b) & (a | !b) & (!a | b) & (!a | !b) is unsat.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let (a, b) = (v[0], v[1]);
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::pos(a), Lit::neg(b)]);
        s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, ... encoded as CNF; satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        for w in v.windows(2) {
            let (a, b) = (w[0], w[1]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for w in v.windows(2) {
            assert_ne!(s.value(w[0]), s.value(w[1]));
        }
    }

    /// Pigeonhole principle: n+1 pigeons in n holes is unsat.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Var>>) {
        let mut s = Solver::new();
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &grid {
            let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for row2 in grid.iter().skip(p1 + 1) {
                    s.add_clause(&[Lit::neg(grid[p1][h]), Lit::neg(row2[h])]);
                }
            }
        }
        (s, grid)
    }

    #[test]
    fn pigeonhole_4_in_3_unsat() {
        let (mut s, _) = pigeonhole(4, 3);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_in_4_unsat() {
        let (mut s, _) = pigeonhole(5, 4);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_in_3_sat() {
        let (mut s, grid) = pigeonhole(3, 3);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Verify the model is a valid assignment of pigeons to distinct holes.
        let mut used = [false; 3];
        for row in &grid {
            let hole = row.iter().position(|&v| s.value(v) == Some(true)).unwrap();
            assert!(!used[hole]);
            used[hole] = true;
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(
            s.solve(&[Lit::neg(v[0]), Lit::neg(v[1])]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(&[Lit::neg(v[0])]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // Solver is reusable after assumption-unsat.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[Lit::neg(v[0])]);
        s.add_clause(&[Lit::neg(v[1])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        s.add_clause(&[Lit::neg(v[2])]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        // Once root-unsat, stays unsat.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautology_and_duplicates_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert!(s.add_clause(&[Lit::pos(v[1]), Lit::pos(v[1])]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    /// Brute-force CNF evaluation for differential testing.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        for m in 0u32..(1 << num_vars) {
            let assign = |v: usize| (m >> v) & 1 == 1;
            if clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| assign(v) == pos))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        // Deterministic LCG so the test is reproducible.
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..60 {
            let n = 4 + (next() as usize % 5); // 4..8 vars
            let m = 6 + (next() as usize % 25); // 6..30 clauses
            let clauses: Vec<Vec<(usize, bool)>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| (next() as usize % n, next() & 1 == 0))
                        .collect()
                })
                .collect();
            let expected = brute_force_sat(n, &clauses);
            let mut s = Solver::new();
            let vars = lits(&mut s, n);
            for c in &clauses {
                let cl: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                    .collect();
                s.add_clause(&cl);
            }
            let got = s.solve(&[]) == SolveResult::Sat;
            assert_eq!(
                got, expected,
                "round {round}: solver disagrees with brute force"
            );
            if got {
                // Verify the model actually satisfies every clause, reading
                // unassigned (irrelevant) variables as false.
                for c in &clauses {
                    assert!(
                        c.iter()
                            .any(|&(v, pos)| s.value(vars[v]).unwrap_or(false) == pos),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }

    /// Walks the arena and counts stored clauses; cross-checks the O(1)
    /// live count and that every watcher references a valid header.
    fn check_arena_consistency(s: &Solver) {
        let mut starts = Vec::new();
        let mut off = 0usize;
        while off < s.arena.len() {
            starts.push(off as u32);
            off += HEADER_WORDS + s.clause_len(ClauseRef(off as u32));
        }
        assert_eq!(off, s.arena.len(), "arena has trailing garbage");
        assert_eq!(starts.len(), s.n_clauses, "live count diverged");
        for list in &s.watches {
            for w in list {
                assert!(starts.binary_search(&w.cref.0).is_ok());
            }
        }
        for list in &s.bin_watches {
            for bw in list {
                assert!(starts.binary_search(&bw.cref.0).is_ok());
            }
        }
    }

    #[test]
    fn reduce_db_reclaims_deleted_clauses() {
        // Force frequent DB reductions on an instance that learns plenty of
        // clauses, then check the arena was actually compacted: every
        // stored clause is live, so allocated words shrink when clauses are
        // deleted. Before compaction existed, deleted clauses stayed in the
        // store and in the watcher lists forever.
        let (mut s, _) = pigeonhole(5, 4);
        s.set_max_learnt(20.0);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let st = s.stats();
        assert!(
            st.deleted_clauses > 0,
            "test did not exercise DB reduction (deleted={})",
            st.deleted_clauses
        );
        check_arena_consistency(&s);
        assert_eq!(s.num_clauses(), s.n_clauses);
    }

    #[test]
    fn reduce_db_preserves_verdicts_incrementally() {
        // A solver that reduced its DB mid-run must keep answering
        // correctly on later incremental calls.
        let mut s2 = Solver::new();
        let vars = lits(&mut s2, 8);
        s2.set_max_learnt(4.0);
        // Random-ish 3-SAT over 8 vars, solved repeatedly with clause
        // additions in between; brute force checks each verdict.
        let mut state = 0x5eed5eedu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
        for _ in 0..40 {
            let c: Vec<(usize, bool)> = (0..3)
                .map(|_| (next() as usize % 8, next() & 1 == 0))
                .collect();
            let cl: Vec<Lit> = c
                .iter()
                .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                .collect();
            clauses.push(c);
            s2.add_clause(&cl);
            let got = s2.solve(&[]) == SolveResult::Sat;
            let expected = brute_force_sat(8, &clauses);
            assert_eq!(got, expected, "incremental verdict diverged");
            check_arena_consistency(&s2);
        }
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, _) = pigeonhole(4, 3);
        s.solve(&[]);
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
        assert!(st.learnt_clauses > 0);
        assert!(
            st.lbd_histogram.iter().sum::<u64>() > 0,
            "LBD histogram not populated"
        );
    }

    // ----- differential testing against a naive reference DPLL -----

    /// A deliberately simple reference solver: recursive DPLL with unit
    /// propagation and no learning. Returns a model on SAT.
    fn reference_dpll(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> Option<Vec<bool>> {
        fn go(assign: &mut Vec<Option<bool>>, clauses: &[Vec<(usize, bool)>]) -> bool {
            // Unit propagation to fixpoint; detect conflicts.
            loop {
                let mut changed = false;
                for c in clauses {
                    let mut unassigned: Option<(usize, bool)> = None;
                    let mut n_unassigned = 0;
                    let mut satisfied = false;
                    for &(v, pos) in c {
                        match assign[v] {
                            Some(b) if b == pos => {
                                satisfied = true;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                n_unassigned += 1;
                                unassigned = Some((v, pos));
                            }
                        }
                    }
                    if satisfied {
                        continue;
                    }
                    match n_unassigned {
                        0 => return false, // conflict
                        1 => {
                            let (v, pos) = unassigned.unwrap();
                            assign[v] = Some(pos);
                            changed = true;
                        }
                        _ => {}
                    }
                }
                if !changed {
                    break;
                }
            }
            // Branch on the first unassigned variable.
            match assign.iter().position(|a| a.is_none()) {
                None => true,
                Some(v) => {
                    for b in [true, false] {
                        let saved = assign.clone();
                        assign[v] = Some(b);
                        if go(assign, clauses) {
                            return true;
                        }
                        *assign = saved;
                    }
                    false
                }
            }
        }
        let mut assign = vec![None; num_vars];
        if go(&mut assign, clauses) {
            Some(assign.into_iter().map(|a| a.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    /// Fixed-seed CNF generator shared by the property loops below.
    fn random_cnf(next: &mut impl FnMut() -> u32) -> (usize, Vec<Vec<(usize, bool)>>) {
        let n = 5 + (next() as usize % 8); // 5..12 vars
        let m = 10 + (next() as usize % 40); // 10..49 clauses
        let clauses = (0..m)
            .map(|_| {
                let width = 2 + (next() as usize % 3); // 2..4 literals
                (0..width)
                    .map(|_| (next() as usize % n, next() & 1 == 0))
                    .collect()
            })
            .collect();
        (n, clauses)
    }

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        }
    }

    #[test]
    fn property_cdcl_matches_reference_dpll() {
        // SAT/UNSAT agreement with an independent reference solver, and
        // model validity on SAT, for both LBD settings of the CDCL core.
        let mut next = lcg(0xc0ffee11);
        for round in 0..120 {
            let (n, clauses) = random_cnf(&mut next);
            let reference = reference_dpll(n, &clauses);
            for lbd in [true, false] {
                let mut s = Solver::with_config(SolverConfig {
                    lbd,
                    ..SolverConfig::default()
                });
                s.set_max_learnt(8.0); // exercise reduction constantly
                let vars = lits(&mut s, n);
                for c in &clauses {
                    let cl: Vec<Lit> = c
                        .iter()
                        .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                        .collect();
                    s.add_clause(&cl);
                }
                let got = s.solve(&[]) == SolveResult::Sat;
                assert_eq!(
                    got,
                    reference.is_some(),
                    "round {round} (lbd={lbd}): CDCL disagrees with reference DPLL"
                );
                if got {
                    for c in &clauses {
                        assert!(
                            c.iter()
                                .any(|&(v, pos)| s.value(vars[v]).unwrap_or(false) == pos),
                            "round {round} (lbd={lbd}): invalid model"
                        );
                    }
                }
                check_arena_consistency(&s);
            }
        }
    }

    #[test]
    fn property_assumption_paths_match_reference() {
        // solve(assumptions) must agree with the reference DPLL run on the
        // CNF extended by the assumption units, and leave the solver
        // reusable afterwards.
        let mut next = lcg(0xab5eed42);
        for round in 0..60 {
            let (n, clauses) = random_cnf(&mut next);
            let mut s = Solver::new();
            let vars = lits(&mut s, n);
            for c in &clauses {
                let cl: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                    .collect();
                s.add_clause(&cl);
            }
            let base_sat = s.solve(&[]) == SolveResult::Sat;
            for _trial in 0..4 {
                let n_assumps = 1 + (next() as usize % 3);
                let assumps: Vec<(usize, bool)> = (0..n_assumps)
                    .map(|_| (next() as usize % n, next() & 1 == 0))
                    .collect();
                let lits_a: Vec<Lit> = assumps
                    .iter()
                    .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                    .collect();
                let mut extended = clauses.clone();
                // Contradictory assumptions make the extension trivially
                // unsat; the unit clauses encode that too.
                extended.extend(assumps.iter().map(|&a| vec![a]));
                let expected = reference_dpll(n, &extended).is_some();
                let got = s.solve(&lits_a) == SolveResult::Sat;
                assert_eq!(
                    got, expected,
                    "round {round}: assumption verdict diverged (assumps {assumps:?})"
                );
            }
            // The solver answers the unassumed query identically after
            // arbitrary assumption probes.
            assert_eq!(
                s.solve(&[]) == SolveResult::Sat,
                base_sat,
                "round {round}: solver state corrupted by assumption probes"
            );
        }
    }

    #[test]
    fn property_incremental_add_solve_interleaving() {
        // add-solve-add-solve: growing the CNF between calls must match
        // the reference on every prefix.
        let mut next = lcg(0x1234_fedc);
        for round in 0..30 {
            let (n, clauses) = random_cnf(&mut next);
            let mut s = Solver::new();
            s.set_max_learnt(6.0);
            let vars = lits(&mut s, n);
            let mut so_far: Vec<Vec<(usize, bool)>> = Vec::new();
            for chunk in clauses.chunks(5) {
                for c in chunk {
                    let cl: Vec<Lit> = c
                        .iter()
                        .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                        .collect();
                    s.add_clause(&cl);
                    so_far.push(c.clone());
                }
                let expected = reference_dpll(n, &so_far).is_some();
                let got = s.solve(&[]) == SolveResult::Sat;
                assert_eq!(
                    got,
                    expected,
                    "round {round}: prefix verdict diverged at {} clauses",
                    so_far.len()
                );
                if !got {
                    break; // root-unsat is absorbing
                }
            }
        }
    }

    #[test]
    fn lbd_toggle_preserves_verdicts() {
        // The ablation knob may change models and search order but never
        // verdicts.
        let mut next = lcg(0x9e3779b9);
        for round in 0..60 {
            let (n, clauses) = random_cnf(&mut next);
            let mut verdicts = Vec::new();
            for lbd in [true, false] {
                let mut s = Solver::with_config(SolverConfig {
                    lbd,
                    ..SolverConfig::default()
                });
                s.set_max_learnt(8.0);
                let vars = lits(&mut s, n);
                for c in &clauses {
                    let cl: Vec<Lit> = c
                        .iter()
                        .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                        .collect();
                    s.add_clause(&cl);
                }
                verdicts.push(s.solve(&[]));
            }
            assert_eq!(
                verdicts[0], verdicts[1],
                "round {round}: LBD toggle changed the verdict"
            );
        }
    }

    #[test]
    fn solver_config_from_env_default_on() {
        // Don't mutate the environment (tests run in-process and in
        // parallel); just check the parse rules via explicit construction
        // and the ambient default.
        assert!(SolverConfig::default().lbd);
        let cfg = SolverConfig::from_env();
        match std::env::var("LEAPFROG_SAT_LBD") {
            Ok(v) => assert_eq!(cfg.lbd, v != "0"),
            Err(_) => assert!(cfg.lbd),
        }
    }
}
