//! `certcheck`: standalone certificate checker CLI — the trust root.
//!
//! Reads two parser definitions and a certificate JSON, rebuilds the sum
//! automaton, and re-discharges every certificate obligation with the
//! independent checker. Exits 0 iff the certificate is valid; otherwise
//! prints the named failing obligation and exits 1 (2 for usage errors).
//!
//! Usage:
//!
//! ```text
//! certcheck <left.p4a> <left-start> <right.p4a> <right-start> <cert.json>
//! ```

use std::process::ExitCode;

use leapfrog_p4a::sum::sum;
use leapfrog_p4a::surface::parse;

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 5 {
        return Err(
            "usage: certcheck <left.p4a> <left-start> <right.p4a> <right-start> <cert.json>"
                .to_string(),
        );
    }
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let left_src = read(&args[0])?;
    let right_src = read(&args[2])?;
    let cert_json = read(&args[4])?;

    let left = parse(&left_src).map_err(|e| format!("{}: {e}", args[0]))?;
    let right = parse(&right_src).map_err(|e| format!("{}: {e}", args[2]))?;
    left.state_by_name(&args[1])
        .ok_or_else(|| format!("{}: no state named {}", args[0], args[1]))?;
    right
        .state_by_name(&args[3])
        .ok_or_else(|| format!("{}: no state named {}", args[2], args[3]))?;

    let sum = sum(&left, &right);
    let cert = leapfrog_certcheck::Certificate::from_json(&cert_json, &sum.automaton)
        .map_err(|e| e.to_string())?;
    leapfrog_certcheck::check(&sum.automaton, &cert)
        .map_err(|e| format!("certificate REJECTED [{}]: {e}", e.class()))?;
    println!(
        "certificate OK: {} conjunct(s), {} initial condition(s), leaps={}",
        cert.relation.len(),
        cert.init.len(),
        cert.leaps
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("certcheck: {e}");
            if e.starts_with("usage:") {
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
