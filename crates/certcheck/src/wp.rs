//! The checker's own weakest-precondition transformer (paper, §4.3 lifted
//! to leaps per Theorem 5.7), independent of the engine's implementation.
//!
//! Given a successor relation `ψ = t₁ ∧ t₂ ⇒ φ` and a predecessor template
//! pair, computes the relation that must hold *before* one leap so that
//! every choice of consumed packet bits lands in `ψ`. The consumed bits
//! become a fresh universally quantified packet variable of the leap's
//! width. Each side is processed independently (`WP<` / `WP>`, Lemma 4.8):
//! buffering steps extend the buffer with the fresh variable; boundary
//! steps execute the operation block symbolically on `buf ++ x` and guard
//! the formula with the first-match condition reaching the successor
//! state; `accept`/`reject` step to `reject` with the store unchanged.
//! Returns `None` when the successor guard is unreachable (the conjunct
//! would be vacuously true).

use leapfrog_p4a::ast::{
    clamped_slice_bounds, Automaton, Expr, HeaderId, Op, Pattern, StateId, Target, Transition,
};

use crate::rel::{leap_size, BitExpr, ConfRel, ExprCtx, Pure, Side, Template, TemplatePair, VarId};

/// Computes the weakest precondition of `psi` along one leap from `pred`.
pub fn wp(aut: &Automaton, psi: &ConfRel, pred: &TemplatePair, leaps: bool) -> Option<ConfRel> {
    let k = leap_size(aut, pred, leaps);
    let mut vars = psi.vars.clone();
    let x = BitExpr::Var(VarId(vars.len() as u32));
    vars.push(k);

    // Pass 1: right side. Left buffer references in `phi` are still
    // post-state (the successor guard's length); right references become
    // pre-state.
    let ctx1 = ExprCtx {
        aut,
        left_buf: psi.guard.left.buf_len,
        right_buf: pred.right.buf_len,
        var_widths: &vars,
    };
    let phi_r = wp_side(
        aut,
        &psi.phi,
        Side::Right,
        pred.right,
        psi.guard.right,
        &x,
        k,
        &ctx1,
    )?;

    // Pass 2: left side. Everything is pre-state afterwards.
    let ctx2 = ExprCtx {
        aut,
        left_buf: pred.left.buf_len,
        right_buf: pred.right.buf_len,
        var_widths: &vars,
    };
    let phi_lr = wp_side(
        aut,
        &phi_r,
        Side::Left,
        pred.left,
        psi.guard.left,
        &x,
        k,
        &ctx2,
    )?;

    Some(ConfRel {
        guard: *pred,
        vars,
        phi: phi_lr,
    })
}

/// One-sided weakest precondition (`WP<` or `WP>`).
#[allow(clippy::too_many_arguments)]
fn wp_side(
    aut: &Automaton,
    phi: &Pure,
    side: Side,
    pred: Template,
    succ: Template,
    x: &BitExpr,
    k: usize,
    ctx: &ExprCtx<'_>,
) -> Option<Pure> {
    match pred.target {
        Target::Accept | Target::Reject => {
            // Any k ≥ 1 steps land in reject with the store unchanged.
            if succ != Template::reject() {
                return None;
            }
            let identity = |h: HeaderId| BitExpr::Hdr(side, h);
            Some(phi.subst_side(side, &BitExpr::empty(), &identity, ctx))
        }
        Target::State(q) => {
            let rem = aut.op_size(q) - pred.buf_len;
            if k < rem {
                // Still buffering: the state is unchanged, the buffer grows.
                if succ.target != pred.target || succ.buf_len != pred.buf_len + k {
                    return None;
                }
                let buf = BitExpr::concat(BitExpr::Buf(side), x.clone());
                let identity = |h: HeaderId| BitExpr::Hdr(side, h);
                Some(phi.subst_side(side, &buf, &identity, ctx))
            } else {
                // Transition boundary: run the operation block symbolically
                // on the full buffer, then constrain the select outcome.
                if succ.buf_len != 0 {
                    return None;
                }
                let full = BitExpr::concat(BitExpr::Buf(side), x.clone());
                let store = symbolic_ops(aut, q, side, &full, ctx);
                let cond = branch_condition(aut, q, &store, succ.target, ctx);
                if cond == Pure::ff() {
                    return None;
                }
                let lookup = |h: HeaderId| store[h.0 as usize].clone();
                let substituted = phi.subst_side(side, &BitExpr::empty(), &lookup, ctx);
                Some(Pure::implies(cond, substituted))
            }
        }
    }
}

/// Symbolically executes `op(q)` on the buffer expression `full`,
/// returning the post-state value of every header.
fn symbolic_ops(
    aut: &Automaton,
    q: StateId,
    side: Side,
    full: &BitExpr,
    ctx: &ExprCtx<'_>,
) -> Vec<BitExpr> {
    let mut store: Vec<BitExpr> = aut.header_ids().map(|h| BitExpr::Hdr(side, h)).collect();
    let mut cursor = 0;
    for op in &aut.state(q).ops {
        match op {
            Op::Extract(h) => {
                let sz = aut.header_size(*h);
                store[h.0 as usize] = BitExpr::slice(full.clone(), cursor, sz, ctx);
                cursor += sz;
            }
            Op::Assign(h, e) => {
                store[h.0 as usize] = conv_expr(aut, e, &store, ctx);
            }
        }
    }
    store
}

/// Converts a P4A store expression into a [`BitExpr`] over a symbolic
/// store, resolving the surface language's clamped slices to exact slices.
fn conv_expr(aut: &Automaton, e: &Expr, store: &[BitExpr], ctx: &ExprCtx<'_>) -> BitExpr {
    match e {
        Expr::Hdr(h) => store[h.0 as usize].clone(),
        Expr::Lit(bv) => BitExpr::Lit(bv.clone()),
        Expr::Slice(inner, n1, n2) => {
            let (start, len) = clamped_slice_bounds(inner.width(aut), *n1, *n2);
            BitExpr::slice(conv_expr(aut, inner, store, ctx), start, len, ctx)
        }
        Expr::Concat(a, b) => {
            BitExpr::concat(conv_expr(aut, a, store, ctx), conv_expr(aut, b, store, ctx))
        }
    }
}

/// The condition under which `tz(q)`, evaluated on the symbolic store,
/// transitions to `target` — first-match semantics with a `reject`
/// fall-through (Definition 3.3).
fn branch_condition(
    aut: &Automaton,
    q: StateId,
    store: &[BitExpr],
    target: Target,
    ctx: &ExprCtx<'_>,
) -> Pure {
    match &aut.state(q).trans {
        Transition::Goto(t) => Pure::Const(*t == target),
        Transition::Select { exprs, cases } => {
            let scrutinees: Vec<BitExpr> = exprs
                .iter()
                .map(|e| conv_expr(aut, e, store, ctx))
                .collect();
            let case_conds: Vec<Pure> = cases
                .iter()
                .map(|case| {
                    Pure::and_all(case.pats.iter().zip(&scrutinees).map(|(p, v)| match p {
                        Pattern::Exact(bv) => Pure::eq(v.clone(), BitExpr::Lit(bv.clone())),
                        Pattern::Wildcard => Pure::tt(),
                    }))
                })
                .collect();
            let mut disjuncts = Vec::new();
            for (j, case) in cases.iter().enumerate() {
                if case.target == target {
                    let earlier = Pure::and_all(case_conds[..j].iter().cloned().map(Pure::not));
                    disjuncts.push(Pure::and(case_conds[j].clone(), earlier));
                }
            }
            if target == Target::Reject {
                disjuncts.push(Pure::and_all(case_conds.iter().cloned().map(Pure::not)));
            }
            Pure::or_all(disjuncts)
        }
    }
}
