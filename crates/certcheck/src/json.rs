//! The checker's own JSON parser and certificate decoder.
//!
//! The trust root must not share its input parsing with the engine, so
//! this module re-implements the small JSON subset the certificate
//! archive format uses (the engine's `leapfrog::json` writes it): objects,
//! arrays, strings with escapes, integers, booleans. The decoder also
//! *validates* the certificate against the automaton — state, header, and
//! packet-variable indices in range, template buffer lengths below the
//! state's operation size, slice bounds inside their operand, equality
//! widths matching — so that everything downstream can assume a
//! well-formed certificate.

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, HeaderId, StateId, Target};

use crate::rel::{BitExpr, ConfRel, ExprCtx, Pure, Side, Template, TemplatePair, VarId};
use crate::Certificate;

/// Total packet-variable bits allowed per relation — a hostile certificate
/// must not be able to force the checker to allocate unbounded solver
/// variables.
const MAX_VAR_BITS: usize = 1 << 16;

/// A JSON document tree (only what the certificate format needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(Vec<(String, Value)>),
}

/// Parses a JSON document, rejecting trailing characters.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after JSON document".into());
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("expected literal '{text}'"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        if self.peek()? != b'"' {
            return Err("expected string".into());
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                c => {
                    let start = self.pos - 1;
                    let width = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?,
                    );
                    self.pos = start + width;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err("expected ',' or ']' in array".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            if self.peek()? != b':' {
                return Err("expected ':' after object key".into());
            }
            self.pos += 1;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err("expected ',' or '}' in object".into()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding + validation

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    match v {
        Value::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'")),
        _ => Err(format!("expected object with field '{key}'")),
    }
}

fn as_bool(v: &Value) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err("expected a boolean".into()),
    }
}

fn as_usize(v: &Value) -> Result<usize, String> {
    match v {
        Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9e15 => Ok(*n as usize),
        _ => Err("expected an unsigned integer".into()),
    }
}

fn as_str(v: &Value) -> Result<&str, String> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err("expected a string".into()),
    }
}

fn as_arr(v: &Value) -> Result<&[Value], String> {
    match v {
        Value::Arr(items) => Ok(items),
        _ => Err("expected an array".into()),
    }
}

fn untag(v: &Value) -> Result<(&str, &Value), String> {
    match v {
        Value::Obj(fields) if fields.len() == 1 => Ok((&fields[0].0, &fields[0].1)),
        _ => Err("expected a single-field tagged object".into()),
    }
}

fn bitvec_from(v: &Value) -> Result<BitVec, String> {
    let s = as_str(v)?;
    s.parse()
        .map_err(|e| format!("invalid bitvector literal: {e:?}"))
}

fn target_from(v: &Value, aut: &Automaton) -> Result<Target, String> {
    match v {
        Value::Str(s) if s == "Accept" => Ok(Target::Accept),
        Value::Str(s) if s == "Reject" => Ok(Target::Reject),
        _ => {
            let (t, payload) = untag(v)?;
            if t == "State" {
                let q = as_usize(payload)?;
                if q >= aut.num_states() {
                    return Err(format!("state id {q} out of range"));
                }
                Ok(Target::State(StateId(q as u32)))
            } else {
                Err(format!("unknown target tag '{t}'"))
            }
        }
    }
}

fn template_from(v: &Value, aut: &Automaton) -> Result<Template, String> {
    let target = target_from(get(v, "target")?, aut)?;
    let buf_len = as_usize(get(v, "buf_len")?)?;
    match target {
        Target::State(q) => {
            if buf_len >= aut.op_size(q) {
                return Err(format!(
                    "template buffer length {buf_len} not below ‖op({})‖ = {}",
                    aut.state_name(q),
                    aut.op_size(q)
                ));
            }
        }
        Target::Accept | Target::Reject => {
            if buf_len != 0 {
                return Err("accept/reject template with nonzero buffer".into());
            }
        }
    }
    Ok(Template { target, buf_len })
}

fn side_from(v: &Value) -> Result<Side, String> {
    match as_str(v)? {
        "Left" => Ok(Side::Left),
        "Right" => Ok(Side::Right),
        other => Err(format!("unknown side '{other}'")),
    }
}

fn expr_from(v: &Value, aut: &Automaton) -> Result<BitExpr, String> {
    let (t, payload) = untag(v)?;
    match t {
        "Lit" => Ok(BitExpr::Lit(bitvec_from(payload)?)),
        "Buf" => Ok(BitExpr::Buf(side_from(payload)?)),
        "Hdr" => {
            let items = as_arr(payload)?;
            if items.len() != 2 {
                return Err("Hdr expects [side, header]".into());
            }
            let h = as_usize(&items[1])?;
            if h >= aut.num_headers() {
                return Err(format!("header id {h} out of range"));
            }
            Ok(BitExpr::Hdr(side_from(&items[0])?, HeaderId(h as u32)))
        }
        "Var" => Ok(BitExpr::Var(VarId(as_usize(payload)? as u32))),
        "Slice" => {
            let items = as_arr(payload)?;
            if items.len() != 3 {
                return Err("Slice expects [expr, start, len]".into());
            }
            Ok(BitExpr::Slice(
                Box::new(expr_from(&items[0], aut)?),
                as_usize(&items[1])?,
                as_usize(&items[2])?,
            ))
        }
        "Concat" => {
            let items = as_arr(payload)?;
            if items.len() != 2 {
                return Err("Concat expects [a, b]".into());
            }
            Ok(BitExpr::Concat(
                Box::new(expr_from(&items[0], aut)?),
                Box::new(expr_from(&items[1], aut)?),
            ))
        }
        other => Err(format!("unknown expression tag '{other}'")),
    }
}

fn pure_from(v: &Value, aut: &Automaton) -> Result<Pure, String> {
    let (t, payload) = untag(v)?;
    let pair = |payload: &Value| -> Result<(Pure, Pure), String> {
        let items = as_arr(payload)?;
        if items.len() != 2 {
            return Err("binary connective expects [a, b]".into());
        }
        Ok((pure_from(&items[0], aut)?, pure_from(&items[1], aut)?))
    };
    match t {
        "Const" => Ok(Pure::Const(as_bool(payload)?)),
        "Eq" => {
            let items = as_arr(payload)?;
            if items.len() != 2 {
                return Err("Eq expects [a, b]".into());
            }
            Ok(Pure::Eq(
                expr_from(&items[0], aut)?,
                expr_from(&items[1], aut)?,
            ))
        }
        "Not" => Ok(Pure::Not(Box::new(pure_from(payload, aut)?))),
        "And" => pair(payload).map(|(a, b)| Pure::And(Box::new(a), Box::new(b))),
        "Or" => pair(payload).map(|(a, b)| Pure::Or(Box::new(a), Box::new(b))),
        "Implies" => pair(payload).map(|(a, b)| Pure::Implies(Box::new(a), Box::new(b))),
        other => Err(format!("unknown formula tag '{other}'")),
    }
}

/// Checks an expression's well-formedness in its relation context and
/// returns its width: variable indices in range, slice bounds inside the
/// operand.
fn expr_width(e: &BitExpr, ctx: &ExprCtx<'_>, nvars: usize) -> Result<usize, String> {
    match e {
        BitExpr::Lit(bv) => Ok(bv.len()),
        BitExpr::Buf(s) => Ok(ctx.buf_len(*s)),
        BitExpr::Hdr(_, h) => Ok(ctx.aut.header_size(*h)),
        BitExpr::Var(v) => {
            if (v.0 as usize) >= nvars {
                return Err(format!("packet variable x{} out of range", v.0));
            }
            Ok(ctx.var_widths[v.0 as usize])
        }
        BitExpr::Slice(inner, start, len) => {
            let w = expr_width(inner, ctx, nvars)?;
            if start + len > w {
                return Err(format!("slice [{start};{len}] out of bounds for width {w}"));
            }
            Ok(*len)
        }
        BitExpr::Concat(a, b) => Ok(expr_width(a, ctx, nvars)? + expr_width(b, ctx, nvars)?),
    }
}

fn check_pure(p: &Pure, ctx: &ExprCtx<'_>, nvars: usize) -> Result<(), String> {
    match p {
        Pure::Const(_) => Ok(()),
        Pure::Eq(a, b) => {
            let wa = expr_width(a, ctx, nvars)?;
            let wb = expr_width(b, ctx, nvars)?;
            if wa != wb {
                return Err(format!("equality of mismatched widths {wa} and {wb}"));
            }
            Ok(())
        }
        Pure::Not(q) => check_pure(q, ctx, nvars),
        Pure::And(a, b) | Pure::Or(a, b) | Pure::Implies(a, b) => {
            check_pure(a, ctx, nvars)?;
            check_pure(b, ctx, nvars)
        }
    }
}

fn confrel_from(v: &Value, aut: &Automaton, what: &str) -> Result<ConfRel, String> {
    let guard = get(v, "guard")?;
    let rel = ConfRel {
        guard: TemplatePair {
            left: template_from(get(guard, "left")?, aut)?,
            right: template_from(get(guard, "right")?, aut)?,
        },
        vars: as_arr(get(v, "vars")?)?
            .iter()
            .map(as_usize)
            .collect::<Result<_, _>>()?,
        phi: pure_from(get(v, "phi")?, aut)?,
    };
    if rel.vars.iter().sum::<usize>() > MAX_VAR_BITS {
        return Err(format!(
            "{what}: packet variables exceed {MAX_VAR_BITS} bits"
        ));
    }
    check_pure(&rel.phi, &rel.ctx(aut), rel.vars.len()).map_err(|e| format!("{what}: {e}"))?;
    Ok(rel)
}

/// Decodes and validates a certificate against the automaton it claims to
/// certify.
pub fn certificate_from_value(v: &Value, aut: &Automaton) -> Result<Certificate, String> {
    let decode_list = |key: &str| -> Result<Vec<ConfRel>, String> {
        as_arr(get(v, key)?)?
            .iter()
            .enumerate()
            .map(|(i, r)| confrel_from(r, aut, &format!("{key}[{i}]")))
            .collect()
    };
    Ok(Certificate {
        leaps: as_bool(get(v, "leaps")?)?,
        standard_init: as_bool(get(v, "standard_init")?)?,
        query: confrel_from(get(v, "query")?, aut, "query")?,
        init: decode_list("init")?,
        relation: decode_list("relation")?,
    })
}
