//! `leapfrog-certcheck`: the independent, dependency-free certificate
//! checker — the trust root of the reproduction.
//!
//! The engine (`leapfrog` / `leapfrog_logic` / `leapfrog_smt` /
//! `leapfrog_sat`) is fast, cached, parallel, and therefore *untrusted*:
//! a bug in its shared lowering or CDCL core would silently break both the
//! prover and the engine-side certificate checker. This crate re-validates
//! a certificate end to end along a second, independently implemented code
//! path, mirroring the paper's architecture where the Coq kernel re-checks
//! proof terms produced by untrusted Ltac search (§6.4):
//!
//! * its own JSON parser and schema validation ([`json`]);
//! * its own reachable-pair computation ([`rel::reachable_pairs`]);
//! * its own weakest-precondition transformer ([`wp::wp`]);
//! * its own bit-blasting and minimal DPLL solver with model-based
//!   universal instantiation ([`solve::entails`]).
//!
//! The only shared code is `leapfrog-p4a` (the problem statement: automata
//! ASTs and their parsing) and the `leapfrog-bitvec` value type. The
//! trusted computing base of an `Equivalent` verdict is therefore this
//! crate plus the P4A front end — everything else may lie.
//!
//! [`check`] re-discharges the conditions of Theorem 5.2 (with leaps,
//! §5.3) exactly as the engine-side checker states them:
//!
//! 1. recompute the reachable template-pair scope from the query guard;
//! 2. acceptance compatibility: every reachable accept/non-accept pair
//!    must be forbidden by an initial conjunct (standard-init
//!    certificates), and `⋀R` must entail every initial conjunct;
//! 3. step closure: `⋀R` entails the weakest precondition of every
//!    `ρ ∈ R` over every reachable predecessor pair;
//! 4. the query entails every relation conjunct at the query's guard.

#![warn(missing_docs)]

use std::fmt;

use leapfrog_p4a::ast::Automaton;

pub mod json;
pub mod rel;
pub mod solve;
pub mod wp;

use rel::ConfRel;

/// A decoded, validated certificate (the checker's own mirror of the
/// engine's certificate type).
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Whether the relation is a bisimulation *with leaps*.
    pub leaps: bool,
    /// Whether `init` is the standard acceptance-compatibility relation.
    pub standard_init: bool,
    /// The query `φ`.
    pub query: ConfRel,
    /// The initial relation `I`.
    pub init: Vec<ConfRel>,
    /// The computed relation `R`.
    pub relation: Vec<ConfRel>,
}

impl Certificate {
    /// Parses and validates a certificate from its JSON archive format.
    pub fn from_json(s: &str, aut: &Automaton) -> Result<Certificate, CertCheckError> {
        let v = json::parse(s).map_err(CertCheckError::Malformed)?;
        json::certificate_from_value(&v, aut).map_err(CertCheckError::Malformed)
    }
}

/// Why a certificate failed to check. The four semantic classes mirror the
/// engine checker's error classes one-to-one (so differential tests can
/// compare verdicts); `Malformed` is new here because this checker parses
/// untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertCheckError {
    /// The JSON failed to parse or validate against the automaton.
    Malformed(String),
    /// A reachable accept/non-accept pair is not forbidden by `I`.
    MissingAcceptanceCondition(String),
    /// `⋀R` does not entail an initial conjunct.
    InitNotEntailed(String),
    /// `⋀R` is not closed under a weakest precondition.
    NotClosed(String),
    /// The query does not entail a relation conjunct.
    QueryNotEntailed(String),
}

impl CertCheckError {
    /// A short machine-readable name for the failing obligation class
    /// (stable: the CLI exit message and the wire error payload carry it).
    pub fn class(&self) -> &'static str {
        match self {
            CertCheckError::Malformed(_) => "malformed",
            CertCheckError::MissingAcceptanceCondition(_) => "missing_acceptance_condition",
            CertCheckError::InitNotEntailed(_) => "init_not_entailed",
            CertCheckError::NotClosed(_) => "not_closed",
            CertCheckError::QueryNotEntailed(_) => "query_not_entailed",
        }
    }
}

impl fmt::Display for CertCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertCheckError::Malformed(s) => write!(f, "malformed certificate: {s}"),
            CertCheckError::MissingAcceptanceCondition(s) => {
                write!(f, "initial relation misses acceptance condition at {s}")
            }
            CertCheckError::InitNotEntailed(s) => {
                write!(f, "relation does not entail initial condition {s}")
            }
            CertCheckError::NotClosed(s) => {
                write!(f, "relation is not closed under WP: {s}")
            }
            CertCheckError::QueryNotEntailed(s) => {
                write!(f, "query does not entail {s}")
            }
        }
    }
}

impl std::error::Error for CertCheckError {}

/// Re-validates a certificate against the sum automaton, independently of
/// the engine. Deterministic: obligations are checked in a fixed order and
/// the lowest-index failure is reported.
pub fn check(aut: &Automaton, cert: &Certificate) -> Result<(), CertCheckError> {
    let scope = rel::reachable_pairs(aut, &[cert.query.guard], cert.leaps);

    // (2a) Acceptance compatibility (standard-init certificates only).
    for p in scope.iter().filter(|_| cert.standard_init) {
        if p.left.is_accepting() != p.right.is_accepting() {
            let covered = cert
                .init
                .iter()
                .any(|i| i.guard == *p && i.phi == rel::Pure::ff());
            if !covered {
                return Err(CertCheckError::MissingAcceptanceCondition(p.display(aut)));
            }
        }
    }

    // (2b) ⋀R entails every initial conjunct.
    for i in &cert.init {
        if !solve::entails(aut, &cert.relation, i) {
            return Err(CertCheckError::InitNotEntailed(i.display(aut)));
        }
    }

    // (3) Step closure: for every ρ ∈ R and reachable predecessor pair,
    // ⋀R ⊨ wp(ρ).
    for rho in &cert.relation {
        for p in &scope {
            if let Some(ob) = wp::wp(aut, rho, p, cert.leaps) {
                if !solve::entails(aut, &cert.relation, &ob) {
                    return Err(CertCheckError::NotClosed(ob.display(aut)));
                }
            }
        }
    }

    // (4) φ ⊨ ⋀R.
    for rho in &cert.relation {
        if rho.guard == cert.query.guard
            && !solve::entails(aut, std::slice::from_ref(&cert.query), rho)
        {
            return Err(CertCheckError::QueryNotEntailed(rho.display(aut)));
        }
    }
    Ok(())
}

/// Parses, validates, and checks a certificate JSON in one call (the wire
/// and CLI entry point).
pub fn check_json(aut: &Automaton, cert_json: &str) -> Result<(), CertCheckError> {
    let cert = Certificate::from_json(cert_json, aut)?;
    check(aut, &cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::ast::Target;
    use leapfrog_p4a::surface::parse;
    use rel::{BitExpr, Pure, Side, Template, TemplatePair, VarId};

    fn guard(aut: &Automaton, q: &str, l: usize, r: usize) -> TemplatePair {
        let s = aut.state_by_name(q).unwrap();
        TemplatePair {
            left: Template {
                target: Target::State(s),
                buf_len: l,
            },
            right: Template {
                target: Target::State(s),
                buf_len: r,
            },
        }
    }

    fn two_header() -> Automaton {
        parse("parser P { state s { extract(h, 4); extract(g, 4); goto accept } }").unwrap()
    }

    #[test]
    fn premise_entails_itself() {
        let aut = two_header();
        let g = guard(&aut, "s", 3, 3);
        let rel = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        };
        assert!(solve::entails(&aut, std::slice::from_ref(&rel), &rel));
    }

    #[test]
    fn buffer_equality_entails_slice_equality_but_not_converse() {
        let aut = two_header();
        let g = guard(&aut, "s", 3, 3);
        let full = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        };
        let sliced = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 1, 2),
                BitExpr::Slice(Box::new(BitExpr::Buf(Side::Right)), 1, 2),
            ),
        };
        assert!(solve::entails(&aut, std::slice::from_ref(&full), &sliced));
        assert!(!solve::entails(&aut, std::slice::from_ref(&sliced), &full));
    }

    #[test]
    fn template_filtering_drops_other_guards() {
        let aut = two_header();
        let premise = ConfRel {
            guard: guard(&aut, "s", 2, 2),
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        };
        let conclusion = ConfRel {
            guard: guard(&aut, "s", 3, 3),
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        };
        assert!(!solve::entails(&aut, &[premise], &conclusion));
    }

    #[test]
    fn false_premise_entails_anything() {
        let aut = two_header();
        let g = guard(&aut, "s", 1, 1);
        let premise = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::ff(),
        };
        let conclusion = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        };
        assert!(solve::entails(&aut, &[premise], &conclusion));
    }

    #[test]
    fn quantified_premise_cancellation() {
        // (∀x. buf< ++ x = buf> ++ x) entails buf< = buf>.
        let aut = two_header();
        let g = guard(&aut, "s", 2, 2);
        let premise = ConfRel {
            guard: g,
            vars: vec![3],
            phi: Pure::eq(
                BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
                BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
            ),
        };
        let conclusion = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        };
        assert!(solve::entails(&aut, &[premise], &conclusion));
    }

    #[test]
    fn conclusion_variables_are_universal() {
        // ∀y (2 bits). y = 00 must fail even under a trivial premise.
        let aut = two_header();
        let g = guard(&aut, "s", 1, 1);
        let premise = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::tt(),
        };
        let conclusion = ConfRel {
            guard: g,
            vars: vec![2],
            phi: Pure::eq(
                BitExpr::Var(VarId(0)),
                BitExpr::Lit(leapfrog_bitvec::BitVec::zeros(2)),
            ),
        };
        assert!(!solve::entails(&aut, &[premise], &conclusion));
    }

    #[test]
    fn store_relations_respect_sides() {
        let aut = two_header();
        let h = aut.header_by_name("h").unwrap();
        let gh = aut.header_by_name("g").unwrap();
        let g = guard(&aut, "s", 1, 1);
        let premise = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Hdr(Side::Left, h), BitExpr::Hdr(Side::Right, gh)),
        };
        let ok = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Slice(Box::new(BitExpr::Hdr(Side::Left, h)), 0, 2),
                BitExpr::Slice(Box::new(BitExpr::Hdr(Side::Right, gh)), 0, 2),
            ),
        };
        assert!(solve::entails(&aut, std::slice::from_ref(&premise), &ok));
        let wrong = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Hdr(Side::Right, h), BitExpr::Hdr(Side::Right, gh)),
        };
        assert!(!solve::entails(&aut, &[premise], &wrong));
    }

    #[test]
    fn zero_width_buffer_is_trivial() {
        let aut = parse("parser P { state s { extract(h, 2); goto accept } }").unwrap();
        let s = aut.state_by_name("s").unwrap();
        let g = TemplatePair {
            left: Template {
                target: Target::State(s),
                buf_len: 0,
            },
            right: Template {
                target: Target::State(s),
                buf_len: 0,
            },
        };
        let conclusion = ConfRel {
            guard: g,
            vars: vec![],
            phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
        };
        assert!(solve::entails(&aut, &[], &conclusion));
    }

    #[test]
    fn malformed_certificates_are_rejected() {
        let aut = two_header();
        // State id out of range.
        let bad_state = r#"{
          "leaps": true, "standard_init": true,
          "query": {"guard": {"left": {"target": {"State": 9}, "buf_len": 0},
                              "right": {"target": {"State": 0}, "buf_len": 0}},
                    "vars": [], "phi": {"Const": true}},
          "init": [], "relation": []
        }"#;
        assert!(matches!(
            check_json(&aut, bad_state),
            Err(CertCheckError::Malformed(_))
        ));
        // Slice out of bounds.
        let bad_slice = r#"{
          "leaps": true, "standard_init": true,
          "query": {"guard": {"left": {"target": {"State": 0}, "buf_len": 2},
                              "right": {"target": {"State": 0}, "buf_len": 2}},
                    "vars": [],
                    "phi": {"Eq": [{"Slice": [{"Buf": "Left"}, 1, 5]}, {"Buf": "Right"}]}},
          "init": [], "relation": []
        }"#;
        assert!(matches!(
            check_json(&aut, bad_slice),
            Err(CertCheckError::Malformed(_))
        ));
        // Not JSON at all.
        assert!(matches!(
            check_json(&aut, "not json"),
            Err(CertCheckError::Malformed(_))
        ));
    }
}
