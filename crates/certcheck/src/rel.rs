//! The checker's own formula language: templates, guarded relations, and
//! pure formulas over bitvector expressions (paper, Figure 3 and
//! Definition 4.7), re-implemented from the paper without importing any of
//! the engine's `leapfrog_logic` code.
//!
//! The types intentionally mirror the certificate JSON schema one-to-one;
//! the reachability computation follows §5.1/§5.3 (templates abstract
//! configurations by control location and buffer length, leaps jump to the
//! next transition boundary).

use leapfrog_p4a::ast::{Automaton, HeaderId, Target};

/// Which configuration of the pair an expression refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The `<` (left) configuration.
    Left,
    /// The `>` (right) configuration.
    Right,
}

impl Side {
    /// The paper's superscript notation.
    pub fn symbol(self) -> &'static str {
        match self {
            Side::Left => "<",
            Side::Right => ">",
        }
    }
}

/// A template `⟨q, n⟩`: control location plus buffer length
/// (Definition 4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Template {
    /// The control location.
    pub target: Target,
    /// The buffer length.
    pub buf_len: usize,
}

impl Template {
    /// The `reject` template `⟨reject, 0⟩`.
    pub fn reject() -> Template {
        Template {
            target: Target::Reject,
            buf_len: 0,
        }
    }

    /// Whether this is the accepting template.
    pub fn is_accepting(&self) -> bool {
        self.target == Target::Accept
    }

    /// Bits remaining until the template's state transitions: for a proper
    /// state, `‖op(q)‖ - n`; for `accept`/`reject`, 1 (they step every
    /// bit).
    pub fn remaining(&self, aut: &Automaton) -> usize {
        match self.target {
            Target::State(q) => aut.op_size(q) - self.buf_len,
            Target::Accept | Target::Reject => 1,
        }
    }

    /// The successor templates after consuming `k` bits, `k ≤ remaining`:
    /// deterministic while buffering, branching over transition targets at
    /// the boundary, `accept`/`reject` sinking to `reject`.
    pub fn successors(&self, aut: &Automaton, k: usize) -> Vec<Template> {
        match self.target {
            Target::Accept | Target::Reject => vec![Template::reject()],
            Target::State(q) => {
                let rem = aut.op_size(q) - self.buf_len;
                if k < rem {
                    vec![Template {
                        target: self.target,
                        buf_len: self.buf_len + k,
                    }]
                } else {
                    aut.state(q)
                        .trans
                        .targets()
                        .into_iter()
                        .map(|t| Template {
                            target: t,
                            buf_len: 0,
                        })
                        .collect()
                }
            }
        }
    }

    /// Renders the template with state names.
    pub fn display(&self, aut: &Automaton) -> String {
        format!("⟨{}, {}⟩", aut.target_name(self.target), self.buf_len)
    }
}

/// A pair of templates, abstracting a pair of configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplatePair {
    /// The left template.
    pub left: Template,
    /// The right template.
    pub right: Template,
}

impl TemplatePair {
    /// Renders the pair with state names.
    pub fn display(&self, aut: &Automaton) -> String {
        format!("{} / {}", self.left.display(aut), self.right.display(aut))
    }
}

/// The leap size `♯` of Definition 5.3 (1 when leaps are disabled).
pub fn leap_size(aut: &Automaton, pair: &TemplatePair, leaps: bool) -> usize {
    if !leaps {
        return 1;
    }
    match (pair.left.target, pair.right.target) {
        (Target::State(_), Target::State(_)) => {
            pair.left.remaining(aut).min(pair.right.remaining(aut))
        }
        (Target::State(_), _) => pair.left.remaining(aut),
        (_, Target::State(_)) => pair.right.remaining(aut),
        _ => 1,
    }
}

/// The successor pairs after one leap: the product of per-side successors,
/// each side capped at its own remaining bits.
pub fn successor_pairs(aut: &Automaton, pair: &TemplatePair, leaps: bool) -> Vec<TemplatePair> {
    let k = leap_size(aut, pair, leaps);
    let ls = pair.left.successors(aut, k.min(pair.left.remaining(aut)));
    let rs = pair.right.successors(aut, k.min(pair.right.remaining(aut)));
    let mut out = Vec::with_capacity(ls.len() * rs.len());
    for l in &ls {
        for r in &rs {
            out.push(TemplatePair {
                left: *l,
                right: *r,
            });
        }
    }
    out
}

/// The template pairs reachable from `roots` under the leap-successor
/// abstraction, in deterministic (sorted) order.
pub fn reachable_pairs(aut: &Automaton, roots: &[TemplatePair], leaps: bool) -> Vec<TemplatePair> {
    let mut seen: std::collections::BTreeSet<TemplatePair> = roots.iter().copied().collect();
    let mut work: Vec<TemplatePair> = roots.to_vec();
    while let Some(p) = work.pop() {
        for s in successor_pairs(aut, &p, leaps) {
            if seen.insert(s) {
                work.push(s);
            }
        }
    }
    seen.into_iter().collect()
}

/// A formula-local packet variable, indexed into [`ConfRel::vars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub u32);

/// A bitvector expression over a configuration pair (Figure 3: `be`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BitExpr {
    /// A literal.
    Lit(leapfrog_bitvec::BitVec),
    /// The buffer of one side; its width is the guard's buffer length.
    Buf(Side),
    /// A header of one side.
    Hdr(Side, HeaderId),
    /// A packet variable.
    Var(VarId),
    /// Exact slice: `len` bits from `start`.
    Slice(Box<BitExpr>, usize, usize),
    /// Concatenation.
    Concat(Box<BitExpr>, Box<BitExpr>),
}

/// Width context for expressions: the automaton (header sizes), the buffer
/// lengths of both sides, and the packet-variable widths.
#[derive(Debug, Clone, Copy)]
pub struct ExprCtx<'a> {
    /// The (sum) automaton.
    pub aut: &'a Automaton,
    /// Width of `buf<`.
    pub left_buf: usize,
    /// Width of `buf>`.
    pub right_buf: usize,
    /// Widths of packet variables.
    pub var_widths: &'a [usize],
}

impl ExprCtx<'_> {
    /// The buffer width of a side.
    pub fn buf_len(&self, side: Side) -> usize {
        match side {
            Side::Left => self.left_buf,
            Side::Right => self.right_buf,
        }
    }
}

impl BitExpr {
    /// The empty bitvector.
    pub fn empty() -> BitExpr {
        BitExpr::Lit(leapfrog_bitvec::BitVec::new())
    }

    /// The static width of the expression in a guard context.
    pub fn width(&self, ctx: &ExprCtx<'_>) -> usize {
        match self {
            BitExpr::Lit(bv) => bv.len(),
            BitExpr::Buf(side) => ctx.buf_len(*side),
            BitExpr::Hdr(_, h) => ctx.aut.header_size(*h),
            BitExpr::Var(v) => ctx.var_widths[v.0 as usize],
            BitExpr::Slice(_, _, len) => *len,
            BitExpr::Concat(a, b) => a.width(ctx) + b.width(ctx),
        }
    }

    /// Smart slice constructor: folds literals, composes nested slices and
    /// pushes through concatenation when widths permit.
    pub fn slice(e: BitExpr, start: usize, len: usize, ctx: &ExprCtx<'_>) -> BitExpr {
        if len == 0 {
            return BitExpr::empty();
        }
        let w = e.width(ctx);
        if start == 0 && len == w {
            return e;
        }
        match e {
            BitExpr::Lit(bv) => BitExpr::Lit(bv.subrange(start, len)),
            BitExpr::Slice(inner, s0, _) => BitExpr::Slice(inner, s0 + start, len),
            BitExpr::Concat(a, b) => {
                let wa = a.width(ctx);
                if start + len <= wa {
                    BitExpr::slice(*a, start, len, ctx)
                } else if start >= wa {
                    BitExpr::slice(*b, start - wa, len, ctx)
                } else {
                    let l = BitExpr::slice(*a, start, wa - start, ctx);
                    let r = BitExpr::slice(*b, 0, len - (wa - start), ctx);
                    BitExpr::concat(l, r)
                }
            }
            other => BitExpr::Slice(Box::new(other), start, len),
        }
    }

    /// Smart concatenation: drops empty sides, fuses literals.
    pub fn concat(a: BitExpr, b: BitExpr) -> BitExpr {
        match (&a, &b) {
            (BitExpr::Lit(x), _) if x.is_empty() => return b,
            (_, BitExpr::Lit(y)) if y.is_empty() => return a,
            (BitExpr::Lit(x), BitExpr::Lit(y)) => return BitExpr::Lit(x.concat(y)),
            _ => {}
        }
        BitExpr::Concat(Box::new(a), Box::new(b))
    }

    /// Substitutes buffers and headers of one side (used by the WP
    /// transformer): `buf` replaces `Buf(side)`, `store(h)` replaces
    /// `Hdr(side, h)`.
    pub fn subst_side(
        &self,
        side: Side,
        buf: &BitExpr,
        store: &dyn Fn(HeaderId) -> BitExpr,
        ctx: &ExprCtx<'_>,
    ) -> BitExpr {
        match self {
            BitExpr::Lit(_) | BitExpr::Var(_) => self.clone(),
            BitExpr::Buf(s) => {
                if *s == side {
                    buf.clone()
                } else {
                    self.clone()
                }
            }
            BitExpr::Hdr(s, h) => {
                if *s == side {
                    store(*h)
                } else {
                    self.clone()
                }
            }
            BitExpr::Slice(e, start, len) => {
                BitExpr::slice(e.subst_side(side, buf, store, ctx), *start, *len, ctx)
            }
            BitExpr::Concat(a, b) => BitExpr::concat(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
        }
    }
}

/// A pure formula (Definition 4.7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pure {
    /// `⊤` or `⊥`.
    Const(bool),
    /// Bitvector equality.
    Eq(BitExpr, BitExpr),
    /// Negation.
    Not(Box<Pure>),
    /// Conjunction.
    And(Box<Pure>, Box<Pure>),
    /// Disjunction.
    Or(Box<Pure>, Box<Pure>),
    /// Implication.
    Implies(Box<Pure>, Box<Pure>),
}

impl Pure {
    /// `⊤`.
    pub fn tt() -> Pure {
        Pure::Const(true)
    }

    /// `⊥`.
    pub fn ff() -> Pure {
        Pure::Const(false)
    }

    /// Equality with constant folding.
    pub fn eq(a: BitExpr, b: BitExpr) -> Pure {
        if let (BitExpr::Lit(x), BitExpr::Lit(y)) = (&a, &b) {
            return Pure::Const(x == y);
        }
        if a == b {
            return Pure::tt();
        }
        Pure::Eq(a, b)
    }

    /// Negation with simplification.
    #[allow(clippy::should_implement_trait)] // DSL-style smart constructor
    pub fn not(p: Pure) -> Pure {
        match p {
            Pure::Const(b) => Pure::Const(!b),
            Pure::Not(inner) => *inner,
            other => Pure::Not(Box::new(other)),
        }
    }

    /// Conjunction with simplification.
    pub fn and(a: Pure, b: Pure) -> Pure {
        match (&a, &b) {
            (Pure::Const(false), _) | (_, Pure::Const(false)) => Pure::ff(),
            (Pure::Const(true), _) => b,
            (_, Pure::Const(true)) => a,
            _ => Pure::And(Box::new(a), Box::new(b)),
        }
    }

    /// Conjunction of many formulas.
    pub fn and_all(ps: impl IntoIterator<Item = Pure>) -> Pure {
        ps.into_iter().fold(Pure::tt(), Pure::and)
    }

    /// Disjunction with simplification.
    pub fn or(a: Pure, b: Pure) -> Pure {
        match (&a, &b) {
            (Pure::Const(true), _) | (_, Pure::Const(true)) => Pure::tt(),
            (Pure::Const(false), _) => b,
            (_, Pure::Const(false)) => a,
            _ => Pure::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction of many formulas.
    pub fn or_all(ps: impl IntoIterator<Item = Pure>) -> Pure {
        ps.into_iter().fold(Pure::ff(), Pure::or)
    }

    /// Implication with simplification.
    pub fn implies(a: Pure, b: Pure) -> Pure {
        match (&a, &b) {
            (Pure::Const(false), _) => Pure::tt(),
            (Pure::Const(true), _) => b,
            (_, Pure::Const(true)) => Pure::tt(),
            (_, Pure::Const(false)) => Pure::not(a),
            _ => Pure::Implies(Box::new(a), Box::new(b)),
        }
    }

    /// Applies a side substitution through the formula.
    pub fn subst_side(
        &self,
        side: Side,
        buf: &BitExpr,
        store: &dyn Fn(HeaderId) -> BitExpr,
        ctx: &ExprCtx<'_>,
    ) -> Pure {
        match self {
            Pure::Const(_) => self.clone(),
            Pure::Eq(a, b) => Pure::eq(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
            Pure::Not(p) => Pure::not(p.subst_side(side, buf, store, ctx)),
            Pure::And(a, b) => Pure::and(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
            Pure::Or(a, b) => Pure::or(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
            Pure::Implies(a, b) => Pure::implies(
                a.subst_side(side, buf, store, ctx),
                b.subst_side(side, buf, store, ctx),
            ),
        }
    }
}

/// A template-guarded configuration relation `t₁< ∧ t₂> ⇒ φ`
/// (Definition 4.7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfRel {
    /// The guard templates.
    pub guard: TemplatePair,
    /// Widths of the packet variables appearing in `phi`.
    pub vars: Vec<usize>,
    /// The pure body.
    pub phi: Pure,
}

impl ConfRel {
    /// A width context for this relation's body.
    pub fn ctx<'a>(&'a self, aut: &'a Automaton) -> ExprCtx<'a> {
        ExprCtx {
            aut,
            left_buf: self.guard.left.buf_len,
            right_buf: self.guard.right.buf_len,
            var_widths: &self.vars,
        }
    }

    /// Renders the relation with names for diagnostics.
    pub fn display(&self, aut: &Automaton) -> String {
        format!(
            "{} ⇒ {}",
            self.guard.display(aut),
            display_pure(&self.phi, aut)
        )
    }
}

fn display_pure(p: &Pure, aut: &Automaton) -> String {
    match p {
        Pure::Const(true) => "⊤".into(),
        Pure::Const(false) => "⊥".into(),
        Pure::Eq(a, b) => format!("{} = {}", display_expr(a, aut), display_expr(b, aut)),
        Pure::Not(p) => format!("¬({})", display_pure(p, aut)),
        Pure::And(a, b) => format!("({} ∧ {})", display_pure(a, aut), display_pure(b, aut)),
        Pure::Or(a, b) => format!("({} ∨ {})", display_pure(a, aut), display_pure(b, aut)),
        Pure::Implies(a, b) => {
            format!("({} ⇒ {})", display_pure(a, aut), display_pure(b, aut))
        }
    }
}

fn display_expr(e: &BitExpr, aut: &Automaton) -> String {
    match e {
        BitExpr::Lit(bv) => format!("0b{bv}"),
        BitExpr::Buf(s) => format!("buf{}", s.symbol()),
        BitExpr::Hdr(s, h) => format!("{}{}", aut.header_name(*h), s.symbol()),
        BitExpr::Var(v) => format!("x{}", v.0),
        BitExpr::Slice(e, start, len) => {
            format!("{}[{start};{len}]", display_expr(e, aut))
        }
        BitExpr::Concat(a, b) => {
            format!("({} ++ {})", display_expr(a, aut), display_expr(b, aut))
        }
    }
}
