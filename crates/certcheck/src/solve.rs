//! The checker's own entailment decision procedure: bit-blasting to CNF
//! plus a small conflict-learning SAT solver written from scratch — no
//! code shared with the engine's CDCL core or SMT layer.
//!
//! An entailment `⋀ᵢ (t ⇒ ψᵢ) ⊨ (t ⇒ ψ)` between template-guarded
//! relations (all guards equal after template filtering — guards are
//! mutually exclusive, so premises at other guards are vacuous) reduces to
//! a validity query over bitvectors: the two buffers (at the guard's
//! widths), one variable per `(side, header)`, and the conclusion's packet
//! variables are free (validity quantifies them universally); each
//! premise's packet variables are universally quantified *inside* the
//! goal.
//!
//! Because the formula language has no arithmetic — expressions are
//! literals, variables, slices, and concatenations — every expression bit
//! resolves statically to either a constant or a single free-variable bit.
//! Equalities therefore blast to per-bit XNORs and only the propositional
//! skeleton needs Tseitin encoding.
//!
//! The inner universal quantifiers are discharged by model-based
//! instantiation: search for a countermodel of `premises ∧ ¬conclusion`
//! treating each quantified premise only through its ground
//! instantiations; when a candidate model appears, verify each quantified
//! premise under the model with a nested DPLL search over the premise's
//! packet bits alone; a violating witness `x*` refutes the candidate and
//! its ground instantiation `ψᵢ[x := x*]` joins the clause set. Every
//! round eliminates at least the candidate model, and the model space is
//! finite, so the loop terminates.

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::Automaton;

use crate::rel::{BitExpr, ConfRel, Pure, Side};

// ---------------------------------------------------------------------------
// CNF + DPLL

/// A propositional literal: variable index plus sign (`2v` positive,
/// `2v+1` negated).
type Lit = usize;

fn pos(v: usize) -> Lit {
    v << 1
}

fn neg_lit(l: Lit) -> Lit {
    l ^ 1
}

fn lit_var(l: Lit) -> usize {
    l >> 1
}

fn lit_sign(l: Lit) -> bool {
    l & 1 == 0
}

/// A CNF formula under construction.
struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Set when an asserted constraint is constant-false: the formula is
    /// trivially unsatisfiable.
    contradiction: bool,
}

impl Cnf {
    fn new() -> Cnf {
        Cnf {
            num_vars: 0,
            clauses: Vec::new(),
            contradiction: false,
        }
    }

    fn fresh(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    fn clause(&mut self, lits: Vec<Lit>) {
        self.clauses.push(lits);
    }
}

/// A literal or a known constant, for Tseitin encoding.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PLit {
    Const(bool),
    Lit(Lit),
}

impl PLit {
    fn negate(self) -> PLit {
        match self {
            PLit::Const(b) => PLit::Const(!b),
            PLit::Lit(l) => PLit::Lit(neg_lit(l)),
        }
    }
}

/// The conflict-driven search state. A small CDCL solver, written from
/// scratch for the trust root: two-watched-literal propagation, first-UIP
/// clause learning with non-chronological backjumping, activity-driven
/// branching with phase saving, and geometric restarts.
///
/// Clause learning is load-bearing here, not an optimisation: the wide
/// header-to-header equalities of relational certificates make plain
/// chronological DPLL re-explore the same conflicting sub-assignments
/// exponentially often.
struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// Clause indices watching each literal.
    watches: Vec<Vec<usize>>,
    /// 0 = unassigned, 1 = true, 2 = false.
    assign: Vec<u8>,
    /// The decision level each variable was assigned at.
    level: Vec<usize>,
    /// The clause that implied each variable (`None` for decisions).
    reason: Vec<Option<usize>>,
    /// The last polarity each variable held — retried first on the next
    /// decision (phase saving).
    phase: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    trail: Vec<Lit>,
    /// Trail height at each decision.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// Conflict-analysis scratch marks.
    seen: Vec<bool>,
}

impl Solver {
    fn lit_true(&self, l: Lit) -> bool {
        self.assign[lit_var(l)] == if lit_sign(l) { 1 } else { 2 }
    }

    fn lit_false(&self, l: Lit) -> bool {
        self.assign[lit_var(l)] == if lit_sign(l) { 2 } else { 1 }
    }

    /// Assigns `l` at the current decision level. Returns `false` when it
    /// contradicts the assignment already in force.
    fn enqueue(&mut self, l: Lit, why: Option<usize>) -> bool {
        let v = lit_var(l);
        match self.assign[v] {
            0 => {
                self.assign[v] = if lit_sign(l) { 1 } else { 2 };
                self.level[v] = self.trail_lim.len();
                self.reason[v] = why;
                self.trail.push(l);
                true
            }
            a => a == if lit_sign(l) { 1 } else { 2 },
        }
    }

    /// Propagates every queued assignment; returns the conflicting clause
    /// if one arises.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let falsified = neg_lit(self.trail[self.qhead]);
            self.qhead += 1;
            let mut i = 0;
            'watch: while i < self.watches[falsified].len() {
                let ci = self.watches[falsified][i];
                // Ensure the falsified literal sits in slot 1.
                if self.clauses[ci][0] == falsified {
                    self.clauses[ci].swap(0, 1);
                }
                if self.lit_true(self.clauses[ci][0]) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for j in 2..self.clauses[ci].len() {
                    if !self.lit_false(self.clauses[ci][j]) {
                        self.clauses[ci].swap(1, j);
                        let new_watch = self.clauses[ci][1];
                        self.watches[falsified].swap_remove(i);
                        self.watches[new_watch].push(ci);
                        continue 'watch;
                    }
                }
                // No replacement: the clause is unit on slot 0 (or false).
                let unit = self.clauses[ci][0];
                if !self.enqueue(unit, Some(ci)) {
                    return Some(ci);
                }
                i += 1;
            }
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis: walks the implication graph backwards
    /// from the conflicting clause until a single literal of the current
    /// level remains, bumping every variable it visits. Returns the learnt
    /// clause (asserting literal in slot 0) and the backjump level.
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, usize) {
        let dl = self.trail_lim.len();
        let mut learnt: Vec<Lit> = vec![0];
        // Current-level literals marked but not yet expanded.
        let mut pending = 0usize;
        let mut expanded = false;
        let mut idx = self.trail.len();
        let mut c = confl;
        let uip = loop {
            // Reason clauses keep the implied literal in slot 0; skip it —
            // it is the literal being expanded.
            for j in usize::from(expanded)..self.clauses[c].len() {
                let q = self.clauses[c][j];
                let v = lit_var(q);
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= dl {
                        pending += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                idx -= 1;
                if self.seen[lit_var(self.trail[idx])] {
                    break;
                }
            }
            let p = self.trail[idx];
            self.seen[lit_var(p)] = false;
            pending -= 1;
            if pending == 0 {
                break p;
            }
            c = self.reason[lit_var(p)].expect("implied literals have reasons");
            expanded = true;
        };
        learnt[0] = neg_lit(uip);
        for &q in &learnt[1..] {
            self.seen[lit_var(q)] = false;
        }
        self.var_inc /= 0.95;
        let back = learnt[1..]
            .iter()
            .map(|&q| self.level[lit_var(q)])
            .max()
            .unwrap_or(0);
        (learnt, back)
    }

    /// Unassigns everything above decision level `back`, saving phases.
    fn backjump(&mut self, back: usize) {
        if self.trail_lim.len() <= back {
            return;
        }
        while self.trail.len() > self.trail_lim[back] {
            let l = self.trail.pop().unwrap();
            let v = lit_var(l);
            self.phase[v] = lit_sign(l);
            self.assign[v] = 0;
            self.reason[v] = None;
        }
        self.trail_lim.truncate(back);
        self.qhead = self.trail.len();
    }

    /// Installs a learnt clause (after backjumping to its second-highest
    /// level) and asserts its UIP literal, which is unit by construction.
    fn learn(&mut self, mut learnt: Vec<Lit>) {
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.enqueue(asserting, None);
            return;
        }
        // Slot 1 must watch a literal of the backjump level so the clause
        // wakes up exactly when that level is undone.
        let back = self.trail_lim.len();
        let wi = learnt[1..]
            .iter()
            .position(|&q| self.level[lit_var(q)] == back)
            .expect("some literal sits at the backjump level")
            + 1;
        learnt.swap(1, wi);
        let ci = self.clauses.len();
        self.watches[learnt[0]].push(ci);
        self.watches[learnt[1]].push(ci);
        self.clauses.push(learnt);
        self.enqueue(asserting, Some(ci));
    }

    /// Picks the unassigned variable with the highest activity and assigns
    /// its saved phase at a new decision level. Returns `false` when every
    /// variable is already assigned (the current trail is a model).
    fn decide(&mut self) -> bool {
        let mut best: Option<usize> = None;
        for v in 0..self.assign.len() {
            if self.assign[v] == 0 && best.is_none_or(|b| self.activity[v] > self.activity[b]) {
                best = Some(v);
            }
        }
        let Some(v) = best else {
            return false;
        };
        self.trail_lim.push(self.trail.len());
        let l = if self.phase[v] {
            pos(v)
        } else {
            neg_lit(pos(v))
        };
        self.enqueue(l, None);
        true
    }
}

/// Decides satisfiability of a [`Cnf`]. Returns a full assignment when
/// satisfiable, `None` when unsatisfiable.
fn dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    if cnf.contradiction {
        return None;
    }
    let n = cnf.num_vars;
    let mut s = Solver {
        clauses: Vec::with_capacity(cnf.clauses.len()),
        watches: vec![Vec::new(); 2 * n],
        assign: vec![0; n],
        level: vec![0; n],
        reason: vec![None; n],
        phase: vec![true; n],
        activity: vec![0.0; n],
        var_inc: 1.0,
        trail: Vec::new(),
        trail_lim: Vec::new(),
        qhead: 0,
        seen: vec![false; n],
    };
    let mut units: Vec<Lit> = Vec::new();
    for c in &cnf.clauses {
        match c.len() {
            0 => return None,
            1 => units.push(c[0]),
            _ => {
                let ci = s.clauses.len();
                s.clauses.push(c.clone());
                s.watches[c[0]].push(ci);
                s.watches[c[1]].push(ci);
            }
        }
    }
    // Seed activities with occurrence counts so the first decisions fall
    // on the most-constrained variables.
    for c in &s.clauses {
        for &l in c {
            s.activity[lit_var(l)] += 1.0;
        }
    }
    for &u in &units {
        if !s.enqueue(u, None) {
            return None;
        }
    }

    let mut conflicts = 0usize;
    let mut restart_at = 100usize;
    loop {
        if let Some(confl) = s.propagate() {
            if s.trail_lim.is_empty() {
                return None;
            }
            conflicts += 1;
            let (learnt, back) = s.analyze(confl);
            s.backjump(back);
            s.learn(learnt);
        } else if conflicts >= restart_at {
            // Restart: keep every learnt clause, drop the assignment
            // stack. The saved phases steer the search back quickly.
            conflicts = 0;
            restart_at += restart_at / 2;
            s.backjump(0);
        } else if !s.decide() {
            return Some(s.assign.iter().map(|&a| a == 1).collect());
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-blasting

/// A single formula bit: a constant or a CNF variable.
#[derive(Clone, Copy)]
enum Bit {
    Const(bool),
    Var(usize),
}

/// The blasting environment: what each buffer, header, and packet variable
/// means as a vector of bits. Nested (premise-verification) queries fix
/// the buffers and headers to model constants while the packet variables
/// get fresh CNF variables; the outer query does the reverse for premise
/// instantiations.
struct Env {
    buf_l: Vec<Bit>,
    buf_r: Vec<Bit>,
    /// Indexed by header id: the (left, right) bit vectors.
    headers: Vec<[Vec<Bit>; 2]>,
    /// The current formula's packet variables.
    vars: Vec<Vec<Bit>>,
}

impl Env {
    fn side_buf(&self, side: Side) -> &[Bit] {
        match side {
            Side::Left => &self.buf_l,
            Side::Right => &self.buf_r,
        }
    }
}

fn blast_expr(e: &BitExpr, env: &Env) -> Vec<Bit> {
    match e {
        BitExpr::Lit(bv) => bv.iter().map(Bit::Const).collect(),
        BitExpr::Buf(s) => env.side_buf(*s).to_vec(),
        BitExpr::Hdr(s, h) => {
            let pair = &env.headers[h.0 as usize];
            match s {
                Side::Left => pair[0].clone(),
                Side::Right => pair[1].clone(),
            }
        }
        BitExpr::Var(v) => env.vars[v.0 as usize].clone(),
        BitExpr::Slice(inner, start, len) => {
            let bits = blast_expr(inner, env);
            bits[*start..*start + *len].to_vec()
        }
        BitExpr::Concat(a, b) => {
            let mut bits = blast_expr(a, env);
            bits.extend(blast_expr(b, env));
            bits
        }
    }
}

/// Encodes `a ↔ b` for two bits, yielding a literal (with Tseitin
/// auxiliaries when both bits are variables).
fn bit_iff(a: Bit, b: Bit, cnf: &mut Cnf) -> PLit {
    match (a, b) {
        (Bit::Const(x), Bit::Const(y)) => PLit::Const(x == y),
        (Bit::Const(c), Bit::Var(v)) | (Bit::Var(v), Bit::Const(c)) => {
            PLit::Lit(if c { pos(v) } else { neg_lit(pos(v)) })
        }
        (Bit::Var(u), Bit::Var(v)) => {
            if u == v {
                return PLit::Const(true);
            }
            let t = pos(cnf.fresh());
            let (u, v) = (pos(u), pos(v));
            cnf.clause(vec![neg_lit(t), neg_lit(u), v]);
            cnf.clause(vec![neg_lit(t), u, neg_lit(v)]);
            cnf.clause(vec![t, u, v]);
            cnf.clause(vec![t, neg_lit(u), neg_lit(v)]);
            PLit::Lit(t)
        }
    }
}

/// Encodes the conjunction of `lits` as a single literal.
fn tseitin_and(lits: Vec<PLit>, cnf: &mut Cnf) -> PLit {
    let mut vars = Vec::with_capacity(lits.len());
    for l in lits {
        match l {
            PLit::Const(false) => return PLit::Const(false),
            PLit::Const(true) => {}
            PLit::Lit(l) => vars.push(l),
        }
    }
    match vars.len() {
        0 => PLit::Const(true),
        1 => PLit::Lit(vars[0]),
        _ => {
            let g = pos(cnf.fresh());
            let mut long = vec![g];
            for &l in &vars {
                cnf.clause(vec![neg_lit(g), l]);
                long.push(neg_lit(l));
            }
            cnf.clause(long);
            PLit::Lit(g)
        }
    }
}

fn tseitin_or(lits: Vec<PLit>, cnf: &mut Cnf) -> PLit {
    tseitin_and(lits.into_iter().map(PLit::negate).collect(), cnf).negate()
}

/// Tseitin-encodes a pure formula, returning the literal that is true iff
/// the formula holds.
fn blast_pure(p: &Pure, env: &Env, cnf: &mut Cnf) -> PLit {
    match p {
        Pure::Const(b) => PLit::Const(*b),
        Pure::Eq(a, b) => {
            let xa = blast_expr(a, env);
            let xb = blast_expr(b, env);
            if xa.len() != xb.len() {
                // Width mismatch cannot arise from a validated certificate;
                // mirror the reference bitvector semantics (unequal).
                return PLit::Const(false);
            }
            let bits = xa
                .into_iter()
                .zip(xb)
                .map(|(x, y)| bit_iff(x, y, cnf))
                .collect();
            tseitin_and(bits, cnf)
        }
        Pure::Not(q) => blast_pure(q, env, cnf).negate(),
        Pure::And(a, b) => {
            let la = blast_pure(a, env, cnf);
            let lb = blast_pure(b, env, cnf);
            tseitin_and(vec![la, lb], cnf)
        }
        Pure::Or(a, b) => {
            let la = blast_pure(a, env, cnf);
            let lb = blast_pure(b, env, cnf);
            tseitin_or(vec![la, lb], cnf)
        }
        Pure::Implies(a, b) => {
            let la = blast_pure(a, env, cnf);
            let lb = blast_pure(b, env, cnf);
            tseitin_or(vec![la.negate(), lb], cnf)
        }
    }
}

/// Asserts a blasted formula literal at the top level.
fn assert_plit(l: PLit, cnf: &mut Cnf) {
    match l {
        PLit::Const(true) => {}
        PLit::Const(false) => cnf.contradiction = true,
        PLit::Lit(l) => cnf.clause(vec![l]),
    }
}

// ---------------------------------------------------------------------------
// The entailment procedure

/// Allocates fresh CNF variables for a width, returning the bit vector.
fn fresh_bits(width: usize, cnf: &mut Cnf) -> Vec<Bit> {
    (0..width).map(|_| Bit::Var(cnf.fresh())).collect()
}

/// Reads a bit vector's value out of a DPLL model.
fn bits_value(bits: &[Bit], model: &[bool]) -> BitVec {
    let vals: Vec<bool> = bits
        .iter()
        .map(|b| match b {
            Bit::Const(c) => *c,
            Bit::Var(v) => model[*v],
        })
        .collect();
    BitVec::from_bits(&vals)
}

/// Freezes a bit vector to the constants of a model (for nested queries).
fn freeze(bits: &[Bit], model: &[bool]) -> Vec<Bit> {
    bits.iter()
        .map(|b| match b {
            Bit::Const(c) => Bit::Const(*c),
            Bit::Var(v) => Bit::Const(model[*v]),
        })
        .collect()
}

/// Turns concrete bitvector values into constant bit vectors.
fn const_bits(bv: &BitVec) -> Vec<Bit> {
    bv.iter().map(Bit::Const).collect()
}

/// Decides `⋀ premises ⊨ conclusion` for template-guarded relations.
/// Premises whose guard differs from the conclusion's are vacuous (guards
/// are mutually exclusive) and ignored.
pub fn entails(aut: &Automaton, premises: &[ConfRel], conclusion: &ConfRel) -> bool {
    let relevant: Vec<&ConfRel> = premises
        .iter()
        .filter(|p| p.guard == conclusion.guard)
        .collect();

    let mut cnf = Cnf::new();

    // The free variables of the validity query: buffers at the guard's
    // widths, one bitvector per (side, header), and the conclusion's
    // packet variables.
    let buf_l = fresh_bits(conclusion.guard.left.buf_len, &mut cnf);
    let buf_r = fresh_bits(conclusion.guard.right.buf_len, &mut cnf);
    let headers: Vec<[Vec<Bit>; 2]> = aut
        .header_ids()
        .map(|h| {
            let w = aut.header_size(h);
            [fresh_bits(w, &mut cnf), fresh_bits(w, &mut cnf)]
        })
        .collect();
    let concl_vars: Vec<Vec<Bit>> = conclusion
        .vars
        .iter()
        .map(|w| fresh_bits(*w, &mut cnf))
        .collect();

    // Search for a countermodel: ¬conclusion …
    let concl_env = Env {
        buf_l: buf_l.clone(),
        buf_r: buf_r.clone(),
        headers: headers.clone(),
        vars: concl_vars,
    };
    let c = blast_pure(&conclusion.phi, &concl_env, &mut cnf);
    assert_plit(c.negate(), &mut cnf);

    // … under every premise. Ground premises (no packet bits) assert
    // directly; quantified ones go through model-based instantiation.
    let mut quantified: Vec<&ConfRel> = Vec::new();
    for p in relevant {
        if p.vars.iter().sum::<usize>() == 0 {
            let env = Env {
                buf_l: buf_l.clone(),
                buf_r: buf_r.clone(),
                headers: headers.clone(),
                vars: p.vars.iter().map(|_| Vec::new()).collect(),
            };
            let l = blast_pure(&p.phi, &env, &mut cnf);
            assert_plit(l, &mut cnf);
        } else {
            quantified.push(p);
        }
    }

    loop {
        let Some(model) = dpll(&cnf) else {
            // No countermodel: the entailment holds.
            return true;
        };
        // Validate the candidate against each universally quantified
        // premise with a nested search over the premise's packet bits.
        let mut refuted = None;
        for (qi, p) in quantified.iter().enumerate() {
            let mut sub = Cnf::new();
            let env = Env {
                buf_l: freeze(&buf_l, &model),
                buf_r: freeze(&buf_r, &model),
                headers: headers
                    .iter()
                    .map(|[l, r]| [freeze(l, &model), freeze(r, &model)])
                    .collect(),
                vars: p.vars.iter().map(|w| fresh_bits(*w, &mut sub)).collect(),
            };
            let l = blast_pure(&p.phi, &env, &mut sub);
            assert_plit(l.negate(), &mut sub);
            if let Some(witness) = dpll(&sub) {
                let xs: Vec<BitVec> = env.vars.iter().map(|v| bits_value(v, &witness)).collect();
                refuted = Some((qi, xs));
                break;
            }
        }
        match refuted {
            None => {
                // Every premise holds under the model and the conclusion
                // fails: a genuine countermodel.
                return false;
            }
            Some((qi, xs)) => {
                // The candidate violates premise `qi` at packet bits `xs`:
                // learn the ground instantiation and continue. Each round
                // eliminates at least the current model, so this
                // terminates.
                let p = quantified[qi];
                let env = Env {
                    buf_l: buf_l.clone(),
                    buf_r: buf_r.clone(),
                    headers: headers.clone(),
                    vars: xs.iter().map(const_bits).collect(),
                };
                let l = blast_pure(&p.phi, &env, &mut cnf);
                assert_plit(l, &mut cnf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpll_sat_and_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        cnf.clause(vec![pos(a), pos(b)]);
        cnf.clause(vec![neg_lit(pos(a)), pos(b)]);
        let model = dpll(&cnf).expect("satisfiable");
        assert!(model[b]);
        cnf.clause(vec![neg_lit(pos(b))]);
        assert!(dpll(&cnf).is_none());
    }

    #[test]
    fn dpll_backtracks_through_chains() {
        // (a ∨ b) ∧ (¬a ∨ c) ∧ (¬c ∨ ¬b) ∧ (¬a ∨ ¬b): satisfiable.
        let mut cnf = Cnf::new();
        let a = pos(cnf.fresh());
        let b = pos(cnf.fresh());
        let c = pos(cnf.fresh());
        cnf.clause(vec![a, b]);
        cnf.clause(vec![neg_lit(a), c]);
        cnf.clause(vec![neg_lit(c), neg_lit(b)]);
        cnf.clause(vec![neg_lit(a), neg_lit(b)]);
        assert!(dpll(&cnf).is_some());
    }
}
