//! Surface syntax for P4 automata, closely following the paper's notation
//! (Figures 1, 7, 9–12).
//!
//! ```text
//! parser Reference {
//!   state q1 {
//!     extract(mpls, 32);
//!     select(mpls[23:23]) {
//!       0b0 => q1;
//!       0b1 => q2;
//!     }
//!   }
//!   state q2 {
//!     extract(udp, 64);
//!     goto accept;
//!   }
//! }
//! ```
//!
//! Headers are declared implicitly by `extract(h, n)` (as in the paper) or
//! explicitly with `header h : n;` for headers that are only assigned.
//! Literals: `0b1010` (width 4), `0x86dd` (width 16), `32w0` (explicit
//! width). In `select` patterns a bare decimal such as `(0, 1)` is widened
//! to the scrutinee's width, matching the paper's loose notation.

use std::collections::HashMap;
use std::fmt;

use leapfrog_bitvec::BitVec;

use crate::ast::{Automaton, Expr, Pattern, Target, Transition};
use crate::builder::Builder;
use crate::validate::ValidationError;

/// A parse or resolution error with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ValidationError> for ParseError {
    fn from(e: ValidationError) -> Self {
        ParseError {
            line: 0,
            col: 0,
            message: e.to_string(),
        }
    }
}

// ----- lexer -----

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u64),
    /// A literal with intrinsic width (from 0b…, 0x… or Nw… forms).
    Bits(BitVec),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Semi,
    Comma,
    Arrow,
    PlusPlus,
    Assign,
    Underscore,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Number(n) => write!(f, "number `{n}`"),
            Tok::Bits(b) => write!(f, "bit literal `{b}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Arrow => write!(f, "`=>`"),
            Tok::PlusPlus => write!(f, "`++`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::Underscore => write!(f, "`_`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_ws_and_comments();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    return Err(self.err("expected `=>` or `:=`"));
                }
            }
            b'+' => {
                self.bump();
                if self.peek() == Some(b'+') {
                    self.bump();
                    Tok::PlusPlus
                } else {
                    return Err(self.err("expected `++`"));
                }
            }
            b'_' if !self
                .peek2()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') =>
            {
                self.bump();
                Tok::Underscore
            }
            c if c.is_ascii_digit() => self.lex_number()?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok((tok, line, col))
    }

    fn lex_number(&mut self) -> Result<Tok, ParseError> {
        // 0b…, 0x…, plain decimal, or Nw<value> width literals.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'b') | Some(b'x')) {
            let base = self.peek2().unwrap();
            self.bump();
            self.bump();
            let mut bv = BitVec::new();
            let mut any = false;
            while let Some(c) = self.peek() {
                match (base, c) {
                    (b'b', b'0') => bv.push(false),
                    (b'b', b'1') => bv.push(true),
                    (_, b'_') => {}
                    (b'x', c) if c.is_ascii_hexdigit() => {
                        let nib = (c as char).to_digit(16).unwrap() as u64;
                        bv.extend(&BitVec::from_u64(nib, 4));
                    }
                    _ => break,
                }
                any = true;
                self.bump();
            }
            if !any {
                return Err(self.err("empty bit literal"));
            }
            return Ok(Tok::Bits(bv));
        }
        let mut n: u64 = 0;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add((c - b'0') as u64))
                    .ok_or_else(|| self.err("number too large"))?;
                self.bump();
            } else {
                break;
            }
        }
        // Width literal: `32w0`, `16w0x86dd`, `4w0b1010`.
        if self.peek() == Some(b'w') {
            self.bump();
            let width = n as usize;
            if width > 64 && !matches!(self.peek(), Some(b'0')) {
                return Err(self.err("width literal wider than 64 bits needs 0b/0x digits"));
            }
            let value_tok = self.lex_number()?;
            let bv = match value_tok {
                Tok::Number(v) => {
                    if width > 64 {
                        return Err(self.err("decimal width literals are limited to 64 bits"));
                    }
                    if width < 64 && v >= (1u64 << width) {
                        return Err(self.err(format!("value {v} does not fit in {width} bits")));
                    }
                    BitVec::from_u64(v, width)
                }
                Tok::Bits(bits) => {
                    if bits.len() > width {
                        return Err(
                            self.err(format!("literal has {} bits, width is {width}", bits.len()))
                        );
                    }
                    // Zero-extend on the left.
                    BitVec::zeros(width - bits.len()).concat(&bits)
                }
                _ => return Err(self.err("expected a value after width prefix")),
            };
            return Ok(Tok::Bits(bv));
        }
        Ok(Tok::Number(n))
    }
}

// ----- parser -----

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

/// Concrete syntax for a pattern, before width resolution.
#[derive(Debug, Clone)]
enum CstPat {
    Wildcard,
    Bits(BitVec),
    Number(u64),
}

#[derive(Debug, Clone)]
enum CstExpr {
    Ident(String),
    Bits(BitVec),
    Slice(Box<CstExpr>, usize, usize),
    Concat(Box<CstExpr>, Box<CstExpr>),
}

#[derive(Debug, Clone)]
enum CstOp {
    Extract(String, usize),
    Assign(String, CstExpr),
}

#[derive(Debug, Clone)]
enum CstTrans {
    Goto(String),
    Select(Vec<CstExpr>, Vec<(Vec<CstPat>, String)>),
}

struct CstState {
    name: String,
    ops: Vec<CstOp>,
    trans: CstTrans,
    line: usize,
    col: usize,
}

struct CstParser {
    name: String,
    headers: Vec<(String, usize)>,
    states: Vec<CstState>,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let (_, line, col) = &self.toks[self.pos.min(self.toks.len() - 1)];
        ParseError {
            line: *line,
            col: *col,
            message: message.into(),
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.next();
            Ok(())
        } else {
            Err(self.error_at(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.error_at(format!("expected identifier, found {other}")))
            }
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Tok::Number(n) => Ok(n),
            other => {
                self.pos -= 1;
                Err(self.error_at(format!("expected number, found {other}")))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Tok::Ident(s) if s == kw => Ok(()),
            other => {
                self.pos -= 1;
                Err(self.error_at(format!("expected `{kw}`, found {other}")))
            }
        }
    }

    fn parse_parser(&mut self) -> Result<CstParser, ParseError> {
        self.keyword("parser")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut headers = Vec::new();
        let mut states = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(kw) if kw == "header" => {
                    self.next();
                    let h = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let n = self.number()? as usize;
                    self.expect(&Tok::Semi)?;
                    headers.push((h, n));
                }
                Tok::Ident(kw) if kw == "state" => {
                    self.next();
                    states.push(self.parse_state()?);
                }
                other => {
                    return Err(
                        self.error_at(format!("expected `header`, `state` or `}}`, found {other}"))
                    )
                }
            }
        }
        Ok(CstParser {
            name,
            headers,
            states,
        })
    }

    fn parse_state(&mut self) -> Result<CstState, ParseError> {
        let (_, line, col) = self.toks[self.pos.min(self.toks.len() - 1)];
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut ops = Vec::new();
        let trans;
        loop {
            match self.peek().clone() {
                Tok::Ident(kw) if kw == "extract" => {
                    self.next();
                    self.expect(&Tok::LParen)?;
                    let h = self.ident()?;
                    self.expect(&Tok::Comma)?;
                    let n = self.number()? as usize;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::Semi)?;
                    ops.push(CstOp::Extract(h, n));
                }
                Tok::Ident(kw) if kw == "goto" => {
                    self.next();
                    let t = self.ident()?;
                    if self.peek() == &Tok::Semi {
                        self.next();
                    }
                    trans = CstTrans::Goto(t);
                    break;
                }
                Tok::Ident(kw) if kw == "select" => {
                    self.next();
                    trans = self.parse_select()?;
                    break;
                }
                Tok::Ident(_) => {
                    // Assignment: h := expr ;
                    let h = self.ident()?;
                    self.expect(&Tok::Assign)?;
                    let e = self.parse_expr()?;
                    self.expect(&Tok::Semi)?;
                    ops.push(CstOp::Assign(h, e));
                }
                other => {
                    return Err(self.error_at(format!(
                        "expected an operation or transition, found {other}"
                    )))
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(CstState {
            name,
            ops,
            trans,
            line,
            col,
        })
    }

    fn parse_select(&mut self) -> Result<CstTrans, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut exprs = vec![self.parse_expr()?];
        while self.peek() == &Tok::Comma {
            self.next();
            exprs.push(self.parse_expr()?);
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        while self.peek() != &Tok::RBrace {
            let pats = self.parse_pattern_tuple(exprs.len())?;
            self.expect(&Tok::Arrow)?;
            // Allow an optional `goto` keyword before the target, as used
            // in the paper's appendix figures.
            if matches!(self.peek(), Tok::Ident(k) if k == "goto") {
                self.next();
            }
            let target = self.ident()?;
            if matches!(self.peek(), Tok::Semi | Tok::Comma) {
                self.next();
            }
            cases.push((pats, target));
        }
        self.expect(&Tok::RBrace)?;
        Ok(CstTrans::Select(exprs, cases))
    }

    fn parse_pattern_tuple(&mut self, arity: usize) -> Result<Vec<CstPat>, ParseError> {
        if self.peek() == &Tok::LParen {
            self.next();
            let mut pats = vec![self.parse_pattern()?];
            while self.peek() == &Tok::Comma {
                self.next();
                pats.push(self.parse_pattern()?);
            }
            self.expect(&Tok::RParen)?;
            Ok(pats)
        } else {
            let p = self.parse_pattern()?;
            if arity != 1 {
                return Err(self.error_at(format!(
                    "select has {arity} scrutinees; parenthesize the pattern tuple"
                )));
            }
            Ok(vec![p])
        }
    }

    fn parse_pattern(&mut self) -> Result<CstPat, ParseError> {
        match self.next() {
            Tok::Underscore => Ok(CstPat::Wildcard),
            Tok::Bits(bv) => Ok(CstPat::Bits(bv)),
            Tok::Number(n) => Ok(CstPat::Number(n)),
            other => {
                self.pos -= 1;
                Err(self.error_at(format!("expected a pattern, found {other}")))
            }
        }
    }

    fn parse_expr(&mut self) -> Result<CstExpr, ParseError> {
        let mut e = self.parse_atom()?;
        while self.peek() == &Tok::PlusPlus {
            self.next();
            let rhs = self.parse_atom()?;
            e = CstExpr::Concat(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_atom(&mut self) -> Result<CstExpr, ParseError> {
        let mut e = match self.next() {
            Tok::Ident(s) => CstExpr::Ident(s),
            Tok::Bits(bv) => CstExpr::Bits(bv),
            Tok::LParen => {
                let inner = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                inner
            }
            other => {
                self.pos -= 1;
                return Err(self.error_at(format!("expected an expression, found {other}")));
            }
        };
        while self.peek() == &Tok::LBracket {
            self.next();
            let n1 = self.number()? as usize;
            self.expect(&Tok::Colon)?;
            let n2 = self.number()? as usize;
            self.expect(&Tok::RBracket)?;
            e = CstExpr::Slice(Box::new(e), n1, n2);
        }
        Ok(e)
    }
}

// ----- resolution -----

/// Parses a parser declaration into a validated [`Automaton`].
///
/// The first declared state is the conventional start state; retrieve
/// others with [`Automaton::state_by_name`].
pub fn parse(src: &str) -> Result<Automaton, ParseError> {
    let (aut, _) = parse_named(src)?;
    Ok(aut)
}

/// Like [`parse`], also returning the parser's declared name.
pub fn parse_named(src: &str) -> Result<(Automaton, String), ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let t = lexer.next_token()?;
        let eof = t.0 == Tok::Eof;
        toks.push(t);
        if eof {
            break;
        }
    }
    let mut p = Parser { toks, pos: 0 };
    let cst = p.parse_parser()?;
    if p.peek() != &Tok::Eof {
        return Err(p.error_at(format!("trailing input: {}", p.peek())));
    }
    let name = cst.name.clone();
    let aut = resolve(cst)?;
    Ok((aut, name))
}

fn resolve(cst: CstParser) -> Result<Automaton, ParseError> {
    let mut b = Builder::new();
    // Header sizes: explicit declarations first, then inference from
    // extracts (checking consistency).
    let mut sizes: HashMap<String, usize> = HashMap::new();
    for (h, n) in &cst.headers {
        sizes.insert(h.clone(), *n);
    }
    for st in &cst.states {
        for op in &st.ops {
            if let CstOp::Extract(h, n) = op {
                match sizes.get(h) {
                    Some(&m) if m != *n => {
                        return Err(ParseError {
                            line: st.line,
                            col: st.col,
                            message: format!(
                                "header {h} extracted with size {n} but declared/used with {m}"
                            ),
                        });
                    }
                    _ => {
                        sizes.insert(h.clone(), *n);
                    }
                }
            }
        }
    }
    let mut header_ids = HashMap::new();
    let mut names: Vec<&String> = sizes.keys().collect();
    names.sort();
    for h in names {
        header_ids.insert(h.clone(), b.header(h.clone(), sizes[h]));
    }

    // Declare all states up front for forward references.
    for st in &cst.states {
        b.state(st.name.clone());
    }

    let resolve_target =
        |b: &mut Builder, name: &str, st: &CstState| -> Result<Target, ParseError> {
            match name {
                "accept" => Ok(Target::Accept),
                "reject" => Ok(Target::Reject),
                other => {
                    if cst.states.iter().any(|s| s.name == other) {
                        Ok(Target::State(b.state(other.to_string())))
                    } else {
                        Err(ParseError {
                            line: st.line,
                            col: st.col,
                            message: format!("unknown state `{other}`"),
                        })
                    }
                }
            }
        };

    for st in &cst.states {
        let q = b.state(st.name.clone());
        let mut ops = Vec::new();
        for op in &st.ops {
            match op {
                CstOp::Extract(h, _) => ops.push(crate::ast::Op::Extract(header_ids[h])),
                CstOp::Assign(h, e) => {
                    let h = *header_ids.get(h).ok_or_else(|| ParseError {
                        line: st.line,
                        col: st.col,
                        message: format!(
                            "header {h} is assigned but never extracted or declared; \
                             add `header {h} : <width>;`"
                        ),
                    })?;
                    ops.push(crate::ast::Op::Assign(h, resolve_expr(e, &header_ids, st)?));
                }
            }
        }
        let trans = match &st.trans {
            CstTrans::Goto(t) => {
                let t = resolve_target(&mut b, t, st)?;
                Transition::Goto(t)
            }
            CstTrans::Select(cexprs, cases) => {
                let exprs: Vec<Expr> = cexprs
                    .iter()
                    .map(|e| resolve_expr(e, &header_ids, st))
                    .collect::<Result<_, _>>()?;
                let widths: Vec<usize> = cexprs.iter().map(|e| cst_expr_width(e, &sizes)).collect();
                let mut out_cases = Vec::new();
                for (pats, tname) in cases {
                    if pats.len() != exprs.len() {
                        return Err(ParseError {
                            line: st.line,
                            col: st.col,
                            message: format!(
                                "pattern tuple has {} entries for {} scrutinees",
                                pats.len(),
                                exprs.len()
                            ),
                        });
                    }
                    let target = resolve_target(&mut b, tname, st)?;
                    let pats = pats
                        .iter()
                        .zip(&widths)
                        .map(|(p, &w)| match p {
                            CstPat::Wildcard => Ok(Pattern::Wildcard),
                            CstPat::Bits(bv) => Ok(Pattern::Exact(bv.clone())),
                            CstPat::Number(n) => {
                                // Bare numbers take the scrutinee's width.
                                if w > 64 || (w < 64 && *n >= (1u64 << w)) {
                                    return Err(ParseError {
                                        line: st.line,
                                        col: st.col,
                                        message: format!(
                                            "numeric pattern {n} does not fit scrutinee \
                                             width {w}; use a 0b/0x literal"
                                        ),
                                    });
                                }
                                Ok(Pattern::Exact(BitVec::from_u64(*n, w)))
                            }
                        })
                        .collect::<Result<Vec<_>, ParseError>>()?;
                    out_cases.push((pats, target));
                }
                Transition::Select {
                    exprs,
                    cases: out_cases
                        .into_iter()
                        .map(|(pats, target)| crate::ast::Case { pats, target })
                        .collect(),
                }
            }
        };
        b.define(q, ops, trans);
    }
    b.build().map_err(ParseError::from)
}

/// The static width of a CST expression, given header sizes. Unknown
/// headers contribute width 0 here; they are reported properly during
/// expression resolution.
fn cst_expr_width(e: &CstExpr, sizes: &HashMap<String, usize>) -> usize {
    match e {
        CstExpr::Ident(h) => sizes.get(h).copied().unwrap_or(0),
        CstExpr::Bits(bv) => bv.len(),
        CstExpr::Slice(inner, n1, n2) => {
            crate::ast::clamped_slice_width(cst_expr_width(inner, sizes), *n1, *n2)
        }
        CstExpr::Concat(a, b) => cst_expr_width(a, sizes) + cst_expr_width(b, sizes),
    }
}

fn resolve_expr(
    e: &CstExpr,
    headers: &HashMap<String, crate::ast::HeaderId>,
    st: &CstState,
) -> Result<Expr, ParseError> {
    match e {
        CstExpr::Ident(h) => headers
            .get(h)
            .map(|&h| Expr::Hdr(h))
            .ok_or_else(|| ParseError {
                line: st.line,
                col: st.col,
                message: format!("unknown header `{h}`"),
            }),
        CstExpr::Bits(bv) => Ok(Expr::Lit(bv.clone())),
        CstExpr::Slice(inner, n1, n2) => {
            Ok(Expr::slice(resolve_expr(inner, headers, st)?, *n1, *n2))
        }
        CstExpr::Concat(a, b) => Ok(Expr::concat(
            resolve_expr(a, headers, st)?,
            resolve_expr(b, headers, st)?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::Config;

    const MPLS_REF: &str = r#"
        parser Reference {
          state q1 {
            extract(mpls, 32);
            select(mpls[23:23]) {
              0b0 => q1;
              0b1 => q2;
            }
          }
          state q2 {
            extract(udp, 64);
            goto accept;
          }
        }
    "#;

    #[test]
    fn parses_reference_mpls() {
        let (aut, name) = parse_named(MPLS_REF).unwrap();
        assert_eq!(name, "Reference");
        assert_eq!(aut.num_states(), 2);
        assert_eq!(aut.num_headers(), 2);
        let q1 = aut.state_by_name("q1").unwrap();
        assert_eq!(aut.op_size(q1), 32);
        let mut pkt = BitVec::zeros(96);
        pkt.set(23, true);
        assert!(Config::initial(&aut, q1).accepts(&aut, &pkt));
    }

    #[test]
    fn parses_hex_and_width_literals() {
        let src = r#"
          parser P {
            header vlan : 32;
            state s {
              extract(eth, 16);
              vlan := 32w0;
              select(eth[0:15]) {
                0x86dd => accept;
                16w1 => reject;
                _ => reject;
              }
            }
          }
        "#;
        let aut = parse(src).unwrap();
        let s = aut.state_by_name("s").unwrap();
        match &aut.state(s).trans {
            Transition::Select { cases, .. } => {
                assert_eq!(
                    cases[0].pats[0],
                    Pattern::Exact("1000011011011101".parse().unwrap())
                );
                assert_eq!(cases[1].pats[0], Pattern::Exact(BitVec::from_u64(1, 16)));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_tuple_patterns_and_multi_scrutinee() {
        let src = r#"
          parser P {
            state s {
              extract(a, 2);
              extract(c, 2);
              select(a, c) {
                (0b00, 0b01) => accept;
                (_, _) => reject;
              }
            }
          }
        "#;
        let aut = parse(src).unwrap();
        let s = aut.state_by_name("s").unwrap();
        let w: BitVec = "0001".parse().unwrap();
        assert!(Config::initial(&aut, s).accepts(&aut, &w));
        let w2: BitVec = "0011".parse().unwrap();
        assert!(!Config::initial(&aut, s).accepts(&aut, &w2));
    }

    #[test]
    fn rejects_unknown_state_and_header() {
        let src = r#"
          parser P { state s { extract(a, 2); goto nowhere; } }
        "#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("unknown state"));
        let src2 = r#"
          parser P { state s { extract(a, 2); b := a; goto accept; } }
        "#;
        let e2 = parse(src2).unwrap_err();
        assert!(e2.message.contains("never extracted"));
    }

    #[test]
    fn rejects_inconsistent_extract_sizes() {
        let src = r#"
          parser P {
            state s { extract(a, 2); goto t; }
            state t { extract(a, 4); goto accept; }
          }
        "#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("size"));
    }

    #[test]
    fn comments_and_goto_in_cases() {
        let src = r#"
          parser P { // top comment
            state s {
              extract(a, 2); // extract two bits
              select(a) {
                0b00 => goto accept;
                _ => reject;
              }
            }
          }
        "#;
        let aut = parse(src).unwrap();
        let s = aut.state_by_name("s").unwrap();
        assert!(Config::initial(&aut, s).accepts(&aut, &"00".parse().unwrap()));
    }

    #[test]
    fn lexer_position_in_errors() {
        let e = parse("parser P {\n  state s {\n    extract(a 2);\n  }\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn underscore_prefixed_identifiers_are_idents() {
        let src = r#"
          parser P {
            state s {
              extract(_tmp, 2);
              goto accept;
            }
          }
        "#;
        let aut = parse(src).unwrap();
        assert!(aut.header_by_name("_tmp").is_some());
    }
}
