//! The typing judgement `⊢A` (paper, §3.2): well-formedness of automata.
//!
//! Validation guarantees exactly the properties the semantics and the
//! equivalence checker rely on:
//!
//! * every state extracts at least one bit (`‖op(q)‖ > 0`), which makes the
//!   step function total and the parsing process terminating (footnote 4);
//! * every assignment's right-hand side has the assigned header's width
//!   (`⊢O`);
//! * every `select` case has one pattern per scrutinee, and exact patterns
//!   have the scrutinee's width (`⊢T`) — so `JtzK_T` is always defined;
//! * all referenced headers and states exist.

use std::fmt;

#[cfg(test)]
use crate::ast::Expr;
use crate::ast::{Automaton, HeaderId, Op, Pattern, StateId, Transition};

/// A violation of the `⊢A` judgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A state was referenced but never defined.
    UndefinedState(String),
    /// A state consumes no packet bits.
    NoExtract(String),
    /// An assignment's right-hand side width differs from the header size.
    AssignWidthMismatch {
        /// State containing the assignment.
        state: String,
        /// Assigned header.
        header: String,
        /// Header size.
        expected: usize,
        /// Right-hand side width.
        found: usize,
    },
    /// A select case has the wrong number of patterns.
    CaseArityMismatch {
        /// State containing the select.
        state: String,
        /// Number of scrutinee expressions.
        exprs: usize,
        /// Number of patterns in the offending case.
        pats: usize,
    },
    /// An exact pattern's width differs from its scrutinee's width.
    PatternWidthMismatch {
        /// State containing the select.
        state: String,
        /// Scrutinee width.
        expected: usize,
        /// Pattern width.
        found: usize,
    },
    /// A select scrutinee has width zero (cannot branch on nothing).
    EmptyScrutinee(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UndefinedState(n) => write!(f, "state {n} is never defined"),
            ValidationError::NoExtract(n) => {
                write!(
                    f,
                    "state {n} extracts no bits; every state must make progress"
                )
            }
            ValidationError::AssignWidthMismatch {
                state,
                header,
                expected,
                found,
            } => write!(
                f,
                "in state {state}: assignment to {header} has width {found}, expected {expected}"
            ),
            ValidationError::CaseArityMismatch { state, exprs, pats } => write!(
                f,
                "in state {state}: select case has {pats} patterns for {exprs} scrutinees"
            ),
            ValidationError::PatternWidthMismatch {
                state,
                expected,
                found,
            } => write!(
                f,
                "in state {state}: exact pattern has width {found}, scrutinee has width {expected}"
            ),
            ValidationError::EmptyScrutinee(n) => {
                write!(f, "in state {n}: select scrutinee has width zero")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks `⊢A aut`.
pub fn validate(aut: &Automaton) -> Result<(), ValidationError> {
    for q in aut.state_ids() {
        validate_state(aut, q)?;
    }
    Ok(())
}

fn validate_state(aut: &Automaton, q: StateId) -> Result<(), ValidationError> {
    let st = aut.state(q);
    if aut.op_size(q) == 0 {
        return Err(ValidationError::NoExtract(st.name.clone()));
    }
    for op in &st.ops {
        if let Op::Assign(h, e) = op {
            let expected = aut.header_size(*h);
            let found = e.width(aut);
            if expected != found {
                return Err(ValidationError::AssignWidthMismatch {
                    state: st.name.clone(),
                    header: aut.header_name(*h).to_string(),
                    expected,
                    found,
                });
            }
        }
    }
    if let Transition::Select { exprs, cases } = &st.trans {
        let widths: Vec<usize> = exprs.iter().map(|e| e.width(aut)).collect();
        for (i, w) in widths.iter().enumerate() {
            if *w == 0 {
                let _ = i;
                return Err(ValidationError::EmptyScrutinee(st.name.clone()));
            }
        }
        for case in cases {
            if case.pats.len() != exprs.len() {
                return Err(ValidationError::CaseArityMismatch {
                    state: st.name.clone(),
                    exprs: exprs.len(),
                    pats: case.pats.len(),
                });
            }
            for (pat, w) in case.pats.iter().zip(&widths) {
                if let Pattern::Exact(bv) = pat {
                    if bv.len() != *w {
                        return Err(ValidationError::PatternWidthMismatch {
                            state: st.name.clone(),
                            expected: *w,
                            found: bv.len(),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Returns all headers read or written by the automaton's states — useful
/// for dead-header diagnostics in tooling.
pub fn used_headers(aut: &Automaton) -> Vec<HeaderId> {
    let mut out = Vec::new();
    for q in aut.state_ids() {
        let st = aut.state(q);
        for op in &st.ops {
            match op {
                Op::Extract(h) => {
                    if !out.contains(h) {
                        out.push(*h);
                    }
                }
                Op::Assign(h, e) => {
                    if !out.contains(h) {
                        out.push(*h);
                    }
                    e.headers(&mut out);
                }
            }
        }
        if let Transition::Select { exprs, .. } = &st.trans {
            for e in exprs {
                e.headers(&mut out);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Target;
    use crate::builder::Builder;

    #[test]
    fn rejects_state_without_extract() {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let q = b.state("q");
        b.define(
            q,
            vec![b.assign(h, Expr::lit_str("0000"))],
            b.goto(Target::Accept),
        );
        assert!(matches!(b.build(), Err(ValidationError::NoExtract(_))));
    }

    #[test]
    fn rejects_assign_width_mismatch() {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let q = b.state("q");
        b.define(
            q,
            vec![b.extract(h), b.assign(h, Expr::lit_str("000"))],
            b.goto(Target::Accept),
        );
        assert!(matches!(
            b.build(),
            Err(ValidationError::AssignWidthMismatch {
                expected: 4,
                found: 3,
                ..
            })
        ));
    }

    #[test]
    fn rejects_pattern_width_mismatch() {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let q = b.state("q");
        b.define(
            q,
            vec![b.extract(h)],
            b.select1(Expr::hdr(h), vec![("101", Target::Accept)]),
        );
        assert!(matches!(
            b.build(),
            Err(ValidationError::PatternWidthMismatch {
                expected: 4,
                found: 3,
                ..
            })
        ));
    }

    #[test]
    fn rejects_case_arity_mismatch() {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let q = b.state("q");
        b.define(
            q,
            vec![b.extract(h)],
            b.select(
                vec![Expr::hdr(h), Expr::hdr(h)],
                vec![(vec![Pattern::Wildcard], Target::Accept)],
            ),
        );
        assert!(matches!(
            b.build(),
            Err(ValidationError::CaseArityMismatch { .. })
        ));
    }

    #[test]
    fn accepts_wellformed_and_clamped_slices() {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let q = b.state("q");
        // Clamped slice h[2:100] has width 2; pattern must be 2 bits wide.
        b.define(
            q,
            vec![b.extract(h)],
            b.select1(
                Expr::slice(Expr::hdr(h), 2, 100),
                vec![("10", Target::Accept)],
            ),
        );
        assert!(b.build().is_ok());
    }

    #[test]
    fn used_headers_reports_reads_and_writes() {
        let mut b = Builder::new();
        let a = b.header("a", 2);
        let c = b.header("c", 2);
        let dead = b.header("dead", 2);
        let q = b.state("q");
        b.define(
            q,
            vec![b.extract(a), b.assign(c, Expr::hdr(a))],
            b.goto(Target::Accept),
        );
        let aut = b.build().unwrap();
        let used = used_headers(&aut);
        assert!(used.contains(&a));
        assert!(used.contains(&c));
        assert!(!used.contains(&dead));
    }
}
