//! Disjoint sums of P4 automata (paper, §4: "One can compare configurations
//! in two different P4As by taking their disjoint sum, renaming states and
//! headers as necessary").

use crate::ast::{Automaton, Case, Expr, HeaderId, Op, StateId, Target, Transition};

/// The result of summing two automata: the combined automaton plus the
/// injections from each operand's identifiers.
#[derive(Debug, Clone)]
pub struct Sum {
    /// The combined automaton.
    pub automaton: Automaton,
    /// Maps a left-operand state to its id in the sum.
    pub left_states: Vec<StateId>,
    /// Maps a right-operand state to its id in the sum.
    pub right_states: Vec<StateId>,
    /// Maps a left-operand header to its id in the sum.
    pub left_headers: Vec<HeaderId>,
    /// Maps a right-operand header to its id in the sum.
    pub right_headers: Vec<HeaderId>,
}

impl Sum {
    /// The sum id of a left state.
    pub fn left_state(&self, q: StateId) -> StateId {
        self.left_states[q.0 as usize]
    }

    /// The sum id of a right state.
    pub fn right_state(&self, q: StateId) -> StateId {
        self.right_states[q.0 as usize]
    }

    /// Whether a sum state originates from the left operand.
    pub fn is_left_state(&self, q: StateId) -> bool {
        self.left_states.contains(&q)
    }
}

/// Builds the disjoint sum of `left` and `right`. States and headers are
/// prefixed `l.` and `r.` to keep names unique.
pub fn sum(left: &Automaton, right: &Automaton) -> Sum {
    let mut headers = Vec::with_capacity(left.num_headers() + right.num_headers());
    let left_headers: Vec<HeaderId> = left
        .header_ids()
        .map(|h| {
            let id = HeaderId(headers.len() as u32);
            headers.push(crate::ast::HeaderDef {
                name: format!("l.{}", left.header_name(h)),
                size: left.header_size(h),
            });
            id
        })
        .collect();
    let right_headers: Vec<HeaderId> = right
        .header_ids()
        .map(|h| {
            let id = HeaderId(headers.len() as u32);
            headers.push(crate::ast::HeaderDef {
                name: format!("r.{}", right.header_name(h)),
                size: right.header_size(h),
            });
            id
        })
        .collect();

    let left_states: Vec<StateId> = left.state_ids().map(|q| StateId(q.0)).collect();
    let right_states: Vec<StateId> = right
        .state_ids()
        .map(|q| StateId(q.0 + left.num_states() as u32))
        .collect();

    let mut states = Vec::with_capacity(left.num_states() + right.num_states());
    for q in left.state_ids() {
        states.push(remap_state(left, q, "l.", &left_headers, &left_states));
    }
    for q in right.state_ids() {
        states.push(remap_state(right, q, "r.", &right_headers, &right_states));
    }

    Sum {
        automaton: Automaton { headers, states },
        left_states,
        right_states,
        left_headers,
        right_headers,
    }
}

fn remap_state(
    aut: &Automaton,
    q: StateId,
    prefix: &str,
    hmap: &[HeaderId],
    smap: &[StateId],
) -> crate::ast::StateDef {
    let st = aut.state(q);
    let remap_target = |t: Target| match t {
        Target::State(s) => Target::State(smap[s.0 as usize]),
        other => other,
    };
    crate::ast::StateDef {
        name: format!("{prefix}{}", st.name),
        ops: st
            .ops
            .iter()
            .map(|op| match op {
                Op::Extract(h) => Op::Extract(hmap[h.0 as usize]),
                Op::Assign(h, e) => Op::Assign(hmap[h.0 as usize], remap_expr(e, hmap)),
            })
            .collect(),
        trans: match &st.trans {
            Transition::Goto(t) => Transition::Goto(remap_target(*t)),
            Transition::Select { exprs, cases } => Transition::Select {
                exprs: exprs.iter().map(|e| remap_expr(e, hmap)).collect(),
                cases: cases
                    .iter()
                    .map(|c| Case {
                        pats: c.pats.clone(),
                        target: remap_target(c.target),
                    })
                    .collect(),
            },
        },
    }
}

fn remap_expr(e: &Expr, hmap: &[HeaderId]) -> Expr {
    match e {
        Expr::Hdr(h) => Expr::Hdr(hmap[h.0 as usize]),
        Expr::Lit(bv) => Expr::Lit(bv.clone()),
        Expr::Slice(inner, n1, n2) => Expr::slice(remap_expr(inner, hmap), *n1, *n2),
        Expr::Concat(a, b) => Expr::concat(remap_expr(a, hmap), remap_expr(b, hmap)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::semantics::Config;
    use leapfrog_bitvec::BitVec;

    fn tiny(name_prefix: &str, accept_on: &str) -> Automaton {
        let mut b = Builder::new();
        let h = b.header(format!("{name_prefix}h"), 2);
        let q = b.state(format!("{name_prefix}q"));
        b.define(
            q,
            vec![b.extract(h)],
            b.select1(Expr::hdr(h), vec![(accept_on, Target::Accept)]),
        );
        b.build().unwrap()
    }

    #[test]
    fn sum_preserves_both_languages() {
        let a = tiny("a_", "10");
        let b = tiny("b_", "01");
        let s = sum(&a, &b);
        let la = s.left_state(StateId(0));
        let rb = s.right_state(StateId(0));
        let w10: BitVec = "10".parse().unwrap();
        let w01: BitVec = "01".parse().unwrap();
        assert!(Config::initial(&s.automaton, la).accepts(&s.automaton, &w10));
        assert!(!Config::initial(&s.automaton, la).accepts(&s.automaton, &w01));
        assert!(Config::initial(&s.automaton, rb).accepts(&s.automaton, &w01));
        assert!(!Config::initial(&s.automaton, rb).accepts(&s.automaton, &w10));
    }

    #[test]
    fn sum_renames_and_counts() {
        let a = tiny("a_", "10");
        let b = tiny("b_", "01");
        let s = sum(&a, &b);
        assert_eq!(s.automaton.num_states(), 2);
        assert_eq!(s.automaton.num_headers(), 2);
        assert_eq!(s.automaton.state_name(s.left_state(StateId(0))), "l.a_q");
        assert_eq!(s.automaton.state_name(s.right_state(StateId(0))), "r.b_q");
        assert!(s.is_left_state(s.left_state(StateId(0))));
        assert!(!s.is_left_state(s.right_state(StateId(0))));
    }

    #[test]
    fn sum_validates() {
        let a = tiny("a_", "10");
        let b = tiny("b_", "01");
        let s = sum(&a, &b);
        assert!(crate::validate::validate(&s.automaton).is_ok());
    }
}
