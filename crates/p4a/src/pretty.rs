//! Pretty-printing of P4 automata back into the surface syntax.
//!
//! The printer and [`crate::surface::parse`] round-trip:
//! `parse(pretty(aut))` yields an automaton equal to `aut` up to header
//! ordering (the parser sorts headers by name).

use std::fmt::Write as _;

use crate::ast::{Automaton, Expr, Op, Pattern, Target, Transition};

/// Renders `aut` as a `parser <name> { … }` declaration.
pub fn pretty(aut: &Automaton, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "parser {name} {{");
    // Emit explicit declarations for headers that are never extracted
    // (assigned-only headers cannot be inferred by the parser).
    let extracted: Vec<_> = aut
        .state_ids()
        .flat_map(|q| aut.state(q).ops.iter())
        .filter_map(|op| match op {
            Op::Extract(h) => Some(*h),
            Op::Assign(_, _) => None,
        })
        .collect();
    for h in aut.header_ids() {
        if !extracted.contains(&h) {
            let _ = writeln!(
                out,
                "  header {} : {};",
                aut.header_name(h),
                aut.header_size(h)
            );
        }
    }
    for q in aut.state_ids() {
        let st = aut.state(q);
        let _ = writeln!(out, "  state {} {{", st.name);
        for op in &st.ops {
            match op {
                Op::Extract(h) => {
                    let _ = writeln!(
                        out,
                        "    extract({}, {});",
                        aut.header_name(*h),
                        aut.header_size(*h)
                    );
                }
                Op::Assign(h, e) => {
                    let _ = writeln!(
                        out,
                        "    {} := {};",
                        aut.header_name(*h),
                        pretty_expr(aut, e)
                    );
                }
            }
        }
        match &st.trans {
            Transition::Goto(t) => {
                let _ = writeln!(out, "    goto {};", target_name(aut, *t));
            }
            Transition::Select { exprs, cases } => {
                let scrutinees: Vec<String> = exprs.iter().map(|e| pretty_expr(aut, e)).collect();
                let _ = writeln!(out, "    select({}) {{", scrutinees.join(", "));
                for case in cases {
                    let pats: Vec<String> = case.pats.iter().map(pretty_pattern).collect();
                    let tuple = if pats.len() == 1 {
                        pats.into_iter().next().unwrap()
                    } else {
                        format!("({})", pats.join(", "))
                    };
                    let _ = writeln!(out, "      {tuple} => {};", target_name(aut, case.target));
                }
                let _ = writeln!(out, "    }}");
            }
        }
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

fn target_name(aut: &Automaton, t: Target) -> String {
    aut.target_name(t)
}

/// Renders an expression.
pub fn pretty_expr(aut: &Automaton, e: &Expr) -> String {
    match e {
        Expr::Hdr(h) => aut.header_name(*h).to_string(),
        Expr::Lit(bv) if bv.is_empty() => "0w0".to_string(),
        Expr::Lit(bv) => format!("0b{bv}"),
        Expr::Slice(inner, n1, n2) => {
            let base = match **inner {
                Expr::Concat(_, _) => format!("({})", pretty_expr(aut, inner)),
                _ => pretty_expr(aut, inner),
            };
            format!("{base}[{n1}:{n2}]")
        }
        Expr::Concat(a, b) => {
            format!("{} ++ {}", pretty_expr(aut, a), pretty_expr(aut, b))
        }
    }
}

fn pretty_pattern(p: &Pattern) -> String {
    match p {
        Pattern::Exact(bv) => format!("0b{bv}"),
        Pattern::Wildcard => "_".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::surface;

    fn sample() -> Automaton {
        let mut b = Builder::new();
        let mpls = b.header("mpls", 32);
        let udp = b.header("udp", 64);
        let extra = b.header("scratch", 64);
        let q1 = b.state("q1");
        let q2 = b.state("q2");
        b.define(
            q1,
            vec![b.extract(mpls)],
            b.select(
                vec![Expr::slice(Expr::hdr(mpls), 23, 23)],
                vec![
                    (vec![Pattern::exact_str("0")], Target::State(q1)),
                    (vec![Pattern::exact_str("1")], Target::State(q2)),
                ],
            ),
        );
        b.define(
            q2,
            vec![
                b.extract(udp),
                b.assign(
                    extra,
                    Expr::concat(Expr::hdr(udp), Expr::Lit(Default::default())),
                ),
            ],
            b.goto(Target::Accept),
        );
        // scratch := udp ++ ε has width 64, matching scratch.
        b.build().unwrap()
    }

    #[test]
    fn roundtrips_through_parser() {
        let aut = sample();
        let text = pretty(&aut, "Sample");
        let (reparsed, name) = surface::parse_named(&text).unwrap();
        assert_eq!(name, "Sample");
        assert_eq!(reparsed.num_states(), aut.num_states());
        assert_eq!(reparsed.num_headers(), aut.num_headers());
        // Semantic round-trip: same op sizes and state names.
        for q in aut.state_ids() {
            let q2 = reparsed.state_by_name(aut.state_name(q)).unwrap();
            assert_eq!(aut.op_size(q), reparsed.op_size(q2));
        }
        // And printing again is a fixpoint.
        assert_eq!(text, pretty(&reparsed, "Sample"));
    }

    #[test]
    fn declares_assign_only_headers() {
        let mut b = Builder::new();
        let a = b.header("a", 4);
        let ghost = b.header("ghost", 4);
        let q = b.state("q");
        b.define(
            q,
            vec![b.extract(a), b.assign(ghost, Expr::hdr(a))],
            b.goto(Target::Accept),
        );
        let aut = b.build().unwrap();
        let text = pretty(&aut, "P");
        assert!(text.contains("header ghost : 4;"));
        assert!(surface::parse(&text).is_ok());
    }
}
