//! Abstract syntax of P4 automata (paper, Figure 2).

use leapfrog_bitvec::BitVec;

/// A header identifier: an index into an automaton's header table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeaderId(pub u32);

/// A state identifier: an index into an automaton's state table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// A transition target: a proper state, or the distinguished `accept` /
/// `reject` pseudo-states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Target {
    /// A proper state `q ∈ Q`.
    State(StateId),
    /// The accepting pseudo-state.
    Accept,
    /// The rejecting pseudo-state.
    Reject,
}

impl Target {
    /// Whether this is a proper state.
    pub fn is_state(self) -> bool {
        matches!(self, Target::State(_))
    }
}

/// A bitvector expression over the store (paper, Figure 2: `e`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// The contents of a header.
    Hdr(HeaderId),
    /// A bitvector literal.
    Lit(BitVec),
    /// The paper's clamped slice `e[n1:n2]` (inclusive, indices clamped to
    /// the operand width minus one; see Definition 3.1).
    Slice(Box<Expr>, usize, usize),
    /// Concatenation `e1 ++ e2`.
    Concat(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A header reference.
    pub fn hdr(h: HeaderId) -> Expr {
        Expr::Hdr(h)
    }

    /// A literal.
    pub fn lit(bv: BitVec) -> Expr {
        Expr::Lit(bv)
    }

    /// A literal parsed from a binary string (for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a binary string.
    pub fn lit_str(s: &str) -> Expr {
        Expr::Lit(s.parse().expect("invalid binary literal"))
    }

    /// The clamped slice `e[n1:n2]`.
    pub fn slice(e: Expr, n1: usize, n2: usize) -> Expr {
        Expr::Slice(Box::new(e), n1, n2)
    }

    /// Concatenation.
    pub fn concat(a: Expr, b: Expr) -> Expr {
        Expr::Concat(Box::new(a), Box::new(b))
    }

    /// Concatenates several expressions left to right.
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator.
    pub fn concat_all(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = parts.into_iter();
        let first = it.next().expect("concat_all needs at least one expression");
        it.fold(first, Expr::concat)
    }

    /// The static width of the expression given header sizes (the typing
    /// judgement `⊢E e : n`). Clamped slices resolve statically because all
    /// widths are static.
    pub fn width(&self, aut: &Automaton) -> usize {
        match self {
            Expr::Hdr(h) => aut.header_size(*h),
            Expr::Lit(bv) => bv.len(),
            Expr::Slice(e, n1, n2) => clamped_slice_width(e.width(aut), *n1, *n2),
            Expr::Concat(a, b) => a.width(aut) + b.width(aut),
        }
    }

    /// All headers mentioned by the expression.
    pub fn headers(&self, out: &mut Vec<HeaderId>) {
        match self {
            Expr::Hdr(h) => {
                if !out.contains(h) {
                    out.push(*h);
                }
            }
            Expr::Lit(_) => {}
            Expr::Slice(e, _, _) => e.headers(out),
            Expr::Concat(a, b) => {
                a.headers(out);
                b.headers(out);
            }
        }
    }
}

/// Computes the width of the clamped slice `w[n1:n2]` for an operand of
/// static width `w_len`: from `min(n1, w_len-1)` to `min(n2, w_len-1)`
/// inclusive, empty if the operand is empty or the range is reversed.
pub fn clamped_slice_width(w_len: usize, n1: usize, n2: usize) -> usize {
    if w_len == 0 {
        return 0;
    }
    let lo = n1.min(w_len - 1);
    let hi = n2.min(w_len - 1);
    if lo > hi {
        0
    } else {
        hi - lo + 1
    }
}

/// Resolves the clamped slice `[n1:n2]` on a width-`w_len` operand to an
/// exact `(start, len)` pair.
pub fn clamped_slice_bounds(w_len: usize, n1: usize, n2: usize) -> (usize, usize) {
    if w_len == 0 {
        return (0, 0);
    }
    let lo = n1.min(w_len - 1);
    let hi = n2.min(w_len - 1);
    if lo > hi {
        (lo, 0)
    } else {
        (lo, hi - lo + 1)
    }
}

/// A select pattern (paper, Figure 2: `pat`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Exact bitvector match.
    Exact(BitVec),
    /// Wildcard `_`.
    Wildcard,
}

impl Pattern {
    /// An exact pattern from a binary string.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a binary string.
    pub fn exact_str(s: &str) -> Pattern {
        Pattern::Exact(s.parse().expect("invalid binary literal"))
    }

    /// Whether `value` matches the pattern (`JpatK_P`, Definition 3.3).
    pub fn matches(&self, value: &BitVec) -> bool {
        match self {
            Pattern::Exact(bv) => bv == value,
            Pattern::Wildcard => true,
        }
    }
}

/// A single operation (paper, Figure 2: `op`). Operation blocks are
/// represented as `Vec<Op>` rather than nested sequencing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// `extract(h)`: move `sz(h)` bits from the front of the packet into
    /// `h`. (The surface syntax `extract(h, n)` checks `n = sz(h)`.)
    Extract(HeaderId),
    /// `h := e`: assign the value of `e` to `h`.
    Assign(HeaderId, Expr),
}

/// One arm of a `select` statement: a tuple of patterns and a target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Case {
    /// Patterns, one per scrutinee expression.
    pub pats: Vec<Pattern>,
    /// Where to go when all patterns match.
    pub target: Target,
}

/// A transition block (paper, Figure 2: `tz`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Unconditional transition.
    Goto(Target),
    /// First-match select over a tuple of expressions; falls through to
    /// `reject` when no case matches (Definition 3.3).
    Select {
        /// The scrutinee expressions.
        exprs: Vec<Expr>,
        /// The arms, tried in order.
        cases: Vec<Case>,
    },
}

impl Transition {
    /// All targets this transition can reach (including the implicit
    /// `reject` fall-through of `select`).
    pub fn targets(&self) -> Vec<Target> {
        match self {
            Transition::Goto(t) => vec![*t],
            Transition::Select { cases, .. } => {
                let mut out: Vec<Target> = Vec::new();
                for c in cases {
                    if !out.contains(&c.target) {
                        out.push(c.target);
                    }
                }
                // A select with a non-exhaustive case list can fall through.
                if !out.contains(&Target::Reject) && !self.is_exhaustive() {
                    out.push(Target::Reject);
                }
                out
            }
        }
    }

    /// Whether the case list trivially covers every store (last case all
    /// wildcards). This is a syntactic under-approximation used only to
    /// avoid listing an unreachable `reject` fall-through.
    fn is_exhaustive(&self) -> bool {
        match self {
            Transition::Goto(_) => true,
            Transition::Select { cases, .. } => cases
                .last()
                .is_some_and(|c| c.pats.iter().all(|p| matches!(p, Pattern::Wildcard))),
        }
    }
}

/// A state definition: an operation block followed by a transition block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDef {
    /// The state's name (for diagnostics and printing).
    pub name: String,
    /// The operation block `op(q)`.
    pub ops: Vec<Op>,
    /// The transition block `tz(q)`.
    pub trans: Transition,
}

/// A header declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderDef {
    /// The header's name.
    pub name: String,
    /// Its size `sz(h)` in bits.
    pub size: usize,
}

/// A P4 automaton: header table plus state table (paper, Figure 2: `aut`).
///
/// Construct via [`crate::builder::Builder`] or [`crate::surface::parse`];
/// both validate the automaton (`⊢A`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automaton {
    pub(crate) headers: Vec<HeaderDef>,
    pub(crate) states: Vec<StateDef>,
}

impl Automaton {
    /// The number of proper states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The number of headers.
    pub fn num_headers(&self) -> usize {
        self.headers.len()
    }

    /// Iterates over state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Iterates over header ids.
    pub fn header_ids(&self) -> impl Iterator<Item = HeaderId> {
        (0..self.headers.len() as u32).map(HeaderId)
    }

    /// The definition of state `q`.
    pub fn state(&self, q: StateId) -> &StateDef {
        &self.states[q.0 as usize]
    }

    /// Redirects the `case`-th select case of state `q` to `target` — a
    /// fault-injection helper for differential and witness testing (the
    /// mutation changes transition structure only, so the automaton stays
    /// well-formed).
    ///
    /// # Panics
    ///
    /// Panics if `q` does not have a select transition, `case` is out of
    /// bounds, or `target` names a state outside the automaton.
    pub fn redirect_case(&mut self, q: StateId, case: usize, target: Target) {
        if let Target::State(s) = target {
            assert!(
                (s.0 as usize) < self.states.len(),
                "target state out of bounds"
            );
        }
        match &mut self.states[q.0 as usize].trans {
            Transition::Select { cases, .. } => cases[case].target = target,
            Transition::Goto(_) => panic!("state {q:?} has no select cases"),
        }
    }

    /// The name of state `q`.
    pub fn state_name(&self, q: StateId) -> &str {
        &self.states[q.0 as usize].name
    }

    /// Looks a state up by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId(i as u32))
    }

    /// The size `sz(h)` of header `h`.
    pub fn header_size(&self, h: HeaderId) -> usize {
        self.headers[h.0 as usize].size
    }

    /// The name of header `h`.
    pub fn header_name(&self, h: HeaderId) -> &str {
        &self.headers[h.0 as usize].name
    }

    /// Looks a header up by name.
    pub fn header_by_name(&self, name: &str) -> Option<HeaderId> {
        self.headers
            .iter()
            .position(|h| h.name == name)
            .map(|i| HeaderId(i as u32))
    }

    /// `‖op(q)‖`: the number of packet bits state `q` consumes
    /// (Definition 3.2).
    pub fn op_size(&self, q: StateId) -> usize {
        self.states[q.0 as usize]
            .ops
            .iter()
            .map(|op| match op {
                Op::Extract(h) => self.header_size(*h),
                Op::Assign(_, _) => 0,
            })
            .sum()
    }

    /// Human-readable name for a target.
    pub fn target_name(&self, t: Target) -> String {
        match t {
            Target::State(q) => self.state_name(q).to_string(),
            Target::Accept => "accept".to_string(),
            Target::Reject => "reject".to_string(),
        }
    }

    /// The total number of header bits (the paper's "Total bits" metric is
    /// this summed over both parsers of a benchmark).
    pub fn total_header_bits(&self) -> usize {
        self.headers.iter().map(|h| h.size).sum()
    }

    /// The total number of bits branched on in `select` statements (the
    /// paper's "Branched bits" metric).
    pub fn branched_bits(&self) -> usize {
        self.states
            .iter()
            .map(|s| match &s.trans {
                Transition::Goto(_) => 0,
                Transition::Select { exprs, .. } => {
                    exprs.iter().map(|e| e.width_in(self)).sum::<usize>()
                }
            })
            .sum()
    }
}

impl Expr {
    fn width_in(&self, aut: &Automaton) -> usize {
        self.width(aut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_slice_width_cases() {
        assert_eq!(clamped_slice_width(8, 2, 5), 4);
        assert_eq!(clamped_slice_width(8, 0, 100), 8);
        assert_eq!(clamped_slice_width(8, 100, 100), 1); // clamps to bit 7
        assert_eq!(clamped_slice_width(8, 7, 2), 0); // reversed
        assert_eq!(clamped_slice_width(0, 0, 3), 0);
    }

    #[test]
    fn clamped_slice_bounds_cases() {
        assert_eq!(clamped_slice_bounds(8, 2, 5), (2, 4));
        assert_eq!(clamped_slice_bounds(8, 0, 100), (0, 8));
        assert_eq!(clamped_slice_bounds(4, 9, 9), (3, 1));
        assert_eq!(clamped_slice_bounds(4, 3, 1), (3, 0));
    }

    #[test]
    fn pattern_matching() {
        let p = Pattern::exact_str("101");
        assert!(p.matches(&"101".parse().unwrap()));
        assert!(!p.matches(&"100".parse().unwrap()));
        assert!(Pattern::Wildcard.matches(&"0110".parse().unwrap()));
    }

    #[test]
    fn transition_targets_include_fallthrough() {
        let t = Transition::Select {
            exprs: vec![],
            cases: vec![Case {
                pats: vec![Pattern::exact_str("1")],
                target: Target::Accept,
            }],
        };
        let ts = t.targets();
        assert!(ts.contains(&Target::Accept));
        assert!(ts.contains(&Target::Reject));
        let exhaustive = Transition::Select {
            exprs: vec![],
            cases: vec![
                Case {
                    pats: vec![Pattern::exact_str("1")],
                    target: Target::Accept,
                },
                Case {
                    pats: vec![Pattern::Wildcard],
                    target: Target::Accept,
                },
            ],
        };
        assert_eq!(exhaustive.targets(), vec![Target::Accept]);
    }
}
