//! Packet synthesis by walking the automaton: random valid and adversarial
//! packets for a parser, plus branch steering toward chosen targets.
//!
//! The generator walks the automaton itself: starting from a state, it
//! repeatedly synthesizes the bits each state consumes, steering selects
//! toward a chosen branch. This yields packets that exercise deep paths
//! (hard to hit with uniform random bits) without hand-writing per-parser
//! generators. The machinery lives here (rather than in the evaluation
//! suite) because the counterexample witness engine reuses it to search
//! for distinguishing packets when model lifting alone is inconclusive.

use std::collections::VecDeque;

use leapfrog_bitvec::BitVec;

use crate::ast::{Automaton, Pattern, StateId, Target, Transition};
use crate::semantics::{eval_transition, run_ops, Config, Store};

/// A deterministic split-mix style RNG for reproducible workloads.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z ^ (z >> 33)
    }

    /// A value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Generates a packet by walking up to `max_states` states from `start`,
/// randomly steering selects, and stopping when `accept`/`reject` is
/// reached. Returns the packet; it may or may not be accepted (steering
/// toward reject branches is allowed), which is exactly what differential
/// testing wants.
pub fn random_walk_packet(
    aut: &Automaton,
    start: StateId,
    max_states: usize,
    rng: &mut Rng,
) -> BitVec {
    walk(
        aut,
        start,
        Store::zeros(aut),
        max_states,
        &mut |cases, rng| rng.below(cases),
        rng,
    )
}

/// Generates a packet steered toward acceptance: at every select, the case
/// whose target is closest to `accept` (by BFS distance over the state
/// graph) is preferred. Steering is best effort — only directly-extracted
/// scrutinees can be forced — so callers should confirm acceptance with
/// the explicit semantics. The walk starts from the given store, which
/// matters for parsers whose branches read uninitialized headers.
pub fn accepting_walk_packet(
    aut: &Automaton,
    start: StateId,
    store: Store,
    max_states: usize,
    rng: &mut Rng,
) -> BitVec {
    let dist = distances_to_accept(aut);
    let mut chooser = |q: StateId, ncases: usize, _rng: &mut Rng| {
        let best = match &aut.state(q).trans {
            Transition::Goto(_) => 0,
            Transition::Select { cases, .. } => {
                let mut best = 0;
                let mut best_d = usize::MAX;
                for (i, case) in cases.iter().enumerate() {
                    let d = match case.target {
                        Target::Accept => 0,
                        Target::Reject => usize::MAX,
                        Target::State(s) => dist[s.0 as usize].map(|d| d + 1).unwrap_or(usize::MAX),
                    };
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                best
            }
        };
        best.min(ncases.saturating_sub(1))
    };
    walk_with(aut, start, store, max_states, &mut chooser, rng)
}

/// BFS distance (in states) from every state to `accept`, following
/// transition targets backwards. `None` means `accept` is unreachable.
pub fn distances_to_accept(aut: &Automaton) -> Vec<Option<usize>> {
    let n = aut.num_states();
    // Reverse edges: for each state, which states can reach it in one step.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut accept_frontier: Vec<usize> = Vec::new();
    for q in aut.state_ids() {
        for t in aut.state(q).trans.targets() {
            match t {
                Target::Accept => accept_frontier.push(q.0 as usize),
                Target::State(s) => preds[s.0 as usize].push(q.0 as usize),
                Target::Reject => {}
            }
        }
    }
    let mut dist: Vec<Option<usize>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for q in accept_frontier {
        if dist[q].is_none() {
            dist[q] = Some(0);
            queue.push_back(q);
        }
    }
    while let Some(q) = queue.pop_front() {
        let d = dist[q].unwrap();
        for &p in &preds[q] {
            if dist[p].is_none() {
                dist[p] = Some(d + 1);
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Walks the automaton, choosing select cases via `pick(case_count, rng)`.
fn walk(
    aut: &Automaton,
    start: StateId,
    store: Store,
    max_states: usize,
    pick: &mut dyn FnMut(usize, &mut Rng) -> usize,
    rng: &mut Rng,
) -> BitVec {
    let mut chooser = |_q: StateId, cases: usize, rng: &mut Rng| pick(cases, rng).min(cases - 1);
    walk_with(aut, start, store, max_states, &mut chooser, rng)
}

/// Walks the automaton, choosing select cases via `choose(state, case_count,
/// rng)`, forcing the chosen case's patterns into the synthesized bits where
/// possible.
pub fn walk_with(
    aut: &Automaton,
    start: StateId,
    store: Store,
    max_states: usize,
    choose: &mut dyn FnMut(StateId, usize, &mut Rng) -> usize,
    rng: &mut Rng,
) -> BitVec {
    let mut packet = BitVec::new();
    let mut config = Config {
        target: Target::State(start),
        store,
        buf: BitVec::new(),
    };
    for _ in 0..max_states {
        let q = match config.target {
            Target::State(q) => q,
            _ => break,
        };
        let choice = match &aut.state(q).trans {
            Transition::Select { cases, .. } if !cases.is_empty() => {
                Some(choose(q, cases.len(), rng))
            }
            _ => None,
        };
        let chunk = synthesize_chunk(aut, q, choice, rng);
        packet.extend(&chunk);
        let mut store = config.store.clone();
        run_ops(aut, q, &mut store, &chunk);
        let next = eval_transition(aut, q, &store);
        config = Config {
            target: next,
            store,
            buf: BitVec::new(),
        };
    }
    packet
}

/// Synthesizes `‖op(q)‖` bits for state `q`, steering its select toward
/// case `choice` (or a uniformly random case when `None`). Best effort:
/// only directly-extracted scrutinee patterns can be forced, which covers
/// the suite's parsers.
pub fn synthesize_chunk(
    aut: &Automaton,
    q: StateId,
    choice: Option<usize>,
    rng: &mut Rng,
) -> BitVec {
    let size = aut.op_size(q);
    let mut chunk = BitVec::random_with(size, || rng.next_u64());
    if let Transition::Select { exprs, cases } = &aut.state(q).trans {
        if cases.is_empty() {
            return chunk;
        }
        let idx = choice
            .unwrap_or_else(|| rng.below(cases.len()))
            .min(cases.len() - 1);
        let chosen = &cases[idx];
        // Try to force each exact pattern by writing its bits into the
        // extracted region its scrutinee reads from, when the scrutinee is
        // a header (or slice of one) extracted in this very state. Earlier
        // cases' patterns are not excluded, so steering can overshoot — the
        // caller must confirm with the explicit semantics.
        for (pat, expr) in chosen.pats.iter().zip(exprs) {
            if let Pattern::Exact(bits) = pat {
                force_expr(aut, q, expr, bits, &mut chunk);
            }
        }
    }
    chunk
}

/// Writes `bits` into the part of `chunk` that `expr` will read, when
/// `expr` is a (slice of a) header extracted by state `q`.
fn force_expr(
    aut: &Automaton,
    q: StateId,
    expr: &crate::ast::Expr,
    bits: &BitVec,
    chunk: &mut BitVec,
) {
    use crate::ast::{clamped_slice_bounds, Expr, Op};
    // Resolve the expression to (header, offset-within-header, len).
    fn resolve(aut: &Automaton, e: &Expr) -> Option<(crate::ast::HeaderId, usize, usize)> {
        match e {
            Expr::Hdr(h) => Some((*h, 0, aut.header_size(*h))),
            Expr::Slice(inner, n1, n2) => {
                let (h, off, len) = resolve(aut, inner)?;
                let (s, l) = clamped_slice_bounds(len, *n1, *n2);
                Some((h, off + s, l))
            }
            _ => None,
        }
    }
    let Some((h, off, len)) = resolve(aut, expr) else {
        return;
    };
    if bits.len() != len {
        return;
    }
    // Find the chunk offset where h is extracted (last extract wins).
    let mut cursor = 0;
    let mut found = None;
    for op in &aut.state(q).ops {
        if let Op::Extract(h2) = op {
            if *h2 == h {
                found = Some(cursor);
            }
            cursor += aut.header_size(*h2);
        }
    }
    let Some(base) = found else { return };
    for i in 0..len {
        chunk.set(base + off + i, bits.get(i).unwrap());
    }
}

/// A batch of `count` random-walk packets.
pub fn packets(
    aut: &Automaton,
    start: StateId,
    max_states: usize,
    count: usize,
    seed: u64,
) -> Vec<BitVec> {
    let mut rng = Rng::new(seed);
    (0..count)
        .map(|_| random_walk_packet(aut, start, max_states, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::builder::Builder;

    fn branching() -> Automaton {
        let mut b = Builder::new();
        let h = b.header("h", 2);
        let g = b.header("g", 3);
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        b.define(
            q0,
            vec![b.extract(h)],
            b.select1(
                Expr::hdr(h),
                vec![("11", Target::State(q1)), ("_", Target::Reject)],
            ),
        );
        b.define(q1, vec![b.extract(g)], b.goto(Target::Accept));
        b.build().unwrap()
    }

    #[test]
    fn distances_reach_accept_through_chain() {
        let aut = branching();
        let d = distances_to_accept(&aut);
        assert_eq!(d[1], Some(0)); // q1 goes straight to accept
        assert_eq!(d[0], Some(1)); // q0 reaches accept via q1
    }

    #[test]
    fn accepting_walk_is_accepted() {
        let aut = branching();
        let q0 = aut.state_by_name("q0").unwrap();
        let mut rng = Rng::new(77);
        for _ in 0..20 {
            let p = accepting_walk_packet(&aut, q0, Store::zeros(&aut), 8, &mut rng);
            assert!(
                Config::initial(&aut, q0).accepts_chunked(&aut, &p),
                "steered packet {p} was rejected"
            );
        }
    }

    #[test]
    fn random_walks_are_chunk_aligned() {
        let aut = branching();
        let q0 = aut.state_by_name("q0").unwrap();
        for p in packets(&aut, q0, 4, 50, 3) {
            // Packets decompose into 2-bit then 3-bit chunks.
            assert!(
                p.len() == 2 || p.len() == 5,
                "unexpected length {}",
                p.len()
            );
        }
    }
}
