//! P4 automata (P4As): the parser model of the Leapfrog paper (§3).
//!
//! A P4 automaton is a state machine that consumes a packet bitstring,
//! building a *store* of fixed-width bitvector *headers*, and ultimately
//! accepts or rejects the packet. Each state runs an operation block —
//! `extract` statements that consume packet bits and assignments between
//! headers — and then transitions on the contents of the store via `goto`
//! or a first-match `select`.
//!
//! This crate provides:
//!
//! * the abstract syntax (Figure 2) with an interned-identifier
//!   representation and a fluent [`builder::Builder`];
//! * the typing judgements `⊢E`, `⊢O`, `⊢T`, `⊢A` (Definitions 3.1–3.5's
//!   side conditions), in [`validate`];
//! * the operational semantics: the bit-by-bit configuration dynamics `δ`
//!   of Definition 3.5 and an equivalent chunked interpreter, in
//!   [`semantics`];
//! * disjoint sums of automata for relational reasoning (§4), in [`sum`];
//! * a surface-syntax parser and pretty-printer for the paper's notation,
//!   in [`surface`] and [`pretty`].
//!
//! # Examples
//!
//! Build the reference MPLS parser from Figure 1 and run it:
//!
//! ```
//! use leapfrog_p4a::builder::Builder;
//! use leapfrog_p4a::ast::{Expr, Pattern, Target};
//! use leapfrog_p4a::semantics::Config;
//! use leapfrog_bitvec::BitVec;
//!
//! let mut b = Builder::new();
//! let mpls = b.header("mpls", 32);
//! let udp = b.header("udp", 64);
//! let q1 = b.state("q1");
//! let q2 = b.state("q2");
//! b.define(q1, vec![b.extract(mpls)], b.select(
//!     vec![Expr::slice(Expr::hdr(mpls), 23, 23)],
//!     vec![(vec![Pattern::exact_str("0")], Target::State(q1)),
//!          (vec![Pattern::exact_str("1")], Target::State(q2))],
//! ));
//! b.define(q2, vec![b.extract(udp)], b.goto(Target::Accept));
//! let aut = b.build().unwrap();
//!
//! // One MPLS label with the bottom-of-stack bit set, then 64 bits of UDP.
//! let mut packet = BitVec::zeros(96);
//! packet.set(23, true);
//! assert!(Config::initial(&aut, q1).accepts(&aut, &packet));
//! ```

pub mod ast;
pub mod builder;
pub mod pretty;
pub mod semantics;
pub mod sum;
pub mod surface;
pub mod validate;
pub mod walk;

pub use ast::{Automaton, Case, Expr, HeaderId, Op, Pattern, StateId, Target, Transition};
pub use builder::Builder;
pub use semantics::{Config, Store};
pub use validate::ValidationError;
