//! A fluent, forward-reference-friendly constructor for [`Automaton`]s.

use std::collections::HashMap;

use leapfrog_bitvec::BitVec;

use crate::ast::{
    Automaton, Case, Expr, HeaderDef, HeaderId, Op, Pattern, StateDef, StateId, Target, Transition,
};
use crate::validate::{self, ValidationError};

/// A declared state: its name, and its body once defined.
type PendingState = (String, Option<(Vec<Op>, Transition)>);

/// Builds an [`Automaton`] incrementally, allowing states to be referenced
/// before they are defined.
///
/// # Examples
///
/// ```
/// use leapfrog_p4a::builder::Builder;
/// use leapfrog_p4a::ast::Target;
///
/// let mut b = Builder::new();
/// let h = b.header("h", 8);
/// let q = b.state("q");
/// b.define(q, vec![b.extract(h)], b.goto(Target::Accept));
/// let aut = b.build().unwrap();
/// assert_eq!(aut.op_size(q), 8);
/// ```
#[derive(Debug, Default)]
pub struct Builder {
    headers: Vec<HeaderDef>,
    header_index: HashMap<String, HeaderId>,
    states: Vec<PendingState>,
    state_index: HashMap<String, StateId>,
}

impl Builder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or retrieves) a header with the given name and size.
    ///
    /// # Panics
    ///
    /// Panics if the header was previously declared with a different size;
    /// sizes are part of a parser's interface and silently changing one is
    /// always a bug in the caller.
    pub fn header(&mut self, name: impl Into<String>, size: usize) -> HeaderId {
        let name = name.into();
        if let Some(&h) = self.header_index.get(&name) {
            assert_eq!(
                self.headers[h.0 as usize].size, size,
                "header {name} redeclared with a different size"
            );
            return h;
        }
        let h = HeaderId(self.headers.len() as u32);
        self.headers.push(HeaderDef {
            name: name.clone(),
            size,
        });
        self.header_index.insert(name, h);
        h
    }

    /// Declares (or retrieves) a state by name; it may be defined later.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(&q) = self.state_index.get(&name) {
            return q;
        }
        let q = StateId(self.states.len() as u32);
        self.states.push((name.clone(), None));
        self.state_index.insert(name, q);
        q
    }

    /// Defines the body of a previously declared state.
    ///
    /// # Panics
    ///
    /// Panics if the state is already defined.
    pub fn define(&mut self, q: StateId, ops: Vec<Op>, trans: Transition) {
        let slot = &mut self.states[q.0 as usize];
        assert!(slot.1.is_none(), "state {} defined twice", slot.0);
        slot.1 = Some((ops, trans));
    }

    /// Convenience: an `extract(h)` operation.
    pub fn extract(&self, h: HeaderId) -> Op {
        Op::Extract(h)
    }

    /// Convenience: an assignment `h := e`.
    pub fn assign(&self, h: HeaderId, e: Expr) -> Op {
        Op::Assign(h, e)
    }

    /// Convenience: a `goto` transition.
    pub fn goto(&self, t: Target) -> Transition {
        Transition::Goto(t)
    }

    /// Convenience: a `select` transition from `(patterns, target)` pairs.
    pub fn select(&self, exprs: Vec<Expr>, cases: Vec<(Vec<Pattern>, Target)>) -> Transition {
        Transition::Select {
            exprs,
            cases: cases
                .into_iter()
                .map(|(pats, target)| Case { pats, target })
                .collect(),
        }
    }

    /// Convenience: a `select` on a single expression with exact bit-string
    /// patterns given as `(literal, target)`; a `"_"` literal is a wildcard.
    ///
    /// # Panics
    ///
    /// Panics if a literal is not a binary string or `"_"`.
    pub fn select1(&self, expr: Expr, cases: Vec<(&str, Target)>) -> Transition {
        Transition::Select {
            exprs: vec![expr],
            cases: cases
                .into_iter()
                .map(|(lit, target)| Case {
                    pats: vec![if lit == "_" {
                        Pattern::Wildcard
                    } else {
                        Pattern::Exact(lit.parse::<BitVec>().expect("invalid binary literal"))
                    }],
                    target,
                })
                .collect(),
        }
    }

    /// Validates and produces the automaton.
    pub fn build(self) -> Result<Automaton, ValidationError> {
        let mut states = Vec::with_capacity(self.states.len());
        for (name, def) in self.states {
            match def {
                Some((ops, trans)) => states.push(StateDef { name, ops, trans }),
                None => return Err(ValidationError::UndefinedState(name)),
            }
        }
        let aut = Automaton {
            headers: self.headers,
            states,
        };
        validate::validate(&aut)?;
        Ok(aut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let q1 = b.state("q1");
        let q2 = b.state("q2"); // referenced before definition
        b.define(q1, vec![b.extract(h)], b.goto(Target::State(q2)));
        b.define(q2, vec![b.extract(h)], b.goto(Target::Accept));
        let aut = b.build().unwrap();
        assert_eq!(aut.num_states(), 2);
        assert_eq!(aut.state_by_name("q2"), Some(q2));
    }

    #[test]
    fn undefined_state_is_an_error() {
        let mut b = Builder::new();
        let h = b.header("h", 4);
        let q1 = b.state("q1");
        let q2 = b.state("dangling");
        b.define(q1, vec![b.extract(h)], b.goto(Target::State(q2)));
        assert!(matches!(b.build(), Err(ValidationError::UndefinedState(n)) if n == "dangling"));
    }

    #[test]
    #[should_panic(expected = "different size")]
    fn header_size_conflict_panics() {
        let mut b = Builder::new();
        b.header("h", 4);
        b.header("h", 8);
    }

    #[test]
    fn header_and_state_are_idempotent() {
        let mut b = Builder::new();
        assert_eq!(b.header("h", 4), b.header("h", 4));
        assert_eq!(b.state("q"), b.state("q"));
    }
}
