//! Operational semantics of P4 automata (paper, §3.2).
//!
//! The central object is the *configuration* `⟨q, s, w⟩` (Definition 3.4):
//! a control location (state or `accept`/`reject`), a store `s` assigning a
//! bitvector to every header, and a buffer `w` of packet bits received but
//! not yet consumed, with `|w| < ‖op(q)‖` for proper states. The bit-by-bit
//! step function `δ` (Definition 3.5) buffers input until the current
//! state's operation block can run, then executes it and actuates the
//! transition. Configurations at `accept`/`reject` step unconditionally to
//! `reject`, so a packet is accepted exactly when the configuration reached
//! *at its end* is accepting.
//!
//! [`Config::step_state`] is a chunked interpreter that consumes a whole
//! state's worth of bits at once; property tests check it against the
//! bit-by-bit `δ`.

use leapfrog_bitvec::BitVec;

use crate::ast::{clamped_slice_bounds, Automaton, Expr, Op, StateId, Target, Transition};

/// A store: one bitvector per header, `|s(h)| = sz(h)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Store {
    values: Vec<BitVec>,
}

impl Store {
    /// The all-zeros store for `aut`.
    pub fn zeros(aut: &Automaton) -> Store {
        Store {
            values: aut
                .header_ids()
                .map(|h| BitVec::zeros(aut.header_size(h)))
                .collect(),
        }
    }

    /// A store with the given per-header values.
    ///
    /// # Panics
    ///
    /// Panics if the number of values or any width disagrees with `aut`.
    pub fn from_values(aut: &Automaton, values: Vec<BitVec>) -> Store {
        assert_eq!(values.len(), aut.num_headers());
        for (h, v) in aut.header_ids().zip(values.iter()) {
            assert_eq!(
                v.len(),
                aut.header_size(h),
                "store width mismatch for {}",
                aut.header_name(h)
            );
        }
        Store { values }
    }

    /// A uniformly random store (for differential testing).
    pub fn random(aut: &Automaton, mut next_u64: impl FnMut() -> u64) -> Store {
        Store {
            values: aut
                .header_ids()
                .map(|h| BitVec::random_with(aut.header_size(h), &mut next_u64))
                .collect(),
        }
    }

    /// The value of header `h`.
    pub fn get(&self, h: crate::ast::HeaderId) -> &BitVec {
        &self.values[h.0 as usize]
    }

    /// Functional update `s[v/h]` (Definition 3.2).
    pub fn set(&mut self, h: crate::ast::HeaderId, v: BitVec) {
        self.values[h.0 as usize] = v;
    }

    /// Evaluates an expression against this store (`JeK_E`, Definition 3.1).
    /// (`aut` is kept for API uniformity with width computations.)
    #[allow(clippy::only_used_in_recursion)]
    pub fn eval(&self, aut: &Automaton, e: &Expr) -> BitVec {
        match e {
            Expr::Hdr(h) => self.get(*h).clone(),
            Expr::Lit(bv) => bv.clone(),
            Expr::Slice(inner, n1, n2) => {
                let v = self.eval(aut, inner);
                v.slice(*n1, *n2)
            }
            Expr::Concat(a, b) => self.eval(aut, a).concat(&self.eval(aut, b)),
        }
    }
}

/// A configuration `⟨q, s, w⟩` of a P4 automaton's underlying DFA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// The control location.
    pub target: Target,
    /// The store.
    pub store: Store,
    /// The buffer of unconsumed bits; `|buf| < ‖op(q)‖` when `target` is a
    /// proper state, and empty otherwise.
    pub buf: BitVec,
}

impl Config {
    /// The initial configuration `⟨q, 0…0, ε⟩` with a zero store.
    pub fn initial(aut: &Automaton, q: StateId) -> Config {
        Config {
            target: Target::State(q),
            store: Store::zeros(aut),
            buf: BitVec::new(),
        }
    }

    /// An initial configuration with a caller-supplied store (the paper's
    /// semantics embeds the initial store in the start configuration).
    pub fn with_store(q: StateId, store: Store) -> Config {
        Config {
            target: Target::State(q),
            store,
            buf: BitVec::new(),
        }
    }

    /// Whether this is an accepting configuration (`∈ F`): at `accept` with
    /// an empty buffer.
    pub fn is_accepting(&self) -> bool {
        self.target == Target::Accept && self.buf.is_empty()
    }

    /// The bit-by-bit step function `δ` (Definition 3.5).
    pub fn step(&self, aut: &Automaton, bit: bool) -> Config {
        match self.target {
            Target::Accept | Target::Reject => Config {
                target: Target::Reject,
                store: self.store.clone(),
                buf: BitVec::new(),
            },
            Target::State(q) => {
                let mut buf = self.buf.clone();
                buf.push(bit);
                if buf.len() < aut.op_size(q) {
                    Config {
                        target: self.target,
                        store: self.store.clone(),
                        buf,
                    }
                } else {
                    let mut store = self.store.clone();
                    run_ops(aut, q, &mut store, &buf);
                    let next = eval_transition(aut, q, &store);
                    Config {
                        target: next,
                        store,
                        buf: BitVec::new(),
                    }
                }
            }
        }
    }

    /// Multi-step dynamics `δ*` (Definition 3.6).
    pub fn step_word(&self, aut: &Automaton, word: &BitVec) -> Config {
        let mut c = self.clone();
        for b in word.iter() {
            c = c.step(aut, b);
        }
        c
    }

    /// Whether `word ∈ L(self)`: running the word ends in an accepting
    /// configuration.
    pub fn accepts(&self, aut: &Automaton, word: &BitVec) -> bool {
        self.step_word(aut, word).is_accepting()
    }

    /// Chunked step: consumes exactly the bits needed to complete the
    /// current state (`‖op(q)‖ - |buf|` bits for a proper state, one bit
    /// for `accept`/`reject`), returning the next configuration and the
    /// number of bits consumed. Equivalent to iterating [`Config::step`].
    ///
    /// Returns `None` if `input` has fewer bits than required, leaving the
    /// caller to fall back to bit-by-bit buffering.
    pub fn step_state(
        &self,
        aut: &Automaton,
        input: &BitVec,
        pos: usize,
    ) -> Option<(Config, usize)> {
        match self.target {
            Target::Accept | Target::Reject => {
                if pos < input.len() {
                    Some((
                        Config {
                            target: Target::Reject,
                            store: self.store.clone(),
                            buf: BitVec::new(),
                        },
                        1,
                    ))
                } else {
                    None
                }
            }
            Target::State(q) => {
                let need = aut.op_size(q) - self.buf.len();
                if pos + need > input.len() {
                    return None;
                }
                let full = self.buf.concat(&input.subrange(pos, need));
                let mut store = self.store.clone();
                run_ops(aut, q, &mut store, &full);
                let next = eval_transition(aut, q, &store);
                Some((
                    Config {
                        target: next,
                        store,
                        buf: BitVec::new(),
                    },
                    need,
                ))
            }
        }
    }

    /// Fast acceptance check using the chunked interpreter; agrees with
    /// [`Config::accepts`].
    pub fn accepts_chunked(&self, aut: &Automaton, word: &BitVec) -> bool {
        let mut c = self.clone();
        let mut pos = 0;
        loop {
            match c.step_state(aut, word, pos) {
                Some((next, used)) => {
                    pos += used;
                    c = next;
                }
                None => {
                    // Not enough input to finish the state: buffer the rest.
                    for i in pos..word.len() {
                        c = c.step(aut, word.get(i).unwrap());
                    }
                    return c.is_accepting();
                }
            }
        }
    }
}

/// Runs a state's operation block on `(store, buffer)` where the buffer
/// holds exactly `‖op(q)‖` bits (`JopK_O`, Definition 3.2).
pub fn run_ops(aut: &Automaton, q: StateId, store: &mut Store, buf: &BitVec) {
    debug_assert_eq!(
        buf.len(),
        aut.op_size(q),
        "operation block needs a full buffer"
    );
    let mut cursor = 0;
    for op in &aut.state(q).ops {
        match op {
            Op::Extract(h) => {
                let sz = aut.header_size(*h);
                store.set(*h, buf.subrange(cursor, sz));
                cursor += sz;
            }
            Op::Assign(h, e) => {
                let v = store.eval(aut, e);
                debug_assert_eq!(v.len(), aut.header_size(*h));
                store.set(*h, v);
            }
        }
    }
}

/// Evaluates a state's transition block against a store (`JtzK_T`,
/// Definition 3.3): first matching case wins, fall-through is `reject`.
pub fn eval_transition(aut: &Automaton, q: StateId, store: &Store) -> Target {
    match &aut.state(q).trans {
        Transition::Goto(t) => *t,
        Transition::Select { exprs, cases } => {
            let values: Vec<BitVec> = exprs.iter().map(|e| store.eval(aut, e)).collect();
            for case in cases {
                if case.pats.iter().zip(&values).all(|(p, v)| p.matches(v)) {
                    return case.target;
                }
            }
            Target::Reject
        }
    }
}

/// Symbolic-free helper: the exact `(start, len)` covered by the clamped
/// slice `e[n1:n2]`, re-exported for the logic crate's lowering.
pub fn resolve_slice(aut: &Automaton, e: &Expr, n1: usize, n2: usize) -> (usize, usize) {
    clamped_slice_bounds(e.width(aut), n1, n2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;
    use crate::builder::Builder;

    /// The reference MPLS/UDP parser of Figure 1 (left).
    fn mpls_ref() -> (Automaton, StateId) {
        let mut b = Builder::new();
        let mpls = b.header("mpls", 32);
        let udp = b.header("udp", 64);
        let q1 = b.state("q1");
        let q2 = b.state("q2");
        b.define(
            q1,
            vec![b.extract(mpls)],
            b.select(
                vec![Expr::slice(Expr::hdr(mpls), 23, 23)],
                vec![
                    (vec![Pattern::exact_str("0")], Target::State(q1)),
                    (vec![Pattern::exact_str("1")], Target::State(q2)),
                ],
            ),
        );
        b.define(q2, vec![b.extract(udp)], b.goto(Target::Accept));
        let aut = b.build().unwrap();
        (aut, q1)
    }

    fn label(bottom: bool) -> BitVec {
        let mut l = BitVec::zeros(32);
        l.set(23, bottom);
        l
    }

    #[test]
    fn accepts_single_label_packet() {
        let (aut, q1) = mpls_ref();
        let packet = label(true).concat(&BitVec::zeros(64));
        assert!(Config::initial(&aut, q1).accepts(&aut, &packet));
    }

    #[test]
    fn accepts_multi_label_packet() {
        let (aut, q1) = mpls_ref();
        let packet = label(false)
            .concat(&label(false))
            .concat(&label(true))
            .concat(&BitVec::zeros(64));
        assert!(Config::initial(&aut, q1).accepts(&aut, &packet));
    }

    #[test]
    fn rejects_truncated_packet() {
        let (aut, q1) = mpls_ref();
        // Missing UDP bits.
        let packet = label(true).concat(&BitVec::zeros(63));
        assert!(!Config::initial(&aut, q1).accepts(&aut, &packet));
    }

    #[test]
    fn rejects_overlong_packet() {
        let (aut, q1) = mpls_ref();
        // One extra bit after acceptance: accept steps to reject.
        let packet = label(true).concat(&BitVec::zeros(65));
        assert!(!Config::initial(&aut, q1).accepts(&aut, &packet));
    }

    #[test]
    fn rejects_unterminated_label_stack() {
        let (aut, q1) = mpls_ref();
        let packet = label(false).concat(&label(false));
        assert!(!Config::initial(&aut, q1).accepts(&aut, &packet));
    }

    #[test]
    fn empty_word_not_accepted_from_state() {
        let (aut, q1) = mpls_ref();
        assert!(!Config::initial(&aut, q1).accepts(&aut, &BitVec::new()));
    }

    #[test]
    fn buffer_invariant_maintained() {
        let (aut, q1) = mpls_ref();
        let mut c = Config::initial(&aut, q1);
        for i in 0..40 {
            c = c.step(&aut, i % 3 == 0);
            if let Target::State(q) = c.target {
                assert!(c.buf.len() < aut.op_size(q));
            } else {
                assert!(c.buf.is_empty());
            }
        }
    }

    #[test]
    fn accept_steps_to_reject() {
        let (aut, q1) = mpls_ref();
        let packet = label(true).concat(&BitVec::zeros(64));
        let c = Config::initial(&aut, q1).step_word(&aut, &packet);
        assert!(c.is_accepting());
        let c2 = c.step(&aut, false);
        assert_eq!(c2.target, Target::Reject);
        let c3 = c2.step(&aut, true);
        assert_eq!(c3.target, Target::Reject);
    }

    #[test]
    fn assignment_and_concat_semantics() {
        // q extracts two nibbles, then swaps them into `out`.
        let mut b = Builder::new();
        let a = b.header("a", 4);
        let c = b.header("c", 4);
        let out = b.header("out", 8);
        let q = b.state("q");
        b.define(
            q,
            vec![
                b.extract(a),
                b.extract(c),
                b.assign(out, Expr::concat(Expr::hdr(c), Expr::hdr(a))),
            ],
            b.goto(Target::Accept),
        );
        let aut = b.build().unwrap();
        let word: BitVec = "10100101".parse().unwrap();
        let q = aut.state_by_name("q").unwrap();
        let end = Config::initial(&aut, q).step_word(&aut, &word);
        assert!(end.is_accepting());
        let out = aut.header_by_name("out").unwrap();
        assert_eq!(end.store.get(out).to_string(), "01011010");
    }

    #[test]
    fn select_first_match_wins() {
        let mut b = Builder::new();
        let h = b.header("h", 2);
        let q = b.state("q");
        let dead = b.state("dead");
        b.define(
            q,
            vec![b.extract(h)],
            b.select1(
                Expr::hdr(h),
                vec![("11", Target::Accept), ("_", Target::State(dead))],
            ),
        );
        b.define(dead, vec![b.extract(h)], b.goto(Target::Reject));
        let aut = b.build().unwrap();
        let q = aut.state_by_name("q").unwrap();
        assert!(Config::initial(&aut, q).accepts(&aut, &"11".parse().unwrap()));
        // "10" goes to dead, which needs 2 more bits then rejects.
        assert!(!Config::initial(&aut, q).accepts(&aut, &"10".parse().unwrap()));
    }

    #[test]
    fn select_fallthrough_rejects() {
        let mut b = Builder::new();
        let h = b.header("h", 2);
        let q = b.state("q");
        b.define(
            q,
            vec![b.extract(h)],
            b.select1(Expr::hdr(h), vec![("11", Target::Accept)]),
        );
        let aut = b.build().unwrap();
        let q = aut.state_by_name("q").unwrap();
        assert!(!Config::initial(&aut, q).accepts(&aut, &"01".parse().unwrap()));
    }

    #[test]
    fn chunked_interpreter_agrees_with_bit_by_bit() {
        let (aut, q1) = mpls_ref();
        let mut state = 0x42u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for len in [0usize, 1, 31, 32, 64, 95, 96, 97, 128, 160, 200] {
            for _ in 0..5 {
                let word = BitVec::random_with(len, &mut rng);
                let init = Config::initial(&aut, q1);
                assert_eq!(
                    init.accepts(&aut, &word),
                    init.accepts_chunked(&aut, &word),
                    "disagreement on length {len}"
                );
            }
        }
    }

    #[test]
    fn acceptance_depends_on_store_only_through_program() {
        // The MPLS parser never reads uninitialized headers, so acceptance
        // is store-independent.
        let (aut, q1) = mpls_ref();
        let mut state = 7u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let word = label(true).concat(&BitVec::zeros(64));
        for _ in 0..10 {
            let s = Store::random(&aut, &mut rng);
            assert!(Config::with_store(q1, s).accepts(&aut, &word));
        }
    }
}
