//! Property-based tests for the P4A semantics: the chunked interpreter
//! agrees with the bit-by-bit `δ` of Definition 3.5 on random automata and
//! random packets, the pretty-printer round-trips through the surface
//! parser, and configurations maintain their buffer invariant.

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, Expr, Pattern, StateId, Target};
use leapfrog_p4a::builder::Builder;
use leapfrog_p4a::semantics::{Config, Store};
use proptest::prelude::*;

/// Strategy: a random well-formed automaton with up to 3 states, each
/// extracting 1–4 bits, with random select/goto transitions.
fn automaton() -> impl Strategy<Value = Automaton> {
    let state_count = 1usize..=3;
    state_count
        .prop_flat_map(|n| {
            let widths = proptest::collection::vec(1usize..=4, n);
            let transitions = proptest::collection::vec(
                (
                    any::<bool>(),               // goto vs select
                    0usize..=4,                  // target selector
                    proptest::collection::vec((any::<u8>(), 0usize..=4), 1..=3),
                ),
                n,
            );
            (Just(n), widths, transitions)
        })
        .prop_map(|(n, widths, transitions)| {
            let mut b = Builder::new();
            let states: Vec<StateId> = (0..n).map(|i| b.state(format!("q{i}"))).collect();
            let target = |sel: usize| match sel {
                0 => Target::Accept,
                1 => Target::Reject,
                s => Target::State(states[(s - 2) % states.len()]),
            };
            for (i, &q) in states.iter().enumerate() {
                let w = widths[i];
                let h = b.header(format!("h{i}"), w);
                let (is_goto, tsel, cases) = &transitions[i];
                let trans = if *is_goto {
                    b.goto(target(*tsel))
                } else {
                    let cs: Vec<(Vec<Pattern>, Target)> = cases
                        .iter()
                        .map(|(val, tsel)| {
                            let pat = Pattern::Exact(BitVec::from_u64(
                                *val as u64 & ((1 << w) - 1),
                                w,
                            ));
                            (vec![pat], target(*tsel))
                        })
                        .collect();
                    b.select(vec![Expr::hdr(h)], cs)
                };
                b.define(q, vec![b.extract(h)], trans);
            }
            b.build().expect("generated automaton is well-formed")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_interpreter_agrees_with_bit_by_bit(
        aut in automaton(),
        word_bits in proptest::collection::vec(any::<bool>(), 0..40),
        store_seed in any::<u64>(),
    ) {
        let word = BitVec::from_bits(&word_bits);
        let mut seed = store_seed | 1;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed
        };
        let store = Store::random(&aut, &mut rng);
        let q = StateId(0);
        let slow = Config::with_store(q, store.clone()).accepts(&aut, &word);
        let fast = Config::with_store(q, store).accepts_chunked(&aut, &word);
        prop_assert_eq!(slow, fast);
    }

    #[test]
    fn buffer_invariant_holds_along_any_run(
        aut in automaton(),
        word_bits in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        let mut c = Config::initial(&aut, StateId(0));
        for &bit in &word_bits {
            c = c.step(&aut, bit);
            match c.target {
                Target::State(q) => prop_assert!(c.buf.len() < aut.op_size(q)),
                _ => prop_assert!(c.buf.is_empty()),
            }
        }
    }

    #[test]
    fn pretty_print_parse_roundtrip(aut in automaton()) {
        let text = leapfrog_p4a::pretty::pretty(&aut, "Gen");
        let back = leapfrog_p4a::surface::parse(&text)
            .expect("pretty output must re-parse");
        prop_assert_eq!(back.num_states(), aut.num_states());
        // Same acceptance on a handful of words.
        for len in [0usize, 1, 3, 5, 8] {
            let word = BitVec::from_bits(&vec![true; len]);
            let a = Config::initial(&aut, StateId(0)).accepts_chunked(&aut, &word);
            let qb = back.state_by_name(aut.state_name(StateId(0))).unwrap();
            let b = Config::initial(&back, qb).accepts_chunked(&back, &word);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn sum_preserves_acceptance(
        aut in automaton(),
        word_bits in proptest::collection::vec(any::<bool>(), 0..24),
    ) {
        let word = BitVec::from_bits(&word_bits);
        let other = aut.clone();
        let s = leapfrog_p4a::sum::sum(&aut, &other);
        let q = StateId(0);
        let direct = Config::initial(&aut, q).accepts_chunked(&aut, &word);
        let left = Config::initial(&s.automaton, s.left_state(q))
            .accepts_chunked(&s.automaton, &word);
        let right = Config::initial(&s.automaton, s.right_state(q))
            .accepts_chunked(&s.automaton, &word);
        prop_assert_eq!(direct, left);
        prop_assert_eq!(direct, right);
    }

    #[test]
    fn accept_configurations_absorb_into_reject(
        aut in automaton(),
        word_bits in proptest::collection::vec(any::<bool>(), 1..24),
    ) {
        // Any strict extension of an accepted word is rejected.
        let word = BitVec::from_bits(&word_bits);
        let c = Config::initial(&aut, StateId(0)).step_word(&aut, &word);
        if c.is_accepting() {
            let longer = word.concat(&BitVec::from_bits(&[true]));
            prop_assert!(!Config::initial(&aut, StateId(0)).accepts(&aut, &longer));
        }
    }
}
