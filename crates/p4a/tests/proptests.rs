//! Property-based tests for the P4A semantics: the chunked interpreter
//! agrees with the bit-by-bit `δ` of Definition 3.5 on random automata and
//! random packets, the pretty-printer round-trips through the surface
//! parser, and configurations maintain their buffer invariant.
//!
//! The offline build has no `proptest`; random automata and packets come
//! from a deterministic fixed-seed generator so failures stay reproducible.

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, Expr, Pattern, StateId, Target};
use leapfrog_p4a::builder::Builder;
use leapfrog_p4a::semantics::{Config, Store};
use leapfrog_p4a::walk::Rng;

const CASES: usize = 64;

/// A random word of up to `max_len` bits.
fn word(rng: &mut Rng, max_len: usize) -> BitVec {
    let len = rng.below(max_len + 1);
    let bits: Vec<bool> = (0..len).map(|_| rng.next_u64() & 1 == 1).collect();
    BitVec::from_bits(&bits)
}

/// A random well-formed automaton with up to 3 states, each extracting
/// 1–4 bits, with random select/goto transitions.
fn random_automaton(rng: &mut Rng) -> Automaton {
    let n = 1 + rng.below(3);
    let mut b = Builder::new();
    let states: Vec<StateId> = (0..n).map(|i| b.state(format!("q{i}"))).collect();
    let any_target = |rng: &mut Rng| match rng.below(5) {
        0 => Target::Accept,
        1 => Target::Reject,
        s => Target::State(states[(s - 2) % n]),
    };
    for (i, &q) in states.iter().enumerate() {
        let w = 1 + rng.below(4);
        let h = b.header(format!("h{i}"), w);
        let trans = if rng.below(2) == 0 {
            let t = any_target(rng);
            b.goto(t)
        } else {
            let ncases = 1 + rng.below(3);
            let cases: Vec<(Vec<Pattern>, Target)> = (0..ncases)
                .map(|_| {
                    let pat = Pattern::Exact(BitVec::from_u64(rng.next_u64() & ((1 << w) - 1), w));
                    (vec![pat], any_target(rng))
                })
                .collect();
            b.select(vec![Expr::hdr(h)], cases)
        };
        b.define(q, vec![b.extract(h)], trans);
    }
    b.build().expect("generated automaton is well-formed")
}

#[test]
fn chunked_interpreter_agrees_with_bit_by_bit() {
    let mut rng = Rng::new(0xc41c);
    for _ in 0..CASES {
        let aut = random_automaton(&mut rng);
        let word = word(&mut rng, 40);
        let mut seed = rng.next_u64() | 1;
        let mut store_rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed
        };
        let store = Store::random(&aut, &mut store_rng);
        let q = StateId(0);
        let slow = Config::with_store(q, store.clone()).accepts(&aut, &word);
        let fast = Config::with_store(q, store).accepts_chunked(&aut, &word);
        assert_eq!(slow, fast);
    }
}

#[test]
fn buffer_invariant_holds_along_any_run() {
    let mut rng = Rng::new(0xb0ff);
    for _ in 0..CASES {
        let aut = random_automaton(&mut rng);
        let word = word(&mut rng, 32);
        let mut c = Config::initial(&aut, StateId(0));
        for bit in word.iter() {
            c = c.step(&aut, bit);
            match c.target {
                Target::State(q) => assert!(c.buf.len() < aut.op_size(q)),
                _ => assert!(c.buf.is_empty()),
            }
        }
    }
}

#[test]
fn pretty_print_parse_roundtrip() {
    let mut rng = Rng::new(0x9e77);
    for _ in 0..CASES {
        let aut = random_automaton(&mut rng);
        let text = leapfrog_p4a::pretty::pretty(&aut, "Gen");
        let back = leapfrog_p4a::surface::parse(&text).expect("pretty output must re-parse");
        assert_eq!(back.num_states(), aut.num_states());
        // Same acceptance on a handful of words.
        for len in [0usize, 1, 3, 5, 8] {
            let word = BitVec::from_bits(&vec![true; len]);
            let a = Config::initial(&aut, StateId(0)).accepts_chunked(&aut, &word);
            let qb = back.state_by_name(aut.state_name(StateId(0))).unwrap();
            let b = Config::initial(&back, qb).accepts_chunked(&back, &word);
            assert_eq!(a, b);
        }
    }
}

#[test]
fn sum_preserves_acceptance() {
    let mut rng = Rng::new(0x5053);
    for _ in 0..CASES {
        let aut = random_automaton(&mut rng);
        let word = word(&mut rng, 24);
        let other = aut.clone();
        let s = leapfrog_p4a::sum::sum(&aut, &other);
        let q = StateId(0);
        let direct = Config::initial(&aut, q).accepts_chunked(&aut, &word);
        let left =
            Config::initial(&s.automaton, s.left_state(q)).accepts_chunked(&s.automaton, &word);
        let right =
            Config::initial(&s.automaton, s.right_state(q)).accepts_chunked(&s.automaton, &word);
        assert_eq!(direct, left);
        assert_eq!(direct, right);
    }
}

#[test]
fn accept_configurations_absorb_into_reject() {
    let mut rng = Rng::new(0xabab);
    for _ in 0..CASES {
        let aut = random_automaton(&mut rng);
        let word = word(&mut rng, 24);
        // Any strict extension of an accepted word is rejected.
        let c = Config::initial(&aut, StateId(0)).step_word(&aut, &word);
        if c.is_accepting() {
            let longer = word.concat(&BitVec::from_bits(&[true]));
            assert!(!Config::initial(&aut, StateId(0)).accepts(&aut, &longer));
        }
    }
}
