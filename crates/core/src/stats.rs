//! Run statistics: what Table 2 of the paper reports per case study,
//! plus solver-level counters (§7.3's SMT latency discussion) and the
//! pipeline counters of the guard-indexed, parallel frontier.

use std::time::Duration;

use leapfrog_obs::PhaseBreakdown;
use leapfrog_smt::QueryStats;

/// Statistics from one [`crate::Checker::run`] invocation.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Worklist iterations (pops from the frontier `T`).
    pub iterations: u64,
    /// Size of `R` when the run ended (`Extend` count). Populated for
    /// every outcome — `Equivalent`, `NotEquivalent` and `Aborted` alike.
    pub extended: u64,
    /// Formulas skipped because they were already entailed (the `Skip` rule).
    pub skipped: u64,
    /// Weakest preconditions generated.
    pub wp_generated: u64,
    /// Template pairs in scope (after reachability pruning, if enabled).
    pub scope_pairs: usize,
    /// Largest pure-formula size encountered (structural nodes).
    pub max_formula_size: usize,
    /// Refutation witnesses confirmed by explicit replay (0 or 1 per run:
    /// the checker stops at the first violation).
    pub witnesses_confirmed: u64,
    /// Refutations whose countermodel could not be lifted into a
    /// confirmed witness.
    pub witnesses_unconfirmed: u64,
    /// Packet bits removed by witness minimization (delta debugging).
    pub witness_bits_minimized: u64,
    /// Worker threads the frontier batches ran on (1 = sequential).
    pub threads: usize,
    /// Frontier generations whose entailment checks ran on worker threads.
    pub parallel_batches: u64,
    /// Entailment verdicts precomputed on worker threads.
    pub parallel_checks: u64,
    /// Precomputed verdicts invalidated during the deterministic merge
    /// because a same-guard relation joined `R` after the snapshot.
    pub merge_rechecks: u64,
    /// Total `Skip`-rule entailment decisions taken.
    pub entailment_checks: u64,
    /// Premises fetched through the guard index, summed over all checks —
    /// what lowering actually saw.
    pub premises_matched: u64,
    /// Premises a linear scan would have visited (Σ |R| per check) — what
    /// the pre-index pipeline paid for stage-1 template filtering.
    pub premises_total: u64,
    /// Warm guard sessions already resident when this run attached to its
    /// engine warm state (0 on a cold run).
    pub sessions_reused: u64,
    /// Entailment verdicts replayed from the engine's warm-state memo
    /// without any solver contact.
    pub entailment_memo_hits: u64,
    /// Whether the pair's sum construction was served from the engine's
    /// intern table (1) or built for this run (0). For batches: hits
    /// summed over the batch.
    pub sum_cache_hits: u64,
    /// Whether the scope/reachability set was served from the engine's
    /// per-pair memo. For batches: hits summed over the batch.
    pub reach_cache_hits: u64,
    /// Total wall-clock time of the run.
    pub wall_time: Duration,
    /// SMT query statistics (main solver plus absorbed worker solvers).
    pub queries: QueryStats,
    /// Per-phase time breakdown from the span tracer. Empty unless
    /// tracing is enabled (`LEAPFROG_TRACE=1`); purely observational —
    /// never consulted by the pipeline.
    pub phases: PhaseBreakdown,
}

impl RunStats {
    /// Fraction of the linear-scan premise work the guard index avoided:
    /// `1 − matched/total` (0.0 when no premises existed to scan).
    pub fn index_hit_rate(&self) -> f64 {
        if self.premises_total == 0 {
            return 0.0;
        }
        1.0 - self.premises_matched as f64 / self.premises_total as f64
    }

    /// Guard-session context rebuilds performed by the clause-budget GC
    /// across all session pools (main loop plus worker slots).
    pub fn session_rebuilds(&self) -> u64 {
        self.queries.session_rebuilds
    }

    /// Peak live-clause count observed in any single entailment-session
    /// solver context — the quantity the session GC bounds.
    pub fn live_clauses_peak(&self) -> u64 {
        self.queries.live_clauses_peak
    }

    /// Fraction of the naive per-round `∀`-block validations the
    /// variable-indexed CEGAR oracle skipped (0.0 when no rounds ran).
    pub fn oracle_skip_rate(&self) -> f64 {
        if self.queries.blocks_considered == 0 {
            return 0.0;
        }
        1.0 - self.queries.blocks_validated as f64 / self.queries.blocks_considered as f64
    }

    /// Folds another run's statistics into this one — used by the engine
    /// to report a whole batch as one merged record, in submission order.
    /// Counters add; `scope_pairs`, `threads` and `max_formula_size` take
    /// the maximum; wall time adds (total work, not latency).
    pub fn merge(&mut self, other: &RunStats) {
        self.iterations += other.iterations;
        self.extended += other.extended;
        self.skipped += other.skipped;
        self.wp_generated += other.wp_generated;
        self.scope_pairs = self.scope_pairs.max(other.scope_pairs);
        self.max_formula_size = self.max_formula_size.max(other.max_formula_size);
        self.witnesses_confirmed += other.witnesses_confirmed;
        self.witnesses_unconfirmed += other.witnesses_unconfirmed;
        self.witness_bits_minimized += other.witness_bits_minimized;
        self.threads = self.threads.max(other.threads);
        self.parallel_batches += other.parallel_batches;
        self.parallel_checks += other.parallel_checks;
        self.merge_rechecks += other.merge_rechecks;
        self.entailment_checks += other.entailment_checks;
        self.premises_matched += other.premises_matched;
        self.premises_total += other.premises_total;
        self.sessions_reused += other.sessions_reused;
        self.entailment_memo_hits += other.entailment_memo_hits;
        self.sum_cache_hits += other.sum_cache_hits;
        self.reach_cache_hits += other.reach_cache_hits;
        self.wall_time += other.wall_time;
        self.queries.absorb(&other.queries);
        self.phases.merge(&other.phases);
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        let portfolio = if self.queries.portfolio.lanes >= 2 {
            // Defensive clamp: `lanes` may come from a decoded stats frame,
            // and formatting must not panic on an out-of-range value.
            let lanes = (self.queries.portfolio.lanes as usize).min(self.queries.portfolio.wins.len());
            format!(
                " portfolio(lanes={} races={} solo={} wins={:?})",
                self.queries.portfolio.lanes,
                self.queries.portfolio.races,
                self.queries.portfolio.solo,
                &self.queries.portfolio.wins[..lanes],
            )
        } else {
            String::new()
        };
        let witnesses = if self.witnesses_confirmed + self.witnesses_unconfirmed > 0 {
            format!(
                " witnesses={}/{} minimized_bits={}",
                self.witnesses_confirmed,
                self.witnesses_confirmed + self.witnesses_unconfirmed,
                self.witness_bits_minimized,
            )
        } else {
            String::new()
        };
        format!(
            "iterations={} extended={} skipped={} wp={} scope={} queries={} \
             threads={} index_hit={:.0}% blast_cache={:.0}% cegar_rounds={} \
             oracle_skip={:.0}% rebuilds={} peak_clauses={} warm(sessions={} \
             memo={} sum={} reach={} ledger={}) time={:.2?}{}{}",
            self.iterations,
            self.extended,
            self.skipped,
            self.wp_generated,
            self.scope_pairs,
            self.queries.queries,
            self.threads,
            100.0 * self.index_hit_rate(),
            100.0 * self.queries.blast_cache_hit_rate(),
            self.queries.cegar_rounds,
            100.0 * self.oracle_skip_rate(),
            self.queries.session_rebuilds,
            self.queries.live_clauses_peak,
            self.sessions_reused,
            self.entailment_memo_hits,
            self.sum_cache_hits,
            self.reach_cache_hits,
            self.queries.inst_ledger_hits,
            self.wall_time,
            portfolio,
            witnesses,
        )
    }
}
