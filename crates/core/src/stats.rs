//! Run statistics: what Table 2 of the paper reports per case study,
//! plus solver-level counters (§7.3's SMT latency discussion).

use std::time::Duration;

use leapfrog_smt::QueryStats;

/// Statistics from one [`crate::Checker::run`] invocation.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Worklist iterations (pops from the frontier `T`).
    pub iterations: u64,
    /// Formulas added to `R` (the `Extend` rule).
    pub extended: u64,
    /// Formulas skipped because they were already entailed (the `Skip` rule).
    pub skipped: u64,
    /// Weakest preconditions generated.
    pub wp_generated: u64,
    /// Template pairs in scope (after reachability pruning, if enabled).
    pub scope_pairs: usize,
    /// Largest pure-formula size encountered (structural nodes).
    pub max_formula_size: usize,
    /// Refutation witnesses confirmed by explicit replay (0 or 1 per run:
    /// the checker stops at the first violation).
    pub witnesses_confirmed: u64,
    /// Refutations whose countermodel could not be lifted into a
    /// confirmed witness.
    pub witnesses_unconfirmed: u64,
    /// Packet bits removed by witness minimization (delta debugging).
    pub witness_bits_minimized: u64,
    /// Total wall-clock time of the run.
    pub wall_time: Duration,
    /// SMT query statistics.
    pub queries: QueryStats,
}

impl RunStats {
    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        let witnesses = if self.witnesses_confirmed + self.witnesses_unconfirmed > 0 {
            format!(
                " witnesses={}/{} minimized_bits={}",
                self.witnesses_confirmed,
                self.witnesses_confirmed + self.witnesses_unconfirmed,
                self.witness_bits_minimized,
            )
        } else {
            String::new()
        };
        format!(
            "iterations={} extended={} skipped={} wp={} scope={} queries={} time={:.2?}{}",
            self.iterations,
            self.extended,
            self.skipped,
            self.wp_generated,
            self.scope_pairs,
            self.queries.queries,
            self.wall_time,
            witnesses,
        )
    }
}
