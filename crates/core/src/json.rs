//! Self-contained JSON serialization for [`crate::Certificate`].
//!
//! The build environment has no network access, so `serde`/`serde_json`
//! are unavailable; this module hand-rolls the small amount of JSON the
//! certificate archive format needs. The encoding mirrors serde's
//! externally-tagged convention (`{"State": 3}`, `{"Eq": [a, b]}`), so a
//! certificate produced here reads naturally and the format would survive
//! a later migration back to derived serde.

use std::fmt;

use leapfrog_bitvec::BitVec;
use leapfrog_logic::confrel::{BitExpr, ConfRel, Pure, Side, VarId};
use leapfrog_logic::templates::{Template, TemplatePair};
use leapfrog_p4a::ast::{HeaderId, StateId, Target};

use crate::certificate::Certificate;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (certificates only use unsigned integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

/// A JSON syntax or schema error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    pub(crate) fn new(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate JSON error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Writing

impl Value {
    /// Pretty-prints the value with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| JsonError::new("unexpected end of input"))
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                c as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!("expected literal '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| JsonError::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonError::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .ok_or_else(|| JsonError::new("truncated UTF-8 sequence"))?;
                        out.push_str(
                            std::str::from_utf8(chunk)
                                .map_err(|_| JsonError::new("invalid UTF-8 in string"))?,
                        );
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(JsonError::new("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(JsonError::new("expected ',' or '}' in object")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Certificate encoding

/// Builds an object value from (key, value) pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn tag(name: &str, v: Value) -> Value {
    obj(vec![(name, v)])
}

/// Builds an unsigned-integer number value.
pub fn num(n: usize) -> Value {
    Value::Num(n as f64)
}

/// Encodes a bitvector as its binary-string literal.
pub fn bitvec_to_value(bv: &BitVec) -> Value {
    Value::Str(bv.to_string())
}

fn target_to_value(t: Target) -> Value {
    match t {
        Target::State(q) => tag("State", num(q.0 as usize)),
        Target::Accept => Value::Str("Accept".into()),
        Target::Reject => Value::Str("Reject".into()),
    }
}

/// Encodes a configuration template (shared with the wire protocol).
pub fn template_to_value(t: &Template) -> Value {
    obj(vec![
        ("target", target_to_value(t.target)),
        ("buf_len", num(t.buf_len)),
    ])
}

fn side_to_value(s: Side) -> Value {
    Value::Str(match s {
        Side::Left => "Left".into(),
        Side::Right => "Right".into(),
    })
}

fn expr_to_value(e: &BitExpr) -> Value {
    match e {
        BitExpr::Lit(bv) => tag("Lit", bitvec_to_value(bv)),
        BitExpr::Buf(s) => tag("Buf", side_to_value(*s)),
        BitExpr::Hdr(s, h) => tag(
            "Hdr",
            Value::Arr(vec![side_to_value(*s), num(h.0 as usize)]),
        ),
        BitExpr::Var(v) => tag("Var", num(v.0 as usize)),
        BitExpr::Slice(inner, start, len) => tag(
            "Slice",
            Value::Arr(vec![expr_to_value(inner), num(*start), num(*len)]),
        ),
        BitExpr::Concat(a, b) => tag(
            "Concat",
            Value::Arr(vec![expr_to_value(a), expr_to_value(b)]),
        ),
    }
}

fn pure_to_value(p: &Pure) -> Value {
    match p {
        Pure::Const(b) => tag("Const", Value::Bool(*b)),
        Pure::Eq(a, b) => tag("Eq", Value::Arr(vec![expr_to_value(a), expr_to_value(b)])),
        Pure::Not(q) => tag("Not", pure_to_value(q)),
        Pure::And(a, b) => tag("And", Value::Arr(vec![pure_to_value(a), pure_to_value(b)])),
        Pure::Or(a, b) => tag("Or", Value::Arr(vec![pure_to_value(a), pure_to_value(b)])),
        Pure::Implies(a, b) => tag(
            "Implies",
            Value::Arr(vec![pure_to_value(a), pure_to_value(b)]),
        ),
    }
}

/// Encodes a configuration relation (shared with the wire protocol and
/// the engine's warm-state persistence).
pub fn confrel_to_value(r: &ConfRel) -> Value {
    obj(vec![
        (
            "guard",
            obj(vec![
                ("left", template_to_value(&r.guard.left)),
                ("right", template_to_value(&r.guard.right)),
            ]),
        ),
        ("vars", Value::Arr(r.vars.iter().map(|w| num(*w)).collect())),
        ("phi", pure_to_value(&r.phi)),
    ])
}

/// Encodes a certificate as a JSON value tree.
pub fn certificate_to_value(cert: &Certificate) -> Value {
    obj(vec![
        ("leaps", Value::Bool(cert.leaps)),
        ("standard_init", Value::Bool(cert.standard_init)),
        ("query", confrel_to_value(&cert.query)),
        (
            "init",
            Value::Arr(cert.init.iter().map(confrel_to_value).collect()),
        ),
        (
            "relation",
            Value::Arr(cert.relation.iter().map(confrel_to_value).collect()),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Certificate decoding

/// Looks up a required object field.
pub fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, JsonError> {
    match v {
        Value::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::new(format!("missing field '{key}'"))),
        _ => Err(JsonError::new(format!(
            "expected object with field '{key}'"
        ))),
    }
}

/// Interprets a value as a boolean.
pub fn as_bool(v: &Value) -> Result<bool, JsonError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(JsonError::new("expected a boolean")),
    }
}

/// Interprets a value as an unsigned integer.
pub fn as_usize(v: &Value) -> Result<usize, JsonError> {
    match v {
        Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as usize),
        _ => Err(JsonError::new("expected an unsigned integer")),
    }
}

/// Interprets a value as a string.
pub fn as_str(v: &Value) -> Result<&str, JsonError> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(JsonError::new("expected a string")),
    }
}

/// Interprets a value as an array.
pub fn as_arr(v: &Value) -> Result<&[Value], JsonError> {
    match v {
        Value::Arr(items) => Ok(items),
        _ => Err(JsonError::new("expected an array")),
    }
}

/// The single `(tag, payload)` pair of an externally tagged enum value.
fn untag(v: &Value) -> Result<(&str, &Value), JsonError> {
    match v {
        Value::Obj(fields) if fields.len() == 1 => Ok((&fields[0].0, &fields[0].1)),
        _ => Err(JsonError::new("expected a single-field tagged object")),
    }
}

/// Decodes a bitvector from its binary-string literal.
pub fn bitvec_from_value(v: &Value) -> Result<BitVec, JsonError> {
    as_str(v)?
        .parse()
        .map_err(|e| JsonError::new(format!("invalid bitvector literal: {e:?}")))
}

fn target_from_value(v: &Value) -> Result<Target, JsonError> {
    match v {
        Value::Str(s) if s == "Accept" => Ok(Target::Accept),
        Value::Str(s) if s == "Reject" => Ok(Target::Reject),
        _ => {
            let (t, payload) = untag(v)?;
            if t == "State" {
                Ok(Target::State(StateId(as_usize(payload)? as u32)))
            } else {
                Err(JsonError::new(format!("unknown target tag '{t}'")))
            }
        }
    }
}

/// Decodes a configuration template.
pub fn template_from_value(v: &Value) -> Result<Template, JsonError> {
    Ok(Template {
        target: target_from_value(get(v, "target")?)?,
        buf_len: as_usize(get(v, "buf_len")?)?,
    })
}

fn side_from_value(v: &Value) -> Result<Side, JsonError> {
    match as_str(v)? {
        "Left" => Ok(Side::Left),
        "Right" => Ok(Side::Right),
        other => Err(JsonError::new(format!("unknown side '{other}'"))),
    }
}

fn expr_from_value(v: &Value) -> Result<BitExpr, JsonError> {
    let (t, payload) = untag(v)?;
    match t {
        "Lit" => Ok(BitExpr::Lit(bitvec_from_value(payload)?)),
        "Buf" => Ok(BitExpr::Buf(side_from_value(payload)?)),
        "Hdr" => {
            let items = as_arr(payload)?;
            if items.len() != 2 {
                return Err(JsonError::new("Hdr expects [side, header]"));
            }
            Ok(BitExpr::Hdr(
                side_from_value(&items[0])?,
                HeaderId(as_usize(&items[1])? as u32),
            ))
        }
        "Var" => Ok(BitExpr::Var(VarId(as_usize(payload)? as u32))),
        "Slice" => {
            let items = as_arr(payload)?;
            if items.len() != 3 {
                return Err(JsonError::new("Slice expects [expr, start, len]"));
            }
            Ok(BitExpr::Slice(
                Box::new(expr_from_value(&items[0])?),
                as_usize(&items[1])?,
                as_usize(&items[2])?,
            ))
        }
        "Concat" => {
            let items = as_arr(payload)?;
            if items.len() != 2 {
                return Err(JsonError::new("Concat expects [a, b]"));
            }
            Ok(BitExpr::Concat(
                Box::new(expr_from_value(&items[0])?),
                Box::new(expr_from_value(&items[1])?),
            ))
        }
        other => Err(JsonError::new(format!("unknown expression tag '{other}'"))),
    }
}

fn pure_from_value(v: &Value) -> Result<Pure, JsonError> {
    let (t, payload) = untag(v)?;
    let pair = |payload: &Value| -> Result<(Pure, Pure), JsonError> {
        let items = as_arr(payload)?;
        if items.len() != 2 {
            return Err(JsonError::new("binary connective expects [a, b]"));
        }
        Ok((pure_from_value(&items[0])?, pure_from_value(&items[1])?))
    };
    match t {
        "Const" => Ok(Pure::Const(as_bool(payload)?)),
        "Eq" => {
            let items = as_arr(payload)?;
            if items.len() != 2 {
                return Err(JsonError::new("Eq expects [a, b]"));
            }
            Ok(Pure::Eq(
                expr_from_value(&items[0])?,
                expr_from_value(&items[1])?,
            ))
        }
        "Not" => Ok(Pure::Not(Box::new(pure_from_value(payload)?))),
        "And" => pair(payload).map(|(a, b)| Pure::And(Box::new(a), Box::new(b))),
        "Or" => pair(payload).map(|(a, b)| Pure::Or(Box::new(a), Box::new(b))),
        "Implies" => pair(payload).map(|(a, b)| Pure::Implies(Box::new(a), Box::new(b))),
        other => Err(JsonError::new(format!("unknown formula tag '{other}'"))),
    }
}

/// Decodes a configuration relation.
pub fn confrel_from_value(v: &Value) -> Result<ConfRel, JsonError> {
    let guard = get(v, "guard")?;
    Ok(ConfRel {
        guard: TemplatePair::new(
            template_from_value(get(guard, "left")?)?,
            template_from_value(get(guard, "right")?)?,
        ),
        vars: as_arr(get(v, "vars")?)?
            .iter()
            .map(as_usize)
            .collect::<Result<_, _>>()?,
        phi: pure_from_value(get(v, "phi")?)?,
    })
}

/// Decodes a certificate from a JSON value tree.
pub fn certificate_from_value(v: &Value) -> Result<Certificate, JsonError> {
    Ok(Certificate {
        leaps: as_bool(get(v, "leaps")?)?,
        standard_init: as_bool(get(v, "standard_init")?)?,
        query: confrel_from_value(get(v, "query")?)?,
        init: as_arr(get(v, "init")?)?
            .iter()
            .map(confrel_from_value)
            .collect::<Result<_, _>>()?,
        relation: as_arr(get(v, "relation")?)?
            .iter()
            .map(confrel_from_value)
            .collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = obj(vec![
            (
                "a",
                Value::Arr(vec![num(1), Value::Bool(true), Value::Null]),
            ),
            ("s", Value::Str("hi \"there\"\n⟨q, 0⟩".into())),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn expr_and_pure_roundtrip() {
        let e = BitExpr::Concat(
            Box::new(BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 2, 3)),
            Box::new(BitExpr::Hdr(Side::Right, HeaderId(4))),
        );
        let p = Pure::Implies(
            Box::new(Pure::Eq(e.clone(), BitExpr::Var(VarId(1)))),
            Box::new(Pure::Not(Box::new(Pure::Const(false)))),
        );
        let back = pure_from_value(&parse(&pure_to_value(&p).render()).unwrap()).unwrap();
        assert_eq!(back, p);
    }
}
