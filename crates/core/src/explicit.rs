//! A naive explicit-state equivalence baseline.
//!
//! Section 4 of the paper argues that representing bisimulations
//! concretely can never scale: every state contributes `|S| · 2^{‖op‖-1}`
//! configurations, ~10³⁸ even for the small MPLS example. This module
//! implements exactly that naive approach — a breadth-first product
//! construction over *concrete* configurations (Hopcroft–Karp without the
//! union-find, which changes constants, not the explosion) — so the claim
//! can be measured rather than asserted (see the `explicit_baseline`
//! bench).
//!
//! Because enumerating initial stores is itself exponential, the baseline
//! checks equivalence *for two fixed initial stores* (defaulting to
//! all-zeros), which is strictly weaker than the symbolic checker's
//! all-stores guarantee — another axis on which the symbolic approach
//! wins.

use std::collections::{HashSet, VecDeque};

use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::semantics::{Config, Store};

/// The outcome of an explicit-state check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplicitResult {
    /// All reachable configuration pairs agree on acceptance.
    Equivalent {
        /// Number of configuration pairs explored.
        explored: usize,
    },
    /// A distinguishing word was found.
    NotEquivalent(BitVec),
    /// The configuration-pair budget was exhausted — the expected outcome
    /// on realistic parsers, per §4.
    Exhausted {
        /// The budget that was exhausted.
        budget: usize,
    },
}

/// Runs the naive product construction from `(ql, store_l)` and
/// `(qr, store_r)` with zero stores, up to `budget` configuration pairs.
pub fn check_explicit(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    budget: usize,
) -> ExplicitResult {
    check_explicit_from(
        left,
        Config::with_store(ql, Store::zeros(left)),
        right,
        Config::with_store(qr, Store::zeros(right)),
        budget,
    )
}

/// As [`check_explicit`], from caller-chosen initial configurations.
pub fn check_explicit_from(
    left: &Automaton,
    cl: Config,
    right: &Automaton,
    cr: Config,
    budget: usize,
) -> ExplicitResult {
    // Each queue entry carries the word that reached it so refutations are
    // reported as concrete packets (the memory cost of this bookkeeping is
    // dwarfed by the configuration pairs themselves).
    let mut seen: HashSet<(Config, Config)> = HashSet::new();
    let mut queue: VecDeque<(Config, Config, BitVec)> = VecDeque::new();
    seen.insert((cl.clone(), cr.clone()));
    queue.push_back((cl, cr, BitVec::new()));

    while let Some((a, b, word)) = queue.pop_front() {
        if a.is_accepting() != b.is_accepting() {
            return ExplicitResult::NotEquivalent(word);
        }
        for bit in [false, true] {
            let na = a.step(left, bit);
            let nb = b.step(right, bit);
            let key = (na.clone(), nb.clone());
            if seen.contains(&key) {
                continue;
            }
            if seen.len() >= budget {
                return ExplicitResult::Exhausted { budget };
            }
            seen.insert(key);
            let mut w = word.clone();
            w.push(bit);
            queue.push_back((na, nb, w));
        }
    }
    ExplicitResult::Equivalent {
        explored: seen.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::surface::parse;

    fn state(aut: &Automaton, name: &str) -> StateId {
        aut.state_by_name(name).unwrap()
    }

    #[test]
    fn tiny_equivalent_pair_terminates() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 1); goto t }
                        state t { extract(y, 1);
               select(x, y) { (0b1, 0b1) => accept; (_, _) => reject; } } }",
        )
        .unwrap();
        let r = check_explicit(&a, state(&a, "s"), &b, state(&b, "s"), 100_000);
        assert!(matches!(r, ExplicitResult::Equivalent { .. }), "{r:?}");
    }

    #[test]
    fn tiny_inequivalent_pair_yields_witness() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        match check_explicit(&a, state(&a, "s"), &b, state(&b, "s"), 100_000) {
            ExplicitResult::NotEquivalent(w) => {
                // The witness must actually distinguish the parsers.
                use leapfrog_p4a::semantics::{Config, Store};
                let ca = Config::with_store(state(&a, "s"), Store::zeros(&a));
                let cb = Config::with_store(state(&b, "s"), Store::zeros(&b));
                assert_ne!(ca.accepts(&a, &w), cb.accepts(&b, &w));
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn realistic_parser_exhausts_budget() {
        // The paper's §4 point: the MPLS example's configuration space is
        // astronomically large, so the explicit method dies immediately
        // where the symbolic method takes milliseconds.
        let r = parse(
            "parser R { state q1 { extract(mpls, 32);
               select(mpls[23:23]) { 0b0 => q1; 0b1 => q2; } }
               state q2 { extract(udp, 64); goto accept } }",
        )
        .unwrap();
        let out = check_explicit(
            &r,
            r.state_by_name("q1").unwrap(),
            &r,
            r.state_by_name("q1").unwrap(),
            50_000,
        );
        assert!(matches!(out, ExplicitResult::Exhausted { .. }), "{out:?}");
    }

    #[test]
    fn explicit_agrees_with_symbolic_on_small_inputs() {
        let a = parse(
            "parser A { state s { extract(h, 3);
               select(h[0:1]) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 1); goto t }
                        state t { extract(y, 2);
               select(x, y[0:0]) { (0b1, 0b0) => accept; (_, _) => reject; } } }",
        )
        .unwrap();
        let explicit = check_explicit(&a, state(&a, "s"), &b, state(&b, "s"), 1_000_000);
        let symbolic =
            crate::checker::check_language_equivalence(&a, state(&a, "s"), &b, state(&b, "s"));
        assert!(matches!(explicit, ExplicitResult::Equivalent { .. }));
        assert!(symbolic.is_equivalent());
    }
}
